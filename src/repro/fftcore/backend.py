"""Pluggable FFT backends.

Two numerically identical implementations are available:

- ``"numpy"`` — ``numpy.fft`` (C-speed; the default for training loops);
- ``"radix2"`` — the from-scratch kernels in this package (the faithful
  model of the CirCNN hardware dataflow; used in tests and demos).

The block-circulant kernels in :mod:`repro.circulant.ops` take a backend
argument, so every experiment can be re-run on the from-scratch kernel to
certify the two agree.

Each backend instance keeps a per-``(backend, n)`` plan cache
(:meth:`FFTBackend.plan`): the first transform of a given size builds the
:class:`~repro.fftcore.plan.FFTPlan` plus its bit-reversal and twiddle
tables, and every later call of that size reuses them. This is what stops
the radix-2 backend from re-deriving twiddle factors on every call — the
serving-path requirement behind the spectral inference engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendError
from repro.fftcore.plan import FFTPlan, clear_plan_cache, get_plan
from repro.fftcore.radix2 import clear_twiddle_caches, fft_radix2, ifft_radix2
from repro.fftcore.real import clear_real_fft_caches, irfft_real, rfft_real


class FFTBackend:
    """Interface: forward/inverse complex and real transforms, last axis."""

    name = "abstract"

    def __init__(self) -> None:
        self._plans: dict[int, FFTPlan] = {}

    def fft(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def ifft(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def rfft(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        raise NotImplementedError

    def plan(self, n: int) -> FFTPlan:
        """The cached :class:`FFTPlan` this backend uses for size ``n``.

        First use of a size warms the plan (:meth:`FFTPlan.warm`): the
        bit-reversal permutation, stage twiddles and real-transform
        tables are all materialised in the shared ROM caches, so a
        server can warm every transform size it will see before taking
        traffic. The per-backend dict also records which sizes this
        backend has planned (see :meth:`plan_cache_size`).
        """
        plan = self._plans.get(n)
        if plan is None:
            plan = get_plan(n).warm()
            self._plans[n] = plan
        return plan

    def plan_cache_size(self) -> int:
        """Number of distinct transform sizes planned on this backend."""
        return len(self._plans)

    def clear_plans(self) -> None:
        """Drop this backend's per-size plan cache.

        The public counterpart of the dictionary :meth:`plan` fills:
        long-running servers bound memory after a burst of unusual
        transform sizes by clearing per backend, and
        :func:`clear_plan_caches` calls this on every registered backend
        (custom :func:`register_backend` implementations may override it
        to drop additional private state).
        """
        self._plans.clear()

    def __repr__(self) -> str:
        return f"<FFTBackend {self.name}>"


class NumpyFFTBackend(FFTBackend):
    """``numpy.fft`` — fast production path."""

    name = "numpy"

    def fft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.fft(x, axis=-1)

    def ifft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.ifft(x, axis=-1)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.rfft(x, axis=-1)

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        return np.fft.irfft(x, n=n, axis=-1)


class Radix2FFTBackend(FFTBackend):
    """The from-scratch kernels of :mod:`repro.fftcore` (hardware model).

    Every call first touches the per-size plan cache, so the bit-reversal
    permutation and stage twiddles are built exactly once per transform
    size for the lifetime of the process.
    """

    name = "radix2"

    def fft(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        self.plan(x.shape[-1])
        return fft_radix2(x)

    def ifft(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        self.plan(x.shape[-1])
        return ifft_radix2(x)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        self.plan(x.shape[-1])
        return rfft_real(x)

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        self.plan(n)
        return irfft_real(x, n=n)


class CountingFFTBackend(FFTBackend):
    """Delegating wrapper that counts transform *calls* per method.

    Every kernel in :mod:`repro.circulant.ops` issues one batched
    transform call per tensor, so the counters measure exactly the
    quantity the spectral caches and the training tape are meant to
    shrink — e.g. the tape's 5-to-3 rfft reduction for one
    ``BlockCirculantDense`` train step. Pass an instance anywhere a
    backend name is accepted (layer constructors, kernel ``backend=``
    arguments); :func:`get_backend` returns instances unchanged.

    Intended for tests and benchmarks; instances share cache keys by
    wrapped-backend name, so don't mix two counters of the same inner
    backend on one :class:`~repro.circulant.spectral_cache.SpectralWeightCache`.
    """

    def __init__(self, inner: "str | FFTBackend | None" = None):
        super().__init__()
        self.inner = get_backend(inner)
        self.name = f"counting({self.inner.name})"
        self.counts = {"fft": 0, "ifft": 0, "rfft": 0, "irfft": 0}

    def reset(self) -> None:
        """Zero every counter."""
        for key in self.counts:
            self.counts[key] = 0

    def total(self) -> int:
        """Sum of all transform calls since construction / last reset."""
        return sum(self.counts.values())

    def fft(self, x: np.ndarray) -> np.ndarray:
        self.counts["fft"] += 1
        return self.inner.fft(x)

    def ifft(self, x: np.ndarray) -> np.ndarray:
        self.counts["ifft"] += 1
        return self.inner.ifft(x)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        self.counts["rfft"] += 1
        return self.inner.rfft(x)

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        self.counts["irfft"] += 1
        return self.inner.irfft(x, n)

    def __repr__(self) -> str:
        return f"<CountingFFTBackend {self.inner.name} {self.counts}>"


_BACKENDS: dict[str, FFTBackend] = {
    "numpy": NumpyFFTBackend(),
    "radix2": Radix2FFTBackend(),
}
#: Backend names this module itself installs; they cannot be unregistered
#: (layer specs in stored artifacts reference them by name).
BUILTIN_BACKENDS = ("numpy", "radix2")
_default_backend_name = "numpy"


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends."""
    return tuple(sorted(_BACKENDS))


def register_backend(backend: FFTBackend, *,
                     replace: bool = False) -> FFTBackend:
    """Register a custom :class:`FFTBackend` instance under its ``name``.

    Opens the backend registry to accelerated or instrumented
    implementations: once registered, the backend resolves everywhere a
    backend *name* is accepted — layer constructors, execution plans, the
    autotuner's candidate list, :func:`set_default_backend` — not only
    where instances already pass through. ``name`` must be a non-empty
    string distinct from ``"abstract"``; re-registering an existing name
    raises :class:`~repro.errors.BackendError` unless ``replace=True``
    (the two builtin names can be replaced but never removed). Returns
    the backend for chaining.
    """
    if not isinstance(backend, FFTBackend):
        raise BackendError(
            f"register_backend expects an FFTBackend instance, got "
            f"{type(backend).__name__}"
        )
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name or name == "abstract":
        raise BackendError(
            f"backend must carry a non-empty name attribute to register, "
            f"got {name!r}"
        )
    if name in _BACKENDS and not replace:
        raise BackendError(
            f"FFT backend {name!r} is already registered; pass "
            "replace=True to substitute it"
        )
    _BACKENDS[name] = backend
    return backend


def unregister_backend(name: str) -> FFTBackend:
    """Remove a backend registered with :func:`register_backend`.

    The builtin ``"numpy"`` / ``"radix2"`` entries cannot be removed
    (stored artifacts reference them by name). If the removed backend was
    the process-wide default, the default falls back to ``"numpy"``.
    Returns the removed instance.
    """
    global _default_backend_name
    if name in BUILTIN_BACKENDS:
        raise BackendError(f"cannot unregister builtin backend {name!r}")
    try:
        backend = _BACKENDS.pop(name)
    except KeyError:
        raise BackendError(
            f"unknown FFT backend {name!r}; available: {available_backends()}"
        ) from None
    if _default_backend_name == name:
        _default_backend_name = "numpy"
    return backend


def get_backend(name: "str | FFTBackend | None" = None) -> FFTBackend:
    """Return a backend by name, or the process-wide default if ``None``."""
    if name is None:
        name = _default_backend_name
    if isinstance(name, FFTBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown FFT backend {name!r}; available: {available_backends()}"
        ) from None


def set_default_backend(name: "str | FFTBackend") -> None:
    """Set the process-wide default backend.

    Accepts a registered name (``"numpy"``, ``"radix2"``, or anything
    added via :func:`register_backend`) or — mirroring :func:`get_backend`
    — an :class:`FFTBackend` *instance*, which is registered first if its
    name is not yet taken (an already-registered name must resolve to the
    same instance, else :class:`~repro.errors.BackendError`).
    """
    global _default_backend_name
    if isinstance(name, FFTBackend):
        backend = name
        name = backend.name
        registered = _BACKENDS.get(name)
        if registered is None:
            register_backend(backend)
        elif registered is not backend:
            raise BackendError(
                f"a different backend is already registered as {name!r}; "
                "register_backend(backend, replace=True) first"
            )
    elif name not in _BACKENDS:
        raise BackendError(
            f"unknown FFT backend {name!r}; available: {available_backends()}"
        )
    _default_backend_name = name


def clear_plan_caches() -> None:
    """Reset every FFT plan/twiddle cache in the process.

    Drops the per-backend plan dictionaries (via each backend's public
    :meth:`FFTBackend.clear_plans`), the shared plan registry, and the
    bit-reversal / twiddle / real-FFT table caches. Intended for tests
    and long-running servers that want to bound memory after a burst of
    unusual transform sizes.
    """
    for backend in _BACKENDS.values():
        backend.clear_plans()
    clear_plan_cache()
    clear_twiddle_caches()
    clear_real_fft_caches()
