"""Pluggable FFT backends.

Two numerically identical implementations are available:

- ``"numpy"`` — ``numpy.fft`` (C-speed; the default for training loops);
- ``"radix2"`` — the from-scratch kernels in this package (the faithful
  model of the CirCNN hardware dataflow; used in tests and demos).

The block-circulant kernels in :mod:`repro.circulant.ops` take a backend
argument, so every experiment can be re-run on the from-scratch kernel to
certify the two agree.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendError
from repro.fftcore.radix2 import fft_radix2, ifft_radix2
from repro.fftcore.real import irfft_real, rfft_real


class FFTBackend:
    """Interface: forward/inverse complex and real transforms, last axis."""

    name = "abstract"

    def fft(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def ifft(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def rfft(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<FFTBackend {self.name}>"


class NumpyFFTBackend(FFTBackend):
    """``numpy.fft`` — fast production path."""

    name = "numpy"

    def fft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.fft(x, axis=-1)

    def ifft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.ifft(x, axis=-1)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        return np.fft.rfft(x, axis=-1)

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        return np.fft.irfft(x, n=n, axis=-1)


class Radix2FFTBackend(FFTBackend):
    """The from-scratch kernels of :mod:`repro.fftcore` (hardware model)."""

    name = "radix2"

    def fft(self, x: np.ndarray) -> np.ndarray:
        return fft_radix2(x)

    def ifft(self, x: np.ndarray) -> np.ndarray:
        return ifft_radix2(x)

    def rfft(self, x: np.ndarray) -> np.ndarray:
        return rfft_real(x)

    def irfft(self, x: np.ndarray, n: int) -> np.ndarray:
        return irfft_real(x, n=n)


_BACKENDS: dict[str, FFTBackend] = {
    "numpy": NumpyFFTBackend(),
    "radix2": Radix2FFTBackend(),
}
_default_backend_name = "numpy"


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str | None = None) -> FFTBackend:
    """Return a backend by name, or the process-wide default if ``None``."""
    if name is None:
        name = _default_backend_name
    if isinstance(name, FFTBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendError(
            f"unknown FFT backend {name!r}; available: {available_backends()}"
        ) from None


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``"numpy"`` or ``"radix2"``)."""
    global _default_backend_name
    if name not in _BACKENDS:
        raise BackendError(
            f"unknown FFT backend {name!r}; available: {available_backends()}"
        )
    _default_backend_name = name
