"""From-scratch FFT kernels — the CirCNN "key computing kernel" (paper §4.1).

CirCNN's architecture is built around a single reconfigurable FFT block.
This package reimplements that kernel in software:

- :mod:`repro.fftcore.reference` — an O(n^2) direct DFT used as the ground
  truth in tests.
- :mod:`repro.fftcore.radix2` — an iterative, NumPy-vectorised radix-2
  Cooley–Tukey FFT/IFFT over the last axis of an arbitrary batch.
- :mod:`repro.fftcore.real` — real-input FFT / Hermitian-symmetric inverse,
  exploiting the symmetry the paper uses to skip half of the butterfly
  outputs (Fig 10, "red circles need not be calculated").
- :mod:`repro.fftcore.plan` — the recursive decomposition of Fig 9: a
  size-n FFT executed as two size-n/2 FFTs plus one butterfly stage.
  :func:`get_plan` memoises one :class:`FFTPlan` per transform size;
  ``FFTPlan.warm()`` materialises its bit-reversal permutation, stage
  twiddles and real-transform tables into shared read-only caches.
- :mod:`repro.fftcore.ops_count` — exact butterfly / real-operation /
  memory-traffic counts consumed by the architecture simulator.
- :mod:`repro.fftcore.backend` — pluggable backends (:func:`get_backend`,
  :func:`set_default_backend`, :func:`register_backend`): the numerically
  identical ``numpy.fft`` implementation for speed, the from-scratch
  radix-2 kernels, or any custom :class:`FFTBackend` registered by name.
  Each backend keeps a per-size plan cache (:meth:`FFTBackend.plan`) so
  the radix-2 path never rebuilds twiddle tables — the warm-up contract
  the spectral inference engine relies on. :func:`clear_plan_caches`
  resets every plan/twiddle/real-FFT table cache in the process.
"""

from repro.fftcore.reference import dft_direct, idft_direct
from repro.fftcore.radix2 import fft_radix2, ifft_radix2, stage_twiddles
from repro.fftcore.real import irfft_real, rfft_real
from repro.fftcore.plan import FFTPlan, get_plan
from repro.fftcore.ops_count import (
    FFTOpCount,
    complex_fft_butterflies,
    complex_fft_ops,
    real_fft_butterflies,
    real_fft_ops,
)
from repro.fftcore.backend import (
    CountingFFTBackend,
    FFTBackend,
    available_backends,
    clear_plan_caches,
    get_backend,
    register_backend,
    set_default_backend,
    unregister_backend,
)

__all__ = [
    "dft_direct",
    "idft_direct",
    "fft_radix2",
    "ifft_radix2",
    "rfft_real",
    "irfft_real",
    "FFTPlan",
    "FFTOpCount",
    "complex_fft_butterflies",
    "complex_fft_ops",
    "real_fft_butterflies",
    "real_fft_ops",
    "FFTBackend",
    "CountingFFTBackend",
    "available_backends",
    "clear_plan_caches",
    "get_backend",
    "get_plan",
    "register_backend",
    "set_default_backend",
    "stage_twiddles",
    "unregister_backend",
]
