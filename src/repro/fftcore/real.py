"""Real-input FFT exploiting Hermitian symmetry (paper §4.1, Fig 10).

CirCNN's inputs "are from actual applications and are real values without
imaginary parts", so the FFT of each block is Hermitian-symmetric and half
of the butterfly outputs ("the outcomes in the red circles") never need to
be computed or stored. This module implements that optimisation in its
classical software form: a length-``n`` real FFT computed as one length-
``n/2`` *complex* FFT of the packed sequence ``z[j] = x[2j] + i·x[2j+1]``
followed by an O(n) unpacking stage.

The returned half-spectrum layout matches ``numpy.fft.rfft`` /
``numpy.fft.irfft`` (``n//2 + 1`` bins).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.fftcore.radix2 import fft_radix2, ifft_radix2
from repro.utils.validation import ensure_power_of_two

# The unpack/repack stages use index tables and twiddle factors that depend
# only on n; like the radix-2 stage twiddles they are cached per size so
# repeated transforms (the serving fast path) do no trig on the hot path.
_RFFT_TABLE_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
_IRFFT_TABLE_CACHE: dict[int, np.ndarray] = {}


def _rfft_tables(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cached ``(idx, ridx, twiddle)`` unpacking tables for :func:`rfft_real`."""
    cached = _RFFT_TABLE_CACHE.get(n)
    if cached is not None:
        return cached
    half = n // 2
    k = np.arange(half + 1)
    idx = k % half
    ridx = (half - k) % half
    twiddle = np.exp(-2j * np.pi * k / n)
    for table in (idx, ridx, twiddle):
        table.setflags(write=False)
    _RFFT_TABLE_CACHE[n] = (idx, ridx, twiddle)
    return idx, ridx, twiddle


def _irfft_twiddle(n: int) -> np.ndarray:
    """Cached repacking twiddle ``exp(2πi k / n)`` for :func:`irfft_real`."""
    cached = _IRFFT_TABLE_CACHE.get(n)
    if cached is not None:
        return cached
    twiddle = np.exp(2j * np.pi * np.arange(n // 2) / n)
    twiddle.setflags(write=False)
    _IRFFT_TABLE_CACHE[n] = twiddle
    return twiddle


def clear_real_fft_caches() -> None:
    """Drop the cached rfft/irfft tables (tests/memory)."""
    _RFFT_TABLE_CACHE.clear()
    _IRFFT_TABLE_CACHE.clear()


def warm_real_tables(n: int) -> None:
    """Materialise every table a size-``n`` rfft/irfft pair will read.

    Covers the unpack/repack tables of this module plus the half-size
    complex-FFT tables used by the even/odd packing trick, so a warmed
    transform size does no table construction on the first real call.
    """
    ensure_power_of_two(n, "transform size")
    if n == 1:
        return
    from repro.fftcore.radix2 import bit_reverse_indices, stage_twiddles

    half = n // 2
    if half > 1:
        bit_reverse_indices(half)
        stage_twiddles(half)
    _rfft_tables(n)
    _irfft_twiddle(n)


def rfft_real(x: np.ndarray) -> np.ndarray:
    """Real-input FFT along the last axis; returns ``n//2 + 1`` complex bins.

    Equivalent to ``numpy.fft.rfft`` for power-of-two sizes, computed with
    the half-size packing trick so it performs exactly half the butterflies
    of a full complex FFT (see :func:`repro.fftcore.ops_count.real_fft_ops`).
    """
    x = np.asarray(x, dtype=np.float64)
    n = ensure_power_of_two(x.shape[-1], "transform size")
    if n == 1:
        return x.astype(np.complex128)
    # Pack even/odd samples into a half-length complex sequence.
    z = x[..., 0::2] + 1j * x[..., 1::2]
    zf = fft_radix2(z)
    # Unpack: split zf into the spectra of the even and odd subsequences.
    idx, ridx, twiddle = _rfft_tables(n)
    zk = zf[..., idx]
    zrk = np.conj(zf[..., ridx])
    even_part = 0.5 * (zk + zrk)
    odd_part = -0.5j * (zk - zrk)
    return even_part + twiddle * odd_part


def irfft_real(xf: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft_real`; returns a real array of length ``n``.

    ``xf`` holds the ``n//2 + 1`` non-redundant bins of a Hermitian
    spectrum. ``n`` defaults to ``2 * (xf.shape[-1] - 1)``.
    """
    xf = np.asarray(xf, dtype=np.complex128)
    if n is None:
        n = 2 * (xf.shape[-1] - 1)
    ensure_power_of_two(n, "transform size")
    if xf.shape[-1] != n // 2 + 1:
        raise ShapeError(
            f"expected {n // 2 + 1} half-spectrum bins for n={n}, "
            f"got {xf.shape[-1]}"
        )
    if n == 1:
        return xf[..., 0].real[..., np.newaxis].copy()
    half = n // 2
    # Re-pack the half spectrum into the spectrum of the complex sequence z.
    k = np.arange(half)
    xk = xf[..., :half]
    xrk = np.conj(xf[..., half - k])
    even_part = 0.5 * (xk + xrk)
    odd_part = 0.5 * (xk - xrk) * _irfft_twiddle(n)
    zf = even_part + 1j * odd_part
    z = ifft_radix2(zf)
    out = np.empty(xf.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0::2] = z.real
    out[..., 1::2] = z.imag
    return out
