"""Real-input FFT exploiting Hermitian symmetry (paper §4.1, Fig 10).

CirCNN's inputs "are from actual applications and are real values without
imaginary parts", so the FFT of each block is Hermitian-symmetric and half
of the butterfly outputs ("the outcomes in the red circles") never need to
be computed or stored. This module implements that optimisation in its
classical software form: a length-``n`` real FFT computed as one length-
``n/2`` *complex* FFT of the packed sequence ``z[j] = x[2j] + i·x[2j+1]``
followed by an O(n) unpacking stage.

The returned half-spectrum layout matches ``numpy.fft.rfft`` /
``numpy.fft.irfft`` (``n//2 + 1`` bins).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.fftcore.radix2 import fft_radix2, ifft_radix2
from repro.utils.validation import ensure_power_of_two


def rfft_real(x: np.ndarray) -> np.ndarray:
    """Real-input FFT along the last axis; returns ``n//2 + 1`` complex bins.

    Equivalent to ``numpy.fft.rfft`` for power-of-two sizes, computed with
    the half-size packing trick so it performs exactly half the butterflies
    of a full complex FFT (see :func:`repro.fftcore.ops_count.real_fft_ops`).
    """
    x = np.asarray(x, dtype=np.float64)
    n = ensure_power_of_two(x.shape[-1], "transform size")
    if n == 1:
        return x.astype(np.complex128)
    half = n // 2
    # Pack even/odd samples into a half-length complex sequence.
    z = x[..., 0::2] + 1j * x[..., 1::2]
    zf = fft_radix2(z)
    # Unpack: split zf into the spectra of the even and odd subsequences.
    k = np.arange(half + 1)
    idx = k % half
    ridx = (half - k) % half
    zk = zf[..., idx]
    zrk = np.conj(zf[..., ridx])
    even_part = 0.5 * (zk + zrk)
    odd_part = -0.5j * (zk - zrk)
    twiddle = np.exp(-2j * np.pi * k / n)
    return even_part + twiddle * odd_part


def irfft_real(xf: np.ndarray, n: int | None = None) -> np.ndarray:
    """Inverse of :func:`rfft_real`; returns a real array of length ``n``.

    ``xf`` holds the ``n//2 + 1`` non-redundant bins of a Hermitian
    spectrum. ``n`` defaults to ``2 * (xf.shape[-1] - 1)``.
    """
    xf = np.asarray(xf, dtype=np.complex128)
    if n is None:
        n = 2 * (xf.shape[-1] - 1)
    ensure_power_of_two(n, "transform size")
    if xf.shape[-1] != n // 2 + 1:
        raise ShapeError(
            f"expected {n // 2 + 1} half-spectrum bins for n={n}, "
            f"got {xf.shape[-1]}"
        )
    if n == 1:
        return xf[..., 0].real[..., np.newaxis].copy()
    half = n // 2
    # Re-pack the half spectrum into the spectrum of the complex sequence z.
    k = np.arange(half)
    xk = xf[..., :half]
    xrk = np.conj(xf[..., half - k])
    even_part = 0.5 * (xk + xrk)
    odd_part = 0.5 * (xk - xrk) * np.exp(2j * np.pi * k / n)
    zf = even_part + 1j * odd_part
    z = ifft_radix2(zf)
    out = np.empty(xf.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0::2] = z.real
    out[..., 1::2] = z.imag
    return out
