"""Direct O(n^2) discrete Fourier transform.

This is the textbook definition used as ground truth when testing the
radix-2 kernel; it is deliberately simple and never used on a hot path.
"""

from __future__ import annotations

import numpy as np


def _dft_matrix(n: int, sign: float) -> np.ndarray:
    """Return the n-by-n DFT matrix ``exp(sign * 2j*pi*j*k/n)``."""
    j, k = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return np.exp(sign * 2j * np.pi * j * k / n)


def dft_direct(x: np.ndarray) -> np.ndarray:
    """Compute the DFT of ``x`` along its last axis by direct summation.

    Matches ``numpy.fft.fft`` conventions: ``X[k] = sum_j x[j] e^{-2πi jk/n}``.
    """
    x = np.asarray(x)
    n = x.shape[-1]
    return x @ _dft_matrix(n, -1.0).T


def idft_direct(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`dft_direct` (includes the 1/n normalisation)."""
    x = np.asarray(x)
    n = x.shape[-1]
    return (x @ _dft_matrix(n, +1.0).T) / n
