"""Iterative radix-2 Cooley–Tukey FFT, vectorised over leading batch axes.

The CirCNN basic computing block (paper Fig 10) is a hardware pipeline of
radix-2 butterfly stages; this module is the software model of the exact
same dataflow: bit-reversal permutation followed by ``log2(n)`` butterfly
stages. Each stage here performs the same complex multiply–add the hardware
butterfly performs, so the op counts in :mod:`repro.fftcore.ops_count`
describe both implementations.

Only power-of-two sizes are supported, mirroring the hardware constraint.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_power_of_two


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation of ``range(n)`` (n a power of two).

    This is the input reordering of a decimation-in-time radix-2 FFT: the
    element at position ``i`` moves to the position whose binary index is
    ``i`` written backwards in ``log2(n)`` bits.
    """
    ensure_power_of_two(n, "n")
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx = idx >> 1
    return rev


def _fft_inplace(y: np.ndarray, n: int) -> np.ndarray:
    """Run the butterfly stages of a forward FFT on bit-reversed data ``y``.

    ``y`` has shape ``(..., n)`` and complex dtype; it is modified in place
    stage by stage, exactly one stage per level of the hardware pipeline.
    """
    m = 2
    while m <= n:
        half = m // 2
        # Twiddle factors for this stage: W_m^k = exp(-2πi k / m).
        twiddle = np.exp(-2j * np.pi * np.arange(half) / m)
        blocks = y.reshape(y.shape[:-1] + (n // m, m))
        even = blocks[..., :half]
        odd = blocks[..., half:] * twiddle
        upper = even + odd
        lower = even - odd
        blocks[..., :half] = upper
        blocks[..., half:] = lower
        m *= 2
    return y


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Forward FFT of ``x`` along the last axis (size must be a power of two).

    Matches ``numpy.fft.fft`` conventions and supports arbitrary leading
    batch dimensions.
    """
    x = np.asarray(x)
    n = ensure_power_of_two(x.shape[-1], "transform size")
    if n == 1:
        return x.astype(np.complex128, copy=True)
    y = x[..., bit_reverse_indices(n)].astype(np.complex128, copy=True)
    return _fft_inplace(y, n)


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse FFT along the last axis with the usual ``1/n`` normalisation.

    Implemented as the conjugate trick ``conj(fft(conj(x))) / n`` so the
    hardware only ever needs the forward butterfly network — the property
    the paper uses to run IFFT on the same basic computing block (§4.1:
    "IFFT can be implemented using the same structure as FFT").
    """
    x = np.asarray(x)
    n = ensure_power_of_two(x.shape[-1], "transform size")
    return np.conj(fft_radix2(np.conj(x))) / n
