"""Iterative radix-2 Cooley–Tukey FFT, vectorised over leading batch axes.

The CirCNN basic computing block (paper Fig 10) is a hardware pipeline of
radix-2 butterfly stages; this module is the software model of the exact
same dataflow: bit-reversal permutation followed by ``log2(n)`` butterfly
stages. Each stage here performs the same complex multiply–add the hardware
butterfly performs, so the op counts in :mod:`repro.fftcore.ops_count`
describe both implementations.

Only power-of-two sizes are supported, mirroring the hardware constraint.

Bit-reversal permutations and per-stage twiddle-factor tables depend only
on the transform size, so they are computed once per ``n`` and served from
module-level caches (the software analogue of the hardware twiddle ROM);
no trigonometry is re-evaluated on the hot path after the first transform
of a given size.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_power_of_two

_BIT_REVERSE_CACHE: dict[int, np.ndarray] = {}
_STAGE_TWIDDLE_CACHE: dict[int, tuple[np.ndarray, ...]] = {}


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the bit-reversal permutation of ``range(n)`` (n a power of two).

    This is the input reordering of a decimation-in-time radix-2 FFT: the
    element at position ``i`` moves to the position whose binary index is
    ``i`` written backwards in ``log2(n)`` bits. The result is cached per
    ``n`` and returned read-only.
    """
    ensure_power_of_two(n, "n")
    cached = _BIT_REVERSE_CACHE.get(n)
    if cached is not None:
        return cached
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx = idx >> 1
    rev.setflags(write=False)
    _BIT_REVERSE_CACHE[n] = rev
    return rev


def stage_twiddles(n: int) -> tuple[np.ndarray, ...]:
    """Per-stage twiddle tables ``W_m^k = exp(-2πi k / m)`` for a size-``n``
    forward FFT, one read-only array of length ``m/2`` per butterfly level
    (``m = 2, 4, ..., n``). Cached per ``n`` — the twiddle-ROM contents of
    the paper's Fig 10 pipeline.
    """
    ensure_power_of_two(n, "n")
    cached = _STAGE_TWIDDLE_CACHE.get(n)
    if cached is not None:
        return cached
    tables = []
    m = 2
    while m <= n:
        half = m // 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / m)
        twiddle.setflags(write=False)
        tables.append(twiddle)
        m *= 2
    result = tuple(tables)
    _STAGE_TWIDDLE_CACHE[n] = result
    return result


def clear_twiddle_caches() -> None:
    """Drop the cached bit-reversal and twiddle tables (tests/memory)."""
    _BIT_REVERSE_CACHE.clear()
    _STAGE_TWIDDLE_CACHE.clear()


def _fft_inplace(y: np.ndarray, n: int) -> np.ndarray:
    """Run the butterfly stages of a forward FFT on bit-reversed data ``y``.

    ``y`` has shape ``(..., n)`` and complex dtype; it is modified in place
    stage by stage, exactly one stage per level of the hardware pipeline.
    """
    m = 2
    for twiddle in stage_twiddles(n):
        half = m // 2
        blocks = y.reshape(y.shape[:-1] + (n // m, m))
        even = blocks[..., :half]
        odd = blocks[..., half:] * twiddle
        upper = even + odd
        lower = even - odd
        blocks[..., :half] = upper
        blocks[..., half:] = lower
        m *= 2
    return y


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Forward FFT of ``x`` along the last axis (size must be a power of two).

    Matches ``numpy.fft.fft`` conventions and supports arbitrary leading
    batch dimensions.
    """
    x = np.asarray(x)
    n = ensure_power_of_two(x.shape[-1], "transform size")
    if n == 1:
        return x.astype(np.complex128, copy=True)
    y = x[..., bit_reverse_indices(n)].astype(np.complex128, copy=True)
    return _fft_inplace(y, n)


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse FFT along the last axis with the usual ``1/n`` normalisation.

    Implemented as the conjugate trick ``conj(fft(conj(x))) / n`` so the
    hardware only ever needs the forward butterfly network — the property
    the paper uses to run IFFT on the same basic computing block (§4.1:
    "IFFT can be implemented using the same structure as FFT").
    """
    x = np.asarray(x)
    n = ensure_power_of_two(x.shape[-1], "transform size")
    return np.conj(fft_radix2(np.conj(x))) / n
