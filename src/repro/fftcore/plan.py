"""FFT execution plans and the recursive decomposition of paper Fig 9.

The paper's claim that one small hardware FFT block can serve arbitrarily
large transforms rests on the *recursive property*: a size-``n`` FFT equals
two size-``n/2`` FFTs (on the even and odd samples) plus one extra butterfly
stage. :class:`FFTPlan` makes that property executable and inspectable:

- :meth:`FFTPlan.execute_recursive` evaluates the transform literally as
  the Fig 9 tree (used by tests to certify the decomposition is exact);
- :meth:`FFTPlan.stages` describes each butterfly level (size, butterfly
  count, distinct twiddles) for the architecture simulator;
- :meth:`FFTPlan.decompose_onto` reports how many base-size FFT passes and
  extra combine levels a hardware block of a given size needs — exactly the
  multiplexing scheme of §4.1 ("multiple small-scale FFT blocks can be
  multiplexed and calculate a large-scale FFT").

Plans are cheap but not free, so :func:`get_plan` memoises one plan per
transform size, and :meth:`FFTPlan.twiddle_table` / :meth:`FFTPlan.bit_reversal`
expose the per-size constant tables from the shared ROM-style caches in
:mod:`repro.fftcore.radix2` — the backend layer keys its own plan cache on
``(backend, n)`` on top of this (see :mod:`repro.fftcore.backend`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fftcore.radix2 import (
    bit_reverse_indices,
    fft_radix2,
    stage_twiddles,
)
from repro.fftcore.real import warm_real_tables
from repro.utils.validation import ensure_power_of_two

_PLAN_CACHE: dict[int, "FFTPlan"] = {}


def get_plan(n: int) -> "FFTPlan":
    """Return the memoised :class:`FFTPlan` for transform size ``n``."""
    plan = _PLAN_CACHE.get(n)
    if plan is None:
        plan = FFTPlan(n)
        _PLAN_CACHE[n] = plan
    return plan


def clear_plan_cache() -> None:
    """Drop all memoised plans (tests/memory)."""
    _PLAN_CACHE.clear()


@dataclass(frozen=True)
class FFTStage:
    """One butterfly level of a radix-2 FFT.

    Attributes
    ----------
    level:
        1-based stage index (stage 1 combines pairs, the last stage spans
        the whole transform).
    span:
        Butterfly group size ``2**level`` at this stage.
    butterflies:
        Number of butterfly operations in the stage (always ``n / 2``).
    distinct_twiddles:
        Number of distinct twiddle factors the stage reads from ROM
        (``span / 2``); the architecture's ROM sizing uses this.
    """

    level: int
    span: int
    butterflies: int
    distinct_twiddles: int


@dataclass(frozen=True)
class Decomposition:
    """How a size-``n`` FFT maps onto a size-``base`` hardware block.

    ``base_fft_passes`` small FFTs are executed on the block, then
    ``extra_levels`` full-width butterfly levels (each ``n / 2``
    butterflies) combine them into the final transform.
    """

    n: int
    base: int
    base_fft_passes: int
    extra_levels: int
    extra_butterflies: int


class FFTPlan:
    """Static description + reference executor for a radix-2 FFT of size n."""

    def __init__(self, n: int):
        self.n = ensure_power_of_two(n, "n")
        self.num_levels = int(np.log2(self.n)) if self.n > 1 else 0

    def stages(self) -> list[FFTStage]:
        """Describe every butterfly level of the transform, in order."""
        return [
            FFTStage(
                level=level,
                span=2**level,
                butterflies=self.n // 2,
                distinct_twiddles=2 ** (level - 1),
            )
            for level in range(1, self.num_levels + 1)
        ]

    @property
    def total_butterflies(self) -> int:
        """Total butterfly operations: ``(n/2) * log2(n)``."""
        return (self.n // 2) * self.num_levels

    def warm(self) -> "FFTPlan":
        """Eagerly materialise every constant table this size can read.

        Touches the bit-reversal permutation and stage twiddles for
        complex FFTs of size ``n``, plus the real-transform tables (and
        their half-size complex tables), so a server can warm each
        transform size before taking traffic and the first request does
        no table construction. Returns self.
        """
        if self.n > 1:
            bit_reverse_indices(self.n)
            stage_twiddles(self.n)
            warm_real_tables(self.n)
        return self

    def bit_reversal(self) -> np.ndarray:
        """The (cached, read-only) input permutation of this transform."""
        return bit_reverse_indices(self.n)

    def twiddle_table(self) -> tuple[np.ndarray, ...]:
        """Per-stage twiddle-factor arrays, one per butterfly level.

        Served from the module-level cache in :mod:`repro.fftcore.radix2`,
        so repeated transforms of one size share a single set of tables —
        the software analogue of the hardware twiddle ROM.
        """
        return stage_twiddles(self.n)

    def execute_recursive(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the FFT literally as the Fig 9 recursion.

        Two half-size plans transform the even and odd samples, then one
        butterfly level combines them. Numerically identical to
        :func:`repro.fftcore.radix2.fft_radix2` (tests assert this), which
        is the paper's argument that a single small FFT block suffices.
        """
        x = np.asarray(x)
        if x.shape[-1] != self.n:
            raise ValueError(f"plan is for size {self.n}, got {x.shape[-1]}")
        if self.n == 1:
            return x.astype(np.complex128, copy=True)
        half_plan = get_plan(self.n // 2)
        even = half_plan.execute_recursive(x[..., 0::2])
        odd = half_plan.execute_recursive(x[..., 1::2])
        # The combine twiddles W_n^k are exactly the last-stage ROM entries.
        twiddle = stage_twiddles(self.n)[-1]
        t = twiddle * odd
        return np.concatenate([even + t, even - t], axis=-1)

    def execute(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the FFT with the iterative kernel (production path)."""
        return fft_radix2(x)

    def decompose_onto(self, base: int) -> Decomposition:
        """Map this transform onto a hardware FFT block of size ``base``.

        Returns the number of base-size FFT passes (``n / base``) and the
        extra combine levels (``log2(n / base)``), each of which is a full
        ``n/2``-butterfly level executed on the same block.
        """
        ensure_power_of_two(base, "base")
        if base > self.n:
            raise ValueError(
                f"hardware block size {base} exceeds transform size {self.n}"
            )
        passes = self.n // base
        extra_levels = int(np.log2(passes))
        return Decomposition(
            n=self.n,
            base=base,
            base_fft_passes=passes,
            extra_levels=extra_levels,
            extra_butterflies=extra_levels * (self.n // 2),
        )
