"""Exact operation and memory-traffic counts for FFT kernels.

The architecture simulator (``repro.arch``) converts these counts into
cycles and energy; the complexity analysis (``repro.analysis.complexity``)
uses them to verify the paper's O(n log n) claims. The accounting follows
the standard radix-2 butterfly:

    one butterfly = 1 complex multiply + 2 complex additions
                  = 4 real multiplies + 6 real additions.

Real-input transforms cost half the butterflies of a complex transform —
the Fig 10 observation that Hermitian-symmetric outputs ("red circles")
need not be computed or stored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import ensure_power_of_two

# Real-operation cost of one radix-2 butterfly (complex mult + two adds).
BUTTERFLY_REAL_MULTS = 4
BUTTERFLY_REAL_ADDS = 6
BUTTERFLY_REAL_OPS = BUTTERFLY_REAL_MULTS + BUTTERFLY_REAL_ADDS

# Real-operation cost of one complex element-wise multiply (peripheral block).
COMPLEX_MULT_REAL_MULTS = 4
COMPLEX_MULT_REAL_ADDS = 2


@dataclass(frozen=True)
class FFTOpCount:
    """Operation and traffic budget of one transform.

    Attributes
    ----------
    size:
        Transform length ``n``.
    butterflies:
        Radix-2 butterfly operations executed.
    real_mults / real_adds:
        Scalar multiplies / additions implied by those butterflies.
    words_read / words_written:
        Real-valued memory words moved if every butterfly level round-trips
        through memory (the ``d = 1`` worst case; deeper pipelines divide
        this, see :mod:`repro.arch.pipeline`).
    """

    size: int
    butterflies: int
    real_mults: int
    real_adds: int
    words_read: int
    words_written: int

    @property
    def total_real_ops(self) -> int:
        """Scalar arithmetic operations (multiplies + additions)."""
        return self.real_mults + self.real_adds

    @property
    def total_words(self) -> int:
        """Total memory words moved (reads + writes)."""
        return self.words_read + self.words_written


def _levels(n: int) -> int:
    return int(math.log2(n)) if n > 1 else 0


def complex_fft_butterflies(n: int) -> int:
    """Butterflies in a size-``n`` complex radix-2 FFT: ``(n/2)·log2(n)``."""
    ensure_power_of_two(n, "n")
    return (n // 2) * _levels(n)


def real_fft_butterflies(n: int) -> int:
    """Butterfly-equivalents in a size-``n`` real-input FFT.

    Computed via the half-size packing algorithm of
    :mod:`repro.fftcore.real`: a complex FFT of size ``n/2`` —
    ``(n/4)·log2(n/2)`` butterflies — plus an O(n) unpack stage of ``n/4``
    pair-combines, each costing one butterfly-equivalent (one complex
    multiply by the twiddle plus two complex additions). The total,

        (n/4)·log2(n/2) + n/4 = (n/4)·log2(n),

    is exactly half of :func:`complex_fft_butterflies` — the paper's 2x
    symmetry saving.
    """
    ensure_power_of_two(n, "n")
    if n == 1:
        return 0
    return (n // 4) * _levels(n)


def _count(n: int, butterflies: int, complex_words_per_level: int,
           levels: int) -> FFTOpCount:
    return FFTOpCount(
        size=n,
        butterflies=butterflies,
        real_mults=butterflies * BUTTERFLY_REAL_MULTS,
        real_adds=butterflies * BUTTERFLY_REAL_ADDS,
        words_read=2 * complex_words_per_level * levels,
        words_written=2 * complex_words_per_level * levels,
    )


def complex_fft_ops(n: int) -> FFTOpCount:
    """Full op/traffic budget of a size-``n`` complex FFT (or IFFT)."""
    ensure_power_of_two(n, "n")
    return _count(n, complex_fft_butterflies(n), n, _levels(n))


def real_fft_ops(n: int) -> FFTOpCount:
    """Full op/traffic budget of a size-``n`` real-input FFT (or inverse).

    Memory traffic is also halved relative to the complex transform: only
    the ``n/2`` packed values travel through the butterfly levels.
    """
    ensure_power_of_two(n, "n")
    if n == 1:
        return FFTOpCount(1, 0, 0, 0, 0, 0)
    return _count(n, real_fft_butterflies(n), n // 2, _levels(n))


def elementwise_complex_mult_ops(bins: int) -> tuple[int, int]:
    """(real multiplies, real additions) for ``bins`` complex multiplies.

    This is the peripheral-block cost of one ``FFT(w) ∘ FFT(x)`` product
    over a half-spectrum of ``bins = k/2 + 1`` frequency bins.
    """
    if bins < 0:
        raise ValueError(f"bins must be >= 0, got {bins}")
    return bins * COMPLEX_MULT_REAL_MULTS, bins * COMPLEX_MULT_REAL_ADDS
