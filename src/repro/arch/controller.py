"""Control subsystem: compile a network into an engine instruction stream.

Fig 11 places a *control subsystem* between the layers of a DNN and the
two computing blocks: "the different setting of FFT/IFFT calculations is
configured by the control subsystem" for different layer types and sizes.
§5.4 adds that reconfigurability — running any network on the same silicon
by reprogramming, TrueNorth-style but without its restrictions — is a key
property, with "the software interface of reconfigurability ... under
development".

This module is that software interface: :func:`compile_program` lowers a
``ModelSpec`` + ``CompressionPlan`` into a typed instruction stream
(configure the FFT size; run transform batches on the basic computing
block; run element-wise/scalar batches on the peripheral block; move
weight/activation words), and :class:`Engine` interprets the stream
against the platform models. The interpreter's cycle/energy totals agree
with :func:`repro.arch.mapping.map_model` (asserted by tests), so the
instruction stream is a faithful, inspectable view of the same execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.complexity import model_work
from repro.arch.computing_block import BasicComputingBlock
from repro.arch.peripheral import PeripheralComputingBlock
from repro.arch.platforms import PlatformSpec
from repro.errors import ConfigurationError
from repro.models.descriptors import CompressionPlan, ModelSpec


# --------------------------------------------------------------------------
# Instruction set
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ConfigureFFT:
    """Reconfigure the basic computing block for a transform size.

    The recursive property (§4.1) is what makes this a pure control-plane
    action: any power-of-two size runs on the same butterfly array.
    """

    layer: str
    fft_size: int


@dataclass(frozen=True)
class RunFFTBatch:
    """Execute ``count`` real FFT/IFFT transforms of the configured size."""

    layer: str
    fft_size: int
    count: int


@dataclass(frozen=True)
class RunPeripheral:
    """Element-wise products / accumulations / scalar ops on the
    peripheral computing block."""

    layer: str
    cmult: int
    cadd: int
    scalar_ops: int


@dataclass(frozen=True)
class MoveData:
    """Stream weight and activation words through the memory subsystem."""

    layer: str
    weight_words: int
    activation_words: int


Instruction = ConfigureFFT | RunFFTBatch | RunPeripheral | MoveData


@dataclass(frozen=True)
class ControlProgram:
    """A compiled instruction stream for one network."""

    model_name: str
    instructions: tuple[Instruction, ...]

    def for_layer(self, layer: str) -> tuple[Instruction, ...]:
        """The instructions belonging to one layer, in order."""
        return tuple(i for i in self.instructions if i.layer == layer)

    def fft_sizes(self) -> tuple[int, ...]:
        """Distinct transform sizes the program reconfigures through."""
        return tuple(sorted({
            i.fft_size for i in self.instructions
            if isinstance(i, ConfigureFFT)
        }))

    def listing(self) -> str:
        """Human-readable program listing."""
        lines = [f"ControlProgram for {self.model_name}:"]
        for instruction in self.instructions:
            lines.append(f"  {instruction!r}")
        return "\n".join(lines)


def compile_program(model: ModelSpec, plan: CompressionPlan) -> ControlProgram:
    """Lower a model + compression plan into engine instructions.

    Per layer: one ``ConfigureFFT`` (when the layer has FFT work — the
    control subsystem only reconfigures on size changes, but we emit it
    per layer for inspectability), the transform batch, the peripheral
    batch, and the data movement.
    """
    instructions: list[Instruction] = []
    for work in model_work(model, plan):
        if work.fft_size > 1 and work.num_fft > 0:
            instructions.append(ConfigureFFT(work.name, work.fft_size))
            instructions.append(
                RunFFTBatch(work.name, work.fft_size, work.num_fft)
            )
        if work.cmult or work.cadd or work.scalar_ops:
            instructions.append(
                RunPeripheral(work.name, work.cmult, work.cadd,
                              work.scalar_ops)
            )
        instructions.append(
            MoveData(work.name, int(work.weight_words),
                     int(work.activation_words))
        )
    return ControlProgram(model.name, tuple(instructions))


# --------------------------------------------------------------------------
# Interpreter
# --------------------------------------------------------------------------

@dataclass
class ExecutionTrace:
    """Cycle/energy totals of interpreting a program on a platform."""

    fft_cycles: int = 0
    peripheral_cycles: int = 0
    memory_words: int = 0
    compute_energy_j: float = 0.0
    memory_energy_j: float = 0.0
    reconfigurations: int = 0

    @property
    def total_energy_j(self) -> float:
        return self.compute_energy_j + self.memory_energy_j


class Engine:
    """Interprets a :class:`ControlProgram` against a platform's blocks.

    One physical engine runs every program — the §5.4 reconfigurability
    claim; interpreting a new program needs no new hardware state beyond
    the configured FFT size.
    """

    def __init__(self, platform: PlatformSpec):
        self.platform = platform
        energy = platform.scaled_energy()
        self._fft_block = BasicComputingBlock(
            platform.config, energy, platform.memory
        )
        self._peripheral = PeripheralComputingBlock(platform.config, energy)
        self._configured_fft: int | None = None

    def execute(self, program: ControlProgram,
                model_weight_bytes: float = 0.0) -> ExecutionTrace:
        """Run a whole program and return the accumulated trace."""
        trace = ExecutionTrace()
        for instruction in program.instructions:
            self._step(instruction, trace, model_weight_bytes)
        return trace

    def _step(self, instruction: Instruction, trace: ExecutionTrace,
              model_weight_bytes: float) -> None:
        if isinstance(instruction, ConfigureFFT):
            if instruction.fft_size != self._configured_fft:
                trace.reconfigurations += 1
                self._configured_fft = instruction.fft_size
            return
        if isinstance(instruction, RunFFTBatch):
            if self._configured_fft != instruction.fft_size:
                raise ConfigurationError(
                    f"layer {instruction.layer!r}: FFT batch of size "
                    f"{instruction.fft_size} but block configured for "
                    f"{self._configured_fft}"
                )
            job = self._fft_block.run_ffts(
                instruction.fft_size, instruction.count
            )
            trace.fft_cycles += job.cycles
            trace.compute_energy_j += job.compute_energy_j
            trace.memory_energy_j += (
                job.traffic_energy_j + job.twiddle_energy_j
            )
            trace.memory_words += int(job.traffic_words)
            return
        if isinstance(instruction, RunPeripheral):
            job = self._peripheral.run(
                instruction.cmult, instruction.cadd, instruction.scalar_ops
            )
            trace.peripheral_cycles += job.cycles
            trace.compute_energy_j += job.energy_j
            return
        if isinstance(instruction, MoveData):
            bits = self.platform.config.data_bits
            trace.memory_energy_j += (
                self.platform.memory.weight_access_energy_j(
                    instruction.weight_words, bits, model_weight_bytes
                )
                + self.platform.memory.buffer_access_energy_j(
                    instruction.activation_words, bits
                )
            )
            trace.memory_words += (
                instruction.weight_words + instruction.activation_words
            )
            return
        raise ConfigurationError(f"unknown instruction {instruction!r}")


def layer_work_from_program(program: ControlProgram,
                            layer: str) -> dict[str, int]:
    """Summarise one layer's instruction stream (for tests/inspection)."""
    summary = {"fft": 0, "cmult": 0, "cadd": 0, "scalar": 0, "words": 0}
    for instruction in program.for_layer(layer):
        if isinstance(instruction, RunFFTBatch):
            summary["fft"] += instruction.count
        elif isinstance(instruction, RunPeripheral):
            summary["cmult"] += instruction.cmult
            summary["cadd"] += instruction.cadd
            summary["scalar"] += instruction.scalar_ops
        elif isinstance(instruction, MoveData):
            summary["words"] += (
                instruction.weight_words + instruction.activation_words
            )
    return summary
