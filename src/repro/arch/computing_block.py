"""Basic computing block: the (p, d) FFT butterfly pipeline (paper Fig 10).

Timing model
------------
A size-``k`` real-input FFT has ``L = log2(k)`` butterfly levels with
``k/4`` butterfly-equivalents per level (half of a complex FFT's ``k/2``
thanks to Hermitian symmetry — the Fig 10 "red circles" saving). The block
executes ``d`` consecutive levels in a pipeline of ``p`` butterfly units
per level:

- one *level group* of up to ``d`` levels costs ``ceil((k/4) / p)`` cycles
  per transform (a stream of transforms keeps all stages busy, so groups
  pipeline back to back);
- a transform needs ``ceil(L / d)`` level groups, with intermediate
  results round-tripping through memory between groups — which is why
  larger ``d`` "results in less memory accesses" (§4.3).

Small transforms under-utilise the block: when ``k/4 < p``, a level still
costs one cycle but most units idle. This is the effect the paper cites
for its CIFAR-10 model ("the DNN model we chose uses small-scale FFTs,
which limits the degree of improvements", §5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.energy import EnergyModel
from repro.arch.memory import MemorySubsystem
from repro.arch.spec import ArchitectureConfig
from repro.errors import ConfigurationError
from repro.fftcore.ops_count import real_fft_butterflies
from repro.utils.validation import ensure_power_of_two


@dataclass(frozen=True)
class FFTJobReport:
    """Cycles and energy for a batch of equal-size FFT/IFFT transforms."""

    fft_size: int
    count: int
    cycles: int
    butterflies: int
    compute_energy_j: float
    traffic_words: float
    traffic_energy_j: float
    twiddle_energy_j: float
    peak_butterflies_per_cycle: int = 1

    @property
    def total_energy_j(self) -> float:
        return self.compute_energy_j + self.traffic_energy_j + self.twiddle_energy_j

    @property
    def utilization(self) -> float:
        """Fraction of the ``p * d`` butterfly slots actually used.

        Small transforms cannot fill the array (``k/4`` butterflies per
        level against ``p`` lanes), which is the paper's CIFAR-10
        throughput limiter.
        """
        if self.cycles == 0:
            return 1.0
        slots = self.cycles * self.peak_butterflies_per_cycle
        return self.butterflies / slots


class BasicComputingBlock:
    """Cycle/energy model of the (p, d) butterfly pipeline."""

    def __init__(self, config: ArchitectureConfig, energy: EnergyModel,
                 memory: MemorySubsystem):
        self.config = config
        self.energy = energy
        self.memory = memory

    def level_groups(self, fft_size: int) -> int:
        """Memory round trips of one transform: ``ceil(log2(k) / d)``."""
        ensure_power_of_two(fft_size, "fft_size")
        levels = int(math.log2(fft_size)) if fft_size > 1 else 0
        if levels == 0:
            return 0
        return -(-levels // self.config.depth)

    def run_ffts(self, fft_size: int, count: int) -> FFTJobReport:
        """Execute ``count`` real-input transforms of size ``fft_size``.

        Returns the streamed-steady-state cycle count (pipeline fill is a
        few tens of cycles and is ignored relative to thousands of
        transforms per layer) and the energy split into butterfly compute,
        intermediate-result memory traffic, and twiddle ROM reads.
        """
        ensure_power_of_two(fft_size, "fft_size")
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        if count == 0 or fft_size == 1:
            return FFTJobReport(
                fft_size, count, 0, 0, 0.0, 0.0, 0.0, 0.0,
                self.peak_butterflies_per_cycle(),
            )
        levels = int(math.log2(fft_size))
        per_level = max(1, fft_size // 4)  # real-input butterflies per level
        groups = self.level_groups(fft_size)
        cycles_per_group = -(-per_level // self.config.parallelism)
        cycles = count * groups * cycles_per_group
        butterflies = count * real_fft_butterflies(fft_size)
        compute = butterflies * self.energy.butterfly_energy_j
        # Between level groups the k/2 packed complex values (k real words)
        # round-trip through on-chip memory: one write + one read per trip.
        trips = groups
        traffic_words = count * fft_size * trips * 2.0
        traffic = self.memory.buffer_access_energy_j(
            traffic_words, self.config.data_bits
        )
        # Each butterfly reads one complex twiddle (2 words) from ROM.
        twiddle = self.memory.rom_access_energy_j(
            butterflies * 2.0, self.config.data_bits
        )
        return FFTJobReport(
            fft_size=fft_size,
            count=count,
            cycles=cycles,
            butterflies=butterflies,
            compute_energy_j=compute,
            traffic_words=traffic_words,
            traffic_energy_j=traffic,
            twiddle_energy_j=twiddle,
            peak_butterflies_per_cycle=self.peak_butterflies_per_cycle(),
        )

    def peak_butterflies_per_cycle(self) -> int:
        """Throughput ceiling of the block: ``p * d`` (one per unit)."""
        return self.config.parallelism * self.config.depth
