"""Algorithm 3: design optimisation of the basic computing block.

The paper's procedure:

1. derive an upper bound on the parallelisation degree ``p`` from memory
   bandwidth and hardware resource limits;
2. ternary-search ``p`` maximising ``M(Perf(p, d), Power(p, d))`` with
   ``d = 1``;
3. ternary-search ``d`` given the chosen ``p``.

``p`` gets optimisation priority "in order not to increase control
complexity" — deeper pipelines need more control than wider ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.power import PerfPowerModel
from repro.errors import ConfigurationError


def ternary_search_int(objective: Callable[[int], float], low: int,
                       high: int) -> int:
    """Maximise a unimodal integer function on ``[low, high]``.

    Classic discrete ternary search: shrink the interval by thirds while
    it is wide, finish with a linear scan of the remnant (which also makes
    the search robust to small plateaus).
    """
    if low > high:
        raise ConfigurationError(f"empty search range [{low}, {high}]")
    while high - low > 3:
        third = (high - low) // 3
        mid1 = low + third
        mid2 = high - third
        if objective(mid1) < objective(mid2):
            low = mid1 + 1
        else:
            high = mid2 - 1
    return max(range(low, high + 1), key=objective)


@dataclass(frozen=True)
class DesignPoint:
    """Result of Algorithm 3: the chosen (p, d) and its metrics."""

    parallelism: int
    depth: int
    performance_gops: float
    power_w: float
    objective: float


def memory_bandwidth_bound(model: PerfPowerModel) -> int:
    """Upper bound on p from the memory interface (Algorithm 3, step 1).

    Each butterfly consumes two words and produces two words per cycle, so
    sustaining ``p`` butterflies per level needs ~4p words/cycle; the
    bound is the largest p the configured memory lanes can feed.
    """
    lanes = model.platform.config.memory_words_per_cycle
    return max(1, lanes)


def optimize_design(model: PerfPowerModel, p_max: int | None = None,
                    d_max: int | None = None) -> DesignPoint:
    """Run Algorithm 3 on a Perf/Power model.

    Parameters
    ----------
    model:
        Workload-bound Perf/Power evaluator.
    p_max:
        Resource bound on p; defaults to the memory-bandwidth bound.
    d_max:
        Control-complexity bound on d; defaults to the platform's
        ``max_depth`` (the paper uses 3).
    """
    if p_max is None:
        p_max = memory_bandwidth_bound(model)
    if d_max is None:
        d_max = model.platform.config.max_depth
    if p_max < 1 or d_max < 1:
        raise ConfigurationError("search bounds must be >= 1")

    # Step 2: ternary search on p with d = 1.
    best_p = ternary_search_int(lambda p: model.objective(p, 1), 1, p_max)
    # Step 3: ternary search on d at the chosen p.
    best_d = ternary_search_int(lambda d: model.objective(best_p, d), 1, d_max)

    point = model.evaluate(best_p, best_d)
    return DesignPoint(
        parallelism=best_p,
        depth=best_d,
        performance_gops=point.performance_gops,
        power_w=point.power_w,
        objective=model.objective(best_p, best_d),
    )
