"""Multi-engine throughput scaling (paper §5.1).

The paper's answer to ESE's throughput lead: "we can increase the number
of FPGAs to process multiple neural networks in parallel, thereby
improving the throughput without incurring any degradation in the energy
efficiency". This module models that replication: N independent engines
each run their own stream, so throughput and power scale by N and
GOPS/W is invariant (modulo a shared-infrastructure overhead knob).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.mapping import InferenceReport
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScaledDeployment:
    """N replicas of one engine running independent streams."""

    base: InferenceReport
    num_engines: int
    shared_overhead_w: float = 0.0

    def __post_init__(self):
        if self.num_engines < 1:
            raise ConfigurationError(
                f"num_engines must be >= 1, got {self.num_engines}"
            )
        if self.shared_overhead_w < 0:
            raise ConfigurationError("shared overhead must be non-negative")

    @property
    def throughput_fps(self) -> float:
        """Aggregate frames per second across the replicas."""
        return self.base.throughput_fps * self.num_engines

    @property
    def power_w(self) -> float:
        """Aggregate power: per-engine power times N, plus shared parts
        (host interface, board regulators)."""
        return self.base.power_w * self.num_engines + self.shared_overhead_w

    @property
    def equivalent_gops(self) -> float:
        """Aggregate equivalent performance."""
        return self.base.equivalent_gops * self.num_engines

    @property
    def gops_per_watt(self) -> float:
        """Energy efficiency of the deployment.

        Equals the single-engine efficiency when ``shared_overhead_w`` is
        zero — the paper's "without incurring any degradation" claim — and
        degrades gracefully otherwise.
        """
        return self.equivalent_gops / self.power_w

    @property
    def latency_s(self) -> float:
        """Per-image latency is unchanged — replication buys throughput,
        not latency (each image still traverses one engine)."""
        return self.base.latency_s


def engines_needed_for_throughput(base: InferenceReport,
                                  target_fps: float) -> int:
    """Smallest replica count reaching a target aggregate frame rate."""
    if target_fps <= 0:
        raise ConfigurationError(f"target_fps must be > 0, got {target_fps}")
    return max(1, -(-int(target_fps * 1e9) // int(base.throughput_fps * 1e9)))
