"""Per-operation energy model with bit-width and voltage scaling.

Energies are parameterised at a *nominal* operating point (16-bit words,
nominal supply voltage) and scaled:

- multiplier energy grows quadratically with word length (array
  multiplier area/activity ~ bits^2);
- adder, comparator and memory energies grow linearly with word length;
- all dynamic energies scale with V^2 (CV^2 switching energy), which is
  the lever behind the paper's near-threshold study (Fig 15): dropping
  from nominal to 0.55 V and from 16-bit to 4-bit words compounds to the
  ~17x energy-efficiency gain the paper reports.

The nominal constants live in :mod:`repro.arch.platforms`, calibrated per
technology (45 nm ASIC vs FPGA fabric) from the accelerator literature the
paper compares against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EnergyModel:
    """Scalar-operation energies (joules) at a given design point.

    Attributes
    ----------
    mult_energy_j / add_energy_j:
        One scalar multiply / add (or compare) at ``reference_bits`` and
        ``reference_voltage``.
    register_energy_j:
        One pipeline-register word write (intra-level pipelining cost).
    reference_bits, reference_voltage:
        Operating point at which the above are quoted.
    """

    mult_energy_j: float
    add_energy_j: float
    register_energy_j: float
    reference_bits: int = 16
    reference_voltage: float = 1.0

    def __post_init__(self):
        if min(self.mult_energy_j, self.add_energy_j,
               self.register_energy_j) < 0:
            raise ConfigurationError("energies must be non-negative")
        if self.reference_bits < 2 or self.reference_voltage <= 0:
            raise ConfigurationError("invalid reference operating point")

    def scaled(self, bits: int | None = None,
               voltage: float | None = None) -> "EnergyModel":
        """Return the model re-quoted at a new word length / supply voltage."""
        bits = self.reference_bits if bits is None else bits
        voltage = self.reference_voltage if voltage is None else voltage
        if bits < 2:
            raise ConfigurationError(f"bits must be >= 2, got {bits}")
        if voltage <= 0:
            raise ConfigurationError(f"voltage must be > 0, got {voltage}")
        bit_ratio = bits / self.reference_bits
        volt_ratio = (voltage / self.reference_voltage) ** 2
        return EnergyModel(
            mult_energy_j=self.mult_energy_j * bit_ratio**2 * volt_ratio,
            add_energy_j=self.add_energy_j * bit_ratio * volt_ratio,
            register_energy_j=self.register_energy_j * bit_ratio * volt_ratio,
            reference_bits=bits,
            reference_voltage=voltage,
        )

    # -- composite operations ------------------------------------------------
    @property
    def butterfly_energy_j(self) -> float:
        """One radix-2 butterfly: 4 multiplies + 6 adds (complex MAC pair)."""
        return 4 * self.mult_energy_j + 6 * self.add_energy_j

    @property
    def complex_mult_energy_j(self) -> float:
        """One complex element-wise product: 4 multiplies + 2 adds."""
        return 4 * self.mult_energy_j + 2 * self.add_energy_j

    @property
    def mac_energy_j(self) -> float:
        """One scalar multiply-accumulate (dense-layer fallback)."""
        return self.mult_energy_j + self.add_energy_j
