"""Architecture configuration — the paper's design knobs (§4.1–4.3).

``parallelism`` (p) and ``depth`` (d) are the two parameters of the basic
computing block (Fig 10): p butterfly units operate in parallel within a
level, d consecutive butterfly levels are kept in the pipeline before
results round-trip through memory. The remaining fields size the
peripheral block and the memory interface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ArchitectureConfig:
    """One design point of the CirCNN engine.

    Attributes
    ----------
    parallelism:
        ``p`` — butterfly units per pipeline level.
    depth:
        ``d`` — butterfly levels resident in the pipeline. The paper keeps
        ``d <= 3`` ("a d value higher than 3 will result in high control
        difficulty and pipelining bubbles").
    frequency_hz:
        Target clock. The paper's prototypes target ~200 MHz.
    multipliers:
        Peripheral-block scalar multipliers (element-wise products and the
        MAC fallback for uncompressed k=1 layers).
    alus:
        Peripheral-block adders/comparators (bias, ReLU, pooling).
    memory_words_per_cycle:
        On-chip memory bandwidth in 1-word lanes per cycle.
    data_bits:
        Datapath word length (16 in the paper; 4 in the near-threshold
        study).
    max_depth:
        Control-complexity bound on d (paper: 3).
    """

    parallelism: int
    depth: int
    frequency_hz: float
    multipliers: int
    alus: int
    memory_words_per_cycle: int
    data_bits: int = 16
    max_depth: int = 3

    def __post_init__(self):
        if self.parallelism < 1:
            raise ConfigurationError(
                f"parallelism must be >= 1, got {self.parallelism}"
            )
        if not 1 <= self.depth <= self.max_depth:
            raise ConfigurationError(
                f"depth must be in [1, {self.max_depth}], got {self.depth}"
            )
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be > 0, got {self.frequency_hz}"
            )
        if self.multipliers < 1 or self.alus < 1:
            raise ConfigurationError("multipliers and alus must be >= 1")
        if self.memory_words_per_cycle < 1:
            raise ConfigurationError("memory_words_per_cycle must be >= 1")
        if self.data_bits < 2:
            raise ConfigurationError(f"data_bits must be >= 2, got {self.data_bits}")

    def with_pd(self, parallelism: int | None = None,
                depth: int | None = None) -> "ArchitectureConfig":
        """Copy with new (p, d) — the design-space-exploration helper."""
        return replace(
            self,
            parallelism=self.parallelism if parallelism is None else parallelism,
            depth=self.depth if depth is None else depth,
        )

    @property
    def butterfly_units(self) -> int:
        """Physical butterfly units instantiated: ``p * d``."""
        return self.parallelism * self.depth

    def __str__(self) -> str:
        return (
            f"ArchitectureConfig(p={self.parallelism}, d={self.depth}, "
            f"f={self.frequency_hz / 1e6:.0f}MHz, bits={self.data_bits})"
        )
