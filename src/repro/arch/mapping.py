"""Map a model onto a platform: cycles, energy, throughput, efficiency.

This is the control-subsystem view of §4.2: every layer is decomposed into
FFT work (basic computing block), frequency-domain / scalar work
(peripheral block), and memory traffic. Within a layer the three streams
are pipelined, so the layer's cycle count is the maximum of the three; a
network executes layer by layer (the paper's "layerwise implementation",
§5.1).

Performance is reported in *equivalent GOPS* — operations of the
uncompressed network divided by the compressed run time — matching the
paper's metric ("we use equivalent GOPS ... for all methods with weight
storage compression", §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.complexity import LayerWork, model_work
from repro.arch.computing_block import BasicComputingBlock
from repro.arch.peripheral import PeripheralComputingBlock
from repro.arch.pipeline import PipelineScheme, pipeline_scheme
from repro.arch.platforms import PlatformSpec
from repro.models.descriptors import CompressionPlan, ModelSpec


@dataclass(frozen=True)
class LayerReport:
    """Simulated execution of one layer (per input image)."""

    name: str
    kind: str
    cycles: int
    fft_cycles: int
    peripheral_cycles: int
    memory_cycles: int
    energy_j: float
    compute_energy_j: float
    memory_energy_j: float
    dense_macs: int


@dataclass(frozen=True)
class InferenceReport:
    """Simulated end-to-end inference of a model on a platform."""

    model_name: str
    platform_name: str
    layers: tuple[LayerReport, ...]
    frequency_hz: float
    static_power_w: float
    model_weight_bytes: float
    fits_on_chip: bool

    # -- time ---------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def latency_s(self) -> float:
        """Per-image latency (layerwise execution)."""
        return self.total_cycles / self.frequency_hz

    @property
    def throughput_fps(self) -> float:
        """Images per second (single engine, layerwise)."""
        return 1.0 / self.latency_s

    # -- energy / power -------------------------------------------------------
    @property
    def dynamic_energy_j(self) -> float:
        return sum(layer.energy_j for layer in self.layers)

    @property
    def energy_per_image_j(self) -> float:
        return self.dynamic_energy_j + self.static_power_w * self.latency_s

    @property
    def power_w(self) -> float:
        """Average power while streaming images back to back."""
        return self.energy_per_image_j / self.latency_s

    # -- paper metrics ---------------------------------------------------------
    @property
    def dense_ops(self) -> int:
        """Operations of the uncompressed network: 2 x MACs (§5.1)."""
        return 2 * sum(layer.dense_macs for layer in self.layers)

    @property
    def equivalent_gops(self) -> float:
        """Equivalent GOPS: dense ops / compressed run time."""
        return self.dense_ops / self.latency_s / 1e9

    @property
    def gops_per_watt(self) -> float:
        """Equivalent energy efficiency (GOPS/W)."""
        return self.equivalent_gops / self.power_w

    @property
    def fps_per_watt(self) -> float:
        """Throughput efficiency, the Fig 14 metric."""
        return self.throughput_fps / self.power_w

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.model_name} on {self.platform_name}:",
            f"  latency      {self.latency_s * 1e3:9.3f} ms/image",
            f"  throughput   {self.throughput_fps:9.1f} images/s",
            f"  power        {self.power_w:9.3f} W "
            f"(static {self.static_power_w:.3f} W)",
            f"  equiv. perf  {self.equivalent_gops:9.1f} GOPS",
            f"  efficiency   {self.gops_per_watt:9.1f} GOPS/W, "
            f"{self.fps_per_watt:.1f} fps/W",
            f"  weights      {self.model_weight_bytes / 2**20:.3f} MiB "
            f"({'on-chip' if self.fits_on_chip else 'DRAM overflow'})",
        ]
        return "\n".join(lines)


def _model_weight_bytes(model: ModelSpec, plan: CompressionPlan) -> float:
    """On-chip weight footprint under a plan (defining vectors, plan bits)."""
    return plan.total_compressed_params(model) * plan.weight_bits / 8.0


def map_layer(work: LayerWork, platform: PlatformSpec,
              model_weight_bytes: float,
              scheme: PipelineScheme) -> LayerReport:
    """Simulate one layer's work items on a platform."""
    config = platform.config
    energy = platform.scaled_energy()
    fft_block = BasicComputingBlock(config, energy, platform.memory)
    peripheral = PeripheralComputingBlock(config, energy)

    if work.fft_size > 1:
        fft_report = fft_block.run_ffts(work.fft_size, work.num_fft)
    else:
        fft_report = fft_block.run_ffts(2, 0)  # empty job
    peripheral_report = peripheral.run(work.cmult, work.cadd, work.scalar_ops)

    # Memory traffic: weights (once per image), activations in/out, and the
    # FFT intermediate round trips already counted in fft_report.
    bits = config.data_bits
    weight_energy = platform.memory.weight_access_energy_j(
        work.weight_words, bits, model_weight_bytes
    )
    activation_energy = platform.memory.buffer_access_energy_j(
        work.activation_words, bits
    )
    traffic_words = (
        work.weight_words + work.activation_words + fft_report.traffic_words
    )
    memory_cycles = -(-int(traffic_words) // config.memory_words_per_cycle)
    if not platform.memory.fits_on_chip(model_weight_bytes):
        overflow = 1.0 - (
            platform.memory.on_chip_capacity_bytes / model_weight_bytes
        )
        extra = work.weight_words * overflow * (
            platform.memory.dram_bandwidth_penalty - 1.0
        )
        memory_cycles += -(-int(extra) // config.memory_words_per_cycle)

    # Register energy of intra-level pipelining (0 for inter-level).
    register_energy = (
        fft_report.butterflies
        * scheme.register_writes_per_butterfly
        * energy.register_energy_j
    )

    # The three engines stream concurrently within a layer.
    cycles = int(
        scheme.effective_cycles(
            max(fft_report.cycles, peripheral_report.cycles, memory_cycles)
        )
    )
    compute_energy = (
        fft_report.compute_energy_j
        + peripheral_report.energy_j
        + register_energy
    )
    memory_energy = (
        fft_report.traffic_energy_j
        + fft_report.twiddle_energy_j
        + weight_energy
        + activation_energy
    )
    return LayerReport(
        name=work.name,
        kind=work.kind,
        cycles=max(cycles, 1),
        fft_cycles=fft_report.cycles,
        peripheral_cycles=peripheral_report.cycles,
        memory_cycles=memory_cycles,
        energy_j=compute_energy + memory_energy,
        compute_energy_j=compute_energy,
        memory_energy_j=memory_energy,
        dense_macs=work.dense_macs,
    )


def map_model(model: ModelSpec, plan: CompressionPlan,
              platform: PlatformSpec,
              scheme: str | PipelineScheme = "inter_level") -> InferenceReport:
    """Simulate a whole model under a compression plan on a platform.

    Parameters
    ----------
    model, plan:
        Shape descriptor and per-layer block sizes.
    platform:
        Platform constants (see :mod:`repro.arch.platforms`).
    scheme:
        Pipelining scheme name or object (§4.3); the default matches the
        paper's 200 MHz prototypes.
    """
    if isinstance(scheme, str):
        scheme = pipeline_scheme(scheme)
    weight_bytes = _model_weight_bytes(model, plan)
    layers = tuple(
        map_layer(work, platform, weight_bytes, scheme)
        for work in model_work(model, plan)
    )
    return InferenceReport(
        model_name=model.name,
        platform_name=platform.name,
        layers=layers,
        frequency_hz=scheme.effective_frequency(platform.config.frequency_hz),
        static_power_w=platform.static_power_w,
        model_weight_bytes=weight_bytes,
        fits_on_chip=platform.memory.fits_on_chip(weight_bytes),
    )
