"""Platform specifications and published reference design points (§5).

A :class:`PlatformSpec` bundles the technology constants (per-op energies,
memory energies, static power, clock) with a default
:class:`~repro.arch.spec.ArchitectureConfig` sized to the platform's
resource budget. The calibration philosophy (DESIGN.md §6): per-op
energies come from the accelerator literature of the paper's era
(Horowitz ISSCC'14 45 nm figures; FPGA fabric at roughly an order of
magnitude above ASIC); the small number of free parameters were fixed once
so the §4.3 worked example lands in-band, then reused unchanged for the
Fig 13–15 experiments.

:class:`ReferenceDesign` records the *published* comparison points of
Figs 13 and 15 — those systems are not simulated, exactly as the paper
takes their numbers from the cited publications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.energy import EnergyModel
from repro.arch.memory import MemorySubsystem
from repro.arch.spec import ArchitectureConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlatformSpec:
    """A hardware platform the CirCNN engine can be instantiated on."""

    name: str
    config: ArchitectureConfig
    energy: EnergyModel
    memory: MemorySubsystem
    static_power_w: float
    voltage: float = 1.0

    def __post_init__(self):
        if self.static_power_w < 0:
            raise ConfigurationError("static power must be non-negative")

    def scaled_energy(self) -> EnergyModel:
        """Energy model at this platform's word length and voltage."""
        return self.energy.scaled(
            bits=self.config.data_bits, voltage=self.voltage
        )


@dataclass(frozen=True)
class ReferenceDesign:
    """A published comparison system (performance / efficiency as reported)."""

    name: str
    platform_kind: str  # "fpga" | "asic" | "gpu" | "neuromorphic"
    gops: float
    gops_per_watt: float
    source: str


# ---------------------------------------------------------------------------
# CirCNN platforms
# ---------------------------------------------------------------------------

def fpga_cyclone_v(parallelism: int = 64, depth: int = 2,
                   frequency_hz: float = 200e6) -> PlatformSpec:
    """Intel (Altera) Cyclone V 5CEA9 — the paper's FPGA prototype (§5.1).

    Resource rationale: the 5CEA9 offers ~684 DSP-ish multiplier resources
    and ~12 Mb of block RAM. p=64, d=2 butterfly units consume 4 mults
    each in time-multiplexed fashion; the peripheral bank gets 512 scalar
    multipliers (DSP + soft logic). Fabric energy per op is taken ~8x the
    45 nm ASIC cell figures (programmable-interconnect overhead); static
    power is the paper's "<0.35 W" figure.
    """
    config = ArchitectureConfig(
        parallelism=parallelism,
        depth=depth,
        frequency_hz=frequency_hz,
        multipliers=512,
        alus=1024,
        memory_words_per_cycle=128,
        data_bits=16,
    )
    energy = EnergyModel(
        mult_energy_j=7.0e-12,      # 16-bit multiply on FPGA fabric/DSP
        add_energy_j=0.7e-12,       # 16-bit add in soft logic
        register_energy_j=0.05e-12,
        reference_bits=16,
        reference_voltage=1.1,
    )
    memory = MemorySubsystem(
        on_chip_capacity_bytes=12 * 2**20 // 8,  # ~12 Mb block RAM
        sram_bit_energy_j=0.14e-12,
    )
    return PlatformSpec(
        name="fpga_cyclone_v",
        config=config,
        energy=energy,
        memory=memory,
        static_power_w=0.35,
        voltage=1.1,
    )


def asic_45nm(parallelism: int = 128, depth: int = 2,
              frequency_hz: float = 200e6) -> PlatformSpec:
    """Nangate 45 nm ASIC synthesis target (§5.2).

    Cell energies follow the Horowitz ISSCC'14 45 nm survey scaled to
    16-bit operands (multiply ~0.5 pJ, add ~0.05 pJ); SRAM at ~0.02 pJ/bit
    for moderate banks (CACTI-class). Clock matches the paper's 200 MHz
    target, at which it argues a single-level memory system suffices.
    """
    config = ArchitectureConfig(
        parallelism=parallelism,
        depth=depth,
        frequency_hz=frequency_hz,
        multipliers=2048,
        alus=4096,
        memory_words_per_cycle=256,
        data_bits=16,
    )
    energy = EnergyModel(
        mult_energy_j=0.35e-12,
        add_energy_j=0.05e-12,
        register_energy_j=0.01e-12,
        reference_bits=16,
        reference_voltage=1.0,
    )
    memory = MemorySubsystem(
        on_chip_capacity_bytes=4 * 2**20,  # "multiple MBs" (§4.4)
        sram_bit_energy_j=0.02e-12,
    )
    return PlatformSpec(
        name="asic_45nm",
        config=config,
        energy=energy,
        memory=memory,
        static_power_w=0.02,
        voltage=1.0,
    )


def asic_45nm_near_threshold(parallelism: int = 128,
                             depth: int = 2) -> PlatformSpec:
    """The Fig 15 near-threshold point: 0.55 V supply, 4-bit operands.

    Energy scales by (0.55/1.0)^2 on every op plus the bit-width scaling
    (quadratic for multipliers, linear elsewhere) applied automatically by
    :class:`~repro.arch.energy.EnergyModel`; the clock drops to 160 MHz
    (4-bit datapaths keep critical paths short enough to stay this fast at
    0.55 V) and leakage collapses to ~1 mW with power gating. The paper
    notes accuracy at 4 bits is poor (<20% for AlexNet) — this point
    exists for the iso-bit-width efficiency comparison only.
    """
    base = asic_45nm(parallelism=parallelism, depth=depth)
    config = ArchitectureConfig(
        parallelism=parallelism,
        depth=depth,
        frequency_hz=160e6,
        multipliers=base.config.multipliers,
        alus=base.config.alus,
        memory_words_per_cycle=base.config.memory_words_per_cycle,
        data_bits=4,
    )
    return PlatformSpec(
        name="asic_45nm_near_threshold",
        config=config,
        energy=base.energy,
        memory=base.memory,
        static_power_w=0.001,   # power-gated near-threshold leakage
        voltage=0.55,
    )


def arm_cortex_a9(frequency_hz: float = 1.0e9,
                  effective_ops_per_cycle: float = 1.4,
                  power_w: float = 1.0) -> "ProcessorModel":
    """ARM Cortex-A9 smartphone core (§5.3): a simple roofline model.

    ~1 GHz, ~1 W, and an effective scalar throughput of 1.4 ops/cycle for
    mixed FFT/NEON code (two issue ports, imperfect vectorisation of the
    butterfly network).
    """
    return ProcessorModel(
        name="arm_cortex_a9",
        frequency_hz=frequency_hz,
        effective_ops_per_cycle=effective_ops_per_cycle,
        power_w=power_w,
    )


@dataclass(frozen=True)
class ProcessorModel:
    """A scalar-processor roofline: ops/s at a fixed power draw.

    Large FFT working sets (>= ``cache_penalty_fft_size``) overflow the
    L1 cache and their strided butterfly accesses thrash it, degrading
    throughput by ``cache_penalty`` — the reason an embedded core runs
    LeNet-scale FFTs at full speed but AlexNet's size-1024 FC transforms
    much slower (the §5.3 667-layers/s regime).
    """

    name: str
    frequency_hz: float
    effective_ops_per_cycle: float
    power_w: float
    cache_penalty_fft_size: int = 512
    cache_penalty: float = 4.3

    @property
    def ops_per_second(self) -> float:
        return self.frequency_hz * self.effective_ops_per_cycle

    def runtime_s(self, real_ops: float, fft_size: int = 0) -> float:
        """Execution time for ``real_ops`` scalar operations.

        ``fft_size`` is the dominant transform size of the workload; sizes
        at or above the cache threshold incur the cache penalty.
        """
        if real_ops < 0:
            raise ConfigurationError("real_ops must be non-negative")
        time = real_ops / self.ops_per_second
        if fft_size >= self.cache_penalty_fft_size:
            time *= self.cache_penalty
        return time

    def layer_runtime_s(self, work) -> float:
        """Runtime of one :class:`~repro.analysis.complexity.LayerWork`."""
        return self.runtime_s(work.total_real_ops, work.fft_size)

    def model_runtime_s(self, works) -> float:
        """Runtime of a whole model's work list (layer by layer)."""
        return sum(self.layer_runtime_s(work) for work in works)

    def energy_j(self, real_ops: float, fft_size: int = 0) -> float:
        """Energy at the model's constant power draw."""
        return self.runtime_s(real_ops, fft_size) * self.power_w


# ---------------------------------------------------------------------------
# Published reference design points (as plotted in Figs 13 and 15)
# ---------------------------------------------------------------------------

#: Fig 13 FPGA comparison points, numbers as reported by the cited papers.
FPGA_REFERENCES: tuple[ReferenceDesign, ...] = (
    ReferenceDesign("FPGA16_Qiu", "fpga", gops=136.97, gops_per_watt=14.22,
                    source="Qiu et al., FPGA'16 (VGG on Zynq ZC706)"),
    ReferenceDesign("ICCAD16_Caffeine", "fpga", gops=310.0, gops_per_watt=12.9,
                    source="Zhang et al., ICCAD'16 (Caffeine, KU060)"),
    ReferenceDesign("FPGA17_Han_ESE", "fpga", gops=2520.0, gops_per_watt=61.5,
                    source="Han et al., FPGA'17 (ESE sparse LSTM, "
                           "equivalent-dense GOPS at 41 W)"),
    ReferenceDesign("FPGA17_Zhao", "fpga", gops=207.8, gops_per_watt=44.2,
                    source="Zhao et al., FPGA'17 (binarised CNN)"),
)

#: Fig 15 ASIC comparison points, numbers as reported by the cited papers.
ASIC_REFERENCES: tuple[ReferenceDesign, ...] = (
    ReferenceDesign("EIE", "asic", gops=102.0, gops_per_watt=172.9,
                    source="Han et al., ISCA'16 (102 GOPS @ 0.59 W, 45 nm)"),
    ReferenceDesign("Eyeriss", "asic", gops=46.2, gops_per_watt=166.2,
                    source="Chen et al., JSSC'17 (AlexNet CONV, 65 nm)"),
    ReferenceDesign("ISSCC16_KAIST", "asic", gops=64.0, gops_per_watt=1420.0,
                    source="Sim et al., ISSCC'16 (1.42 TOPS/W)"),
    ReferenceDesign("ISSCC17_ST", "asic", gops=676.0, gops_per_watt=2900.0,
                    source="Desoli et al., ISSCC'17 (2.9 TOPS/W, 28 nm)"),
    ReferenceDesign("ISSCC17_KULeuven", "asic", gops=408.0,
                    gops_per_watt=2600.0,
                    source="Moons et al., ISSCC'17 (ENVISION, 16-bit mode)"),
)

#: Embedded GPU reference (Fig 15's GPU point).
GPU_JETSON_TX1 = ReferenceDesign(
    "Jetson_TX1", "gpu", gops=300.0, gops_per_watt=30.0,
    source="NVIDIA Jetson TX1 AlexNet inference (FP16 whitepaper figures)",
)

#: Server GPU used in the §5.3 embedded comparison.
GPU_TESLA_C2075 = ReferenceDesign(
    "Tesla_C2075", "gpu", gops=677.0, gops_per_watt=3.34,
    source="Paper §5.3: 2,333 images/s LeNet-5 at 202.5 W",
)


def best_reference_efficiency(references=ASIC_REFERENCES) -> ReferenceDesign:
    """The highest-GOPS/W published point — the paper's "best
    state-of-the-art" the 6x / 102x claims are measured against."""
    return max(references, key=lambda ref: ref.gops_per_watt)
