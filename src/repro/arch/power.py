"""Perf(p, d) / Power(p, d) closures for design optimisation (paper §4.3).

The paper optimises the basic computing block by maximising a metric
``M(Perf(p, d), Power(p, d))`` where performance rises (sub-linearly,
because of memory bandwidth) with p and d and power is "a close-to-linear
function of p*d accounting for both static and dynamic components". This
module evaluates both on a reference workload by running the full mapper,
so the design optimiser (Algorithm 3) searches the same model the rest of
the evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.arch.mapping import InferenceReport, map_model
from repro.arch.platforms import PlatformSpec
from repro.errors import ConfigurationError
from repro.models.descriptors import CompressionPlan, ModelSpec


@dataclass(frozen=True)
class PerfPowerPoint:
    """Performance/power of one (p, d) configuration on the workload."""

    parallelism: int
    depth: int
    performance_gops: float
    power_w: float
    latency_s: float

    @property
    def efficiency_gops_per_watt(self) -> float:
        return self.performance_gops / self.power_w


class PerfPowerModel:
    """Evaluates Perf(p, d) and Power(p, d) for a workload on a platform.

    The metric ``M`` defaults to energy-delay-style
    ``performance / power`` (GOPS/W), the quantity all of §5 reports;
    callers may supply any ``metric(perf_gops, power_w) -> float``.
    """

    def __init__(self, platform: PlatformSpec, model: ModelSpec,
                 plan: CompressionPlan,
                 metric: Callable[[float, float], float] | None = None):
        self.platform = platform
        self.model = model
        self.plan = plan
        self.metric = metric if metric is not None else (
            lambda perf, power: perf / power
        )
        self._cache: dict[tuple[int, int], PerfPowerPoint] = {}

    def _platform_with(self, parallelism: int, depth: int) -> PlatformSpec:
        config = self.platform.config.with_pd(parallelism, depth)
        # Static power grows with instantiated butterfly hardware: a fixed
        # platform floor plus a per-unit share calibrated so the §4.3
        # example's "<10% power for 2x p" holds on the FPGA platform.
        base_units = self.platform.config.butterfly_units
        unit_share = 0.20 * self.platform.static_power_w / max(1, base_units)
        static = (
            0.80 * self.platform.static_power_w
            + unit_share * parallelism * depth
        )
        return replace(self.platform, config=config, static_power_w=static)

    def evaluate(self, parallelism: int, depth: int) -> PerfPowerPoint:
        """Perf/Power at one (p, d) point (memoised)."""
        if parallelism < 1 or depth < 1:
            raise ConfigurationError("p and d must be >= 1")
        key = (parallelism, depth)
        if key not in self._cache:
            platform = self._platform_with(parallelism, depth)
            report: InferenceReport = map_model(
                self.model, self.plan, platform
            )
            self._cache[key] = PerfPowerPoint(
                parallelism=parallelism,
                depth=depth,
                performance_gops=report.equivalent_gops,
                power_w=report.power_w,
                latency_s=report.latency_s,
            )
        return self._cache[key]

    def performance(self, parallelism: int, depth: int) -> float:
        """Perf(p, d) in equivalent GOPS."""
        return self.evaluate(parallelism, depth).performance_gops

    def power(self, parallelism: int, depth: int) -> float:
        """Power(p, d) in watts."""
        return self.evaluate(parallelism, depth).power_w

    def objective(self, parallelism: int, depth: int) -> float:
        """The metric M(Perf, Power) Algorithm 3 maximises."""
        point = self.evaluate(parallelism, depth)
        return self.metric(point.performance_gops, point.power_w)
