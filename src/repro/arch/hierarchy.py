"""Memory hierarchy and prefetching model (paper §4.4, ASIC platform).

The paper's ASIC memory study makes three claims this module makes
measurable:

1. at ~200 MHz a *single-level* memory suffices; at higher clocks (the
   paper's example: 800 MHz) "an effective memory hierarchy with at least
   two levels (L1 cache and main memory) becomes necessary" because a
   large SRAM cannot cycle that fast;
2. with a hierarchy, prefetching keeps the miss rate very low *because
   block-circulant weight access is regular* — "the key technique to
   improve performance will be highly effective due to the regular weight
   access patterns";
3. that regularity is "another advantage over prior compression schemes":
   pruned/sparse models access weights data-dependently, defeating the
   prefetcher.

The model: a main SRAM has a maximum operating frequency that shrinks with
capacity (wordline/bitline delay); a small L1 is fast. Weight streams are
characterised by a *regularity* in [0, 1] (fraction of accesses that are
sequential); the prefetcher converts sequential accesses into hits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


#: Frequency a 64 KiB SRAM bank comfortably reaches in the 45 nm class.
#: Chosen so a "multiple MBs" single-level memory (§4.4) sustains the
#: paper's 200 MHz target (4 MiB -> 225 MHz) but not its 800 MHz example.
_REFERENCE_BANK_BYTES = 64 * 1024
_REFERENCE_BANK_MAX_HZ = 1.8e9


def sram_max_frequency_hz(capacity_bytes: int) -> float:
    """Maximum operating frequency of a single SRAM of a given capacity.

    Access time grows roughly with sqrt(capacity) (wordline + bitline
    flight), so the achievable clock falls as 1/sqrt(capacity) from the
    reference bank.
    """
    if capacity_bytes <= 0:
        raise ConfigurationError("capacity must be positive")
    ratio = capacity_bytes / _REFERENCE_BANK_BYTES
    return _REFERENCE_BANK_MAX_HZ / math.sqrt(max(1.0, ratio))


def required_memory_levels(frequency_hz: float,
                           capacity_bytes: int) -> int:
    """1 if a single memory sustains the clock, else 2 (L1 + main).

    Reproduces the §4.4 statement: multiple MBs at 200 MHz -> single
    level; the same capacity at 800 MHz -> hierarchy required.
    """
    if frequency_hz <= 0:
        raise ConfigurationError("frequency must be positive")
    if frequency_hz <= sram_max_frequency_hz(capacity_bytes):
        return 1
    return 2


@dataclass(frozen=True)
class AccessPattern:
    """A weight-access stream characterised by its spatial regularity.

    ``regularity`` is the fraction of accesses that continue a sequential
    run (next word after the previous one). Block-circulant inference
    streams defining vectors / spectra front to back (regularity ~= 1);
    magnitude-pruned sparse formats chase indices (low regularity).
    """

    name: str
    regularity: float

    def __post_init__(self):
        if not 0.0 <= self.regularity <= 1.0:
            raise ConfigurationError(
                f"regularity must be in [0, 1], got {self.regularity}"
            )


def block_circulant_access_pattern() -> AccessPattern:
    """Weight stream of a block-circulant layer: dense sequential reads of
    the stored spectra, interrupted only at block boundaries."""
    return AccessPattern("block_circulant", regularity=0.98)


def pruned_sparse_access_pattern(sparsity: float = 0.9) -> AccessPattern:
    """Weight stream of an index-chasing sparse format (Fig 3's irregular
    structure): runs are broken whenever an index skips, i.e. almost
    always at high sparsity."""
    if not 0.0 <= sparsity < 1.0:
        raise ConfigurationError(f"sparsity must be in [0, 1), got {sparsity}")
    return AccessPattern("pruned_sparse", regularity=1.0 - sparsity)


@dataclass(frozen=True)
class CacheModel:
    """A prefetching L1 in front of the main weight memory.

    ``line_words`` words move per fill; a demand miss costs
    ``miss_penalty_cycles``. The next-line prefetcher hides fills for
    sequential accesses with probability ``prefetch_accuracy``.
    """

    line_words: int = 8
    miss_penalty_cycles: int = 6
    prefetch_accuracy: float = 0.95

    def miss_rate(self, pattern: AccessPattern) -> float:
        """Demand-miss rate for a stream of the given regularity.

        Sequential accesses miss once per line (1/line_words) and the
        prefetcher hides most of those; irregular accesses miss outright.
        """
        sequential_miss = (1.0 / self.line_words) * (
            1.0 - self.prefetch_accuracy
        )
        irregular_miss = 1.0
        return (
            pattern.regularity * sequential_miss
            + (1.0 - pattern.regularity) * irregular_miss
        )

    def average_access_cycles(self, pattern: AccessPattern) -> float:
        """Mean cycles per weight access, including miss stalls."""
        return 1.0 + self.miss_rate(pattern) * self.miss_penalty_cycles

    def stall_cycles(self, pattern: AccessPattern, accesses: int) -> float:
        """Total stall cycles a stream of ``accesses`` words incurs."""
        if accesses < 0:
            raise ConfigurationError("accesses must be non-negative")
        return self.miss_rate(pattern) * accesses * self.miss_penalty_cycles


@dataclass(frozen=True)
class HierarchyReport:
    """Outcome of the §4.4 hierarchy analysis for one design point."""

    frequency_hz: float
    capacity_bytes: int
    levels: int
    miss_rate: float
    average_access_cycles: float


def analyze_hierarchy(frequency_hz: float, capacity_bytes: int,
                      pattern: AccessPattern | None = None,
                      cache: CacheModel | None = None) -> HierarchyReport:
    """Full §4.4 analysis: level count and cache behaviour at one clock."""
    pattern = pattern if pattern is not None else block_circulant_access_pattern()
    cache = cache if cache is not None else CacheModel()
    levels = required_memory_levels(frequency_hz, capacity_bytes)
    if levels == 1:
        # Single-level memory: every access is a hit by construction.
        return HierarchyReport(
            frequency_hz=frequency_hz,
            capacity_bytes=capacity_bytes,
            levels=1,
            miss_rate=0.0,
            average_access_cycles=1.0,
        )
    return HierarchyReport(
        frequency_hz=frequency_hz,
        capacity_bytes=capacity_bytes,
        levels=2,
        miss_rate=cache.miss_rate(pattern),
        average_access_cycles=cache.average_access_cycles(pattern),
    )
