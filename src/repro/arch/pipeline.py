"""Pipelining schemes (paper §4.3, Fig 12).

Two techniques are modelled:

- **Inter-level pipelining** — one pipeline stage per butterfly level of
  the basic computing block. This is the depth-``d`` machinery already in
  :mod:`repro.arch.computing_block`; it reduces memory round trips by a
  factor ``d`` at the cost of ``d`` level's worth of butterfly hardware.
  The paper uses this scheme for its ~200 MHz prototypes.
- **Intra-level pipelining** — extra register stages *inside* each
  butterfly unit (splitting the complex multiply-add cascade). It raises
  the achievable clock frequency (shorter critical path) and adds a small
  per-butterfly register energy.

:func:`pipeline_scheme` returns the frequency multiplier and per-butterfly
register overhead of each scheme so the mapper and the design optimiser
can compare them, as the paper does when concluding inter-level pipelining
suffices at 200 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PipelineScheme:
    """Frequency/energy implications of a pipelining choice.

    Attributes
    ----------
    name:
        "inter_level" or "intra_level".
    frequency_multiplier:
        Achievable clock relative to the unpipelined butterfly path.
    register_writes_per_butterfly:
        Extra pipeline-register word writes per butterfly (energy cost).
    control_overhead:
        Fractional cycle overhead of the scheme's control logic (pipeline
        bubbles); the paper notes deeper control raises this.
    """

    name: str
    frequency_multiplier: float
    register_writes_per_butterfly: int
    control_overhead: float

    def effective_frequency(self, base_frequency_hz: float) -> float:
        """Clock this scheme reaches from a base (unpipelined) frequency."""
        return base_frequency_hz * self.frequency_multiplier

    def effective_cycles(self, cycles: int) -> float:
        """Cycle count inflated by control overhead (bubbles)."""
        return cycles * (1.0 + self.control_overhead)


#: Stage split of the butterfly cascade under intra-level pipelining:
#: Mult1 | Mult2 | Add | Add (Fig 12b) -> ~2x shorter critical path.
_SCHEMES = {
    # One stage per level; the butterfly's mult->add cascade sets the
    # critical path, so the base frequency applies unchanged.
    "inter_level": PipelineScheme(
        name="inter_level",
        frequency_multiplier=1.0,
        register_writes_per_butterfly=0,
        control_overhead=0.0,
    ),
    # Registers inside the butterfly halve the critical path (~2x clock)
    # at 4 extra register writes per butterfly and a little control
    # overhead from the deeper pipeline.
    "intra_level": PipelineScheme(
        name="intra_level",
        frequency_multiplier=2.0,
        register_writes_per_butterfly=4,
        control_overhead=0.05,
    ),
}


def pipeline_scheme(name: str) -> PipelineScheme:
    """Look up a pipelining scheme by name."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pipeline scheme {name!r}; available: {sorted(_SCHEMES)}"
        ) from None
