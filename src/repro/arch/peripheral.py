"""Peripheral computing block (paper §4.2).

Handles everything of linear complexity: the frequency-domain element-wise
multiplies ("component-wise multiplication"), accumulations, bias adds,
ReLU and pooling comparators — and, in this model, the scalar-MAC fallback
for layers left uncompressed (k = 1), which have no FFT structure to run
on the basic block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.energy import EnergyModel
from repro.arch.spec import ArchitectureConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PeripheralJobReport:
    """Cycles and energy for one layer's peripheral work."""

    cycles: int
    energy_j: float


class PeripheralComputingBlock:
    """Cycle/energy model of the element-wise / comparator units."""

    def __init__(self, config: ArchitectureConfig, energy: EnergyModel):
        self.config = config
        self.energy = energy

    def run(self, cmult: int, cadd: int, scalar_ops: int) -> PeripheralJobReport:
        """Execute a layer's peripheral work.

        Parameters
        ----------
        cmult:
            Complex element-wise multiplies (4 scalar multipliers each; a
            bank of ``multipliers`` scalar units retires
            ``multipliers / 4`` complex products per cycle).
        cadd:
            Complex accumulations (2 scalar adds each, on the ALU bank).
        scalar_ops:
            Plain scalar ops (bias adds, comparators, k=1 MACs), retired
            by multipliers and ALUs together.
        """
        if min(cmult, cadd, scalar_ops) < 0:
            raise ConfigurationError("work counts must be non-negative")
        cfg = self.config
        cmult_cycles = -(-cmult * 4 // cfg.multipliers) if cmult else 0
        cadd_cycles = -(-cadd * 2 // cfg.alus) if cadd else 0
        # Scalar work (dense MACs, comparators) uses both unit banks.
        scalar_units = cfg.multipliers + cfg.alus
        scalar_cycles = -(-scalar_ops // scalar_units) if scalar_ops else 0
        energy = (
            cmult * self.energy.complex_mult_energy_j
            + cadd * 2 * self.energy.add_energy_j
            # Scalar ops average a multiply and an add (MACs) or a compare
            # (costed as an add); use the MAC mean halved as the blended
            # per-op energy.
            + scalar_ops * 0.5 * self.energy.mac_energy_j
        )
        return PeripheralJobReport(
            cycles=cmult_cycles + cadd_cycles + scalar_cycles,
            energy_j=energy,
        )
