"""CirCNN architecture simulator (paper §4, evaluated in §5).

The CirCNN inference engine consists of a *basic computing block* — a
reconfigurable radix-2 FFT pipeline with parallelisation degree ``p`` and
depth ``d`` (Fig 10) — a *peripheral computing block* (element-wise
multiplies, ReLU, pooling), a control subsystem, and a ROM/RAM memory
subsystem (Fig 11). This package models that machine analytically at the
butterfly / memory-word level:

- :mod:`repro.arch.spec` — the (p, d, frequency, bit-width, unit-count)
  configuration knob set.
- :mod:`repro.arch.energy` — per-operation energy model with bit-width and
  voltage scaling (the Fig 15 near-threshold 4-bit study).
- :mod:`repro.arch.memory` — SRAM/ROM/DRAM energy and bandwidth, with the
  paper's 200x DRAM:SRAM per-bit ratio.
- :mod:`repro.arch.computing_block` — cycles and energy of FFT work on the
  (p, d) butterfly pipeline, including small-FFT under-utilisation (the
  effect the paper cites for its CIFAR-10 throughput loss).
- :mod:`repro.arch.peripheral` — the linear-complexity units.
- :mod:`repro.arch.pipeline` — inter-level vs intra-level pipelining
  (Fig 12) effects on frequency and memory traffic.
- :mod:`repro.arch.mapping` — maps a model + compression plan onto a
  platform: per-layer cycles/energy, latency, fps, GOPS, GOPS/W.
- :mod:`repro.arch.power` — Perf(p, d) / Power(p, d) closures (§4.3).
- :mod:`repro.arch.design_opt` — Algorithm 3's ternary-search optimiser.
- :mod:`repro.arch.platforms` — calibrated FPGA / ASIC / near-threshold /
  embedded-CPU platform constants and published reference design points.
"""

from repro.arch.spec import ArchitectureConfig
from repro.arch.energy import EnergyModel
from repro.arch.memory import MemorySubsystem
from repro.arch.computing_block import BasicComputingBlock, FFTJobReport
from repro.arch.peripheral import PeripheralComputingBlock
from repro.arch.pipeline import PipelineScheme, pipeline_scheme
from repro.arch.mapping import InferenceReport, LayerReport, map_model
from repro.arch.controller import (
    ControlProgram,
    Engine,
    ExecutionTrace,
    compile_program,
)
from repro.arch.scaling import ScaledDeployment, engines_needed_for_throughput
from repro.arch.hierarchy import (
    AccessPattern,
    CacheModel,
    HierarchyReport,
    analyze_hierarchy,
    block_circulant_access_pattern,
    pruned_sparse_access_pattern,
    required_memory_levels,
    sram_max_frequency_hz,
)
from repro.arch.power import PerfPowerModel
from repro.arch.design_opt import DesignPoint, optimize_design, ternary_search_int
from repro.arch.platforms import (
    PlatformSpec,
    ReferenceDesign,
    arm_cortex_a9,
    asic_45nm,
    asic_45nm_near_threshold,
    fpga_cyclone_v,
)

__all__ = [
    "ArchitectureConfig",
    "EnergyModel",
    "MemorySubsystem",
    "BasicComputingBlock",
    "FFTJobReport",
    "PeripheralComputingBlock",
    "PipelineScheme",
    "pipeline_scheme",
    "InferenceReport",
    "LayerReport",
    "map_model",
    "PerfPowerModel",
    "DesignPoint",
    "optimize_design",
    "ternary_search_int",
    "PlatformSpec",
    "ReferenceDesign",
    "fpga_cyclone_v",
    "asic_45nm",
    "asic_45nm_near_threshold",
    "arm_cortex_a9",
    "ControlProgram",
    "Engine",
    "ExecutionTrace",
    "compile_program",
    "AccessPattern",
    "CacheModel",
    "HierarchyReport",
    "analyze_hierarchy",
    "block_circulant_access_pattern",
    "pruned_sparse_access_pattern",
    "required_memory_levels",
    "sram_max_frequency_hz",
    "ScaledDeployment",
    "engines_needed_for_throughput",
]
