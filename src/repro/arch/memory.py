"""Memory subsystem: on-chip SRAM/ROM, off-chip DRAM (paper §4.2, §4.4).

The paper's central memory argument (§1): off-chip DRAM costs ~200x the
per-bit energy of on-chip SRAM, so a compressed model that *fits on chip*
changes the energy picture qualitatively. The model here captures that:

- weights/activations that fit in ``on_chip_capacity_bytes`` pay SRAM
  energies; models that do not fit pay the DRAM energy (and a bandwidth
  penalty) for the overflow fraction of weight traffic;
- twiddle factors come from ROM (costed like SRAM reads);
- per-access energy includes a mild capacity scaling (CACTI-like sqrt
  growth relative to a reference bank size).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


#: The paper's §1 figure: DRAM per-bit access energy is ~200x on-chip SRAM.
DRAM_TO_SRAM_ENERGY_RATIO = 200.0


@dataclass(frozen=True)
class MemorySubsystem:
    """Capacity, bandwidth and per-bit energies of the memory system.

    Attributes
    ----------
    on_chip_capacity_bytes:
        Block-RAM / SRAM budget for weights + activation buffers.
    sram_bit_energy_j:
        Per-bit read/write energy of the on-chip memory at its reference
        bank size.
    reference_bank_bytes:
        Bank size at which ``sram_bit_energy_j`` is quoted; larger
        capacities scale energy by sqrt(capacity / reference).
    dram_bit_energy_j:
        Per-bit off-chip access energy (defaults to 200x SRAM).
    dram_bandwidth_penalty:
        Factor by which off-chip traffic is slower than on-chip, applied
        to the overflow fraction of weight traffic.
    """

    on_chip_capacity_bytes: int
    sram_bit_energy_j: float
    reference_bank_bytes: int = 64 * 1024
    dram_bit_energy_j: float | None = None
    dram_bandwidth_penalty: float = 8.0

    def __post_init__(self):
        if self.on_chip_capacity_bytes <= 0:
            raise ConfigurationError("on-chip capacity must be positive")
        if self.sram_bit_energy_j < 0:
            raise ConfigurationError("SRAM energy must be non-negative")
        if self.reference_bank_bytes <= 0:
            raise ConfigurationError("reference bank size must be positive")

    @property
    def effective_dram_bit_energy_j(self) -> float:
        """DRAM per-bit energy (explicit, or the paper's 200x SRAM)."""
        if self.dram_bit_energy_j is not None:
            return self.dram_bit_energy_j
        return self.sram_bit_energy_j * DRAM_TO_SRAM_ENERGY_RATIO

    def scaled_sram_bit_energy_j(self) -> float:
        """SRAM per-bit energy at the configured capacity (CACTI-like)."""
        ratio = self.on_chip_capacity_bytes / self.reference_bank_bytes
        return self.sram_bit_energy_j * math.sqrt(max(1.0, ratio))

    def fits_on_chip(self, model_bytes: float) -> bool:
        """Whether a weight footprint fits in on-chip memory.

        This is the §4.4 observation: block-circulant AlexNet (~4 MB with
        FC compression, <2 MB with CONV compression too) fits on-chip,
        eliminating DRAM from the steady state.
        """
        return model_bytes <= self.on_chip_capacity_bytes

    def weight_access_energy_j(self, words: float, bits: int,
                               model_bytes: float) -> float:
        """Energy to stream ``words`` weight words of ``bits`` bits.

        If the model fits on chip, all traffic is SRAM. Otherwise the
        overflow fraction of the weight traffic pays DRAM energy — the
        regime the paper's uncompressed baselines live in.
        """
        total_bits = words * bits
        sram = self.scaled_sram_bit_energy_j()
        if self.fits_on_chip(model_bytes):
            return total_bits * sram
        overflow = 1.0 - self.on_chip_capacity_bytes / model_bytes
        dram_bits = total_bits * overflow
        sram_bits = total_bits - dram_bits
        return sram_bits * sram + dram_bits * self.effective_dram_bit_energy_j

    def buffer_access_energy_j(self, words: float, bits: int) -> float:
        """Energy for on-chip activation / intermediate-result traffic.

        Scratch traffic hits small local banks next to the computing block
        (the §4.4 banked organisation), so it pays the reference-bank
        energy rather than the capacity-scaled weight-array energy.
        """
        return words * bits * self.sram_bit_energy_j

    def rom_access_energy_j(self, words: float, bits: int) -> float:
        """Energy for twiddle-factor ROM reads (costed as SRAM reads)."""
        return words * bits * self.sram_bit_energy_j
