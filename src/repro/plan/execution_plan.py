"""Per-layer execution plans — one config spine from compile to serving.

CirCNN's central result is a design-space trade: block size × quantisation
× FFT datapath decide latency, energy, and accuracy together (paper
Sections 5–6, Figs 13–15), and the knobs are most valuable swept *per
layer*. In this repo those knobs used to live in three places — the
``backend=`` constructor argument, the bits of
:func:`repro.quant.quantized_view`, the ``block_size`` fixed at
construction — with no single record of what a given network actually
runs. :class:`ExecutionPlan` is that record: one
:class:`LayerPlan` per parameterised layer, ordered, JSON-serialisable,
and threaded through the whole stack:

- ``Sequential.compile_inference(plan=...)`` applies it before freezing;
- :func:`planned_view` builds a configured deep copy of a trained network
  (the generalisation of :func:`repro.quant.quantized_view`);
- :func:`repro.store.save_artifact` persists it in the manifest and
  :func:`~repro.store.load_artifact` reconstructs it;
- ``ModelRegistry.apply_plan(endpoint, plan)`` swaps a re-planned view in
  atomically, reusing already-computed spectra where the plan leaves a
  layer's weights and backend unchanged;
- :mod:`repro.plan.tuner` searches the plan space and emits the winner.

Plans are **positional**: entry ``i`` configures the ``i``-th
parameterised layer in ``named_layers`` order (``planned_layers``). This
survives the re-pathing that activation-quantiser interleaving causes and
makes drift loud — applying a plan to a network with a different layer
count raises :class:`~repro.errors.PlanError` instead of silently
half-configuring.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass, replace

from repro.errors import PlanError
from repro.fftcore.backend import get_backend

PLAN_VERSION = 1


@dataclass(frozen=True)
class LayerPlan:
    """Execution knobs for one parameterised layer.

    ``None`` everywhere means "as built" — applying an all-``None`` plan
    is a no-op. ``backend`` is a registered FFT-backend *name* (only
    valid on spectral layers, i.e. those with a ``spectral_cache`` slot);
    ``bits`` is the per-tensor fixed-point word length the layer's
    parameters are rounded to; ``block_size`` is the contraction hint —
    it must match the layer's built block size when applied to an
    existing network, and tells fresh-build sweeps
    (:func:`repro.plan.tuner.sweep_table`) what to construct.
    """

    backend: str | None = None
    bits: int | None = None
    block_size: int | None = None

    def merged_over(self, other: "LayerPlan") -> "LayerPlan":
        """This plan with ``None`` fields filled from ``other``."""
        return LayerPlan(
            backend=self.backend if self.backend is not None else other.backend,
            bits=self.bits if self.bits is not None else other.bits,
            block_size=(
                self.block_size if self.block_size is not None
                else other.block_size
            ),
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """An ordered per-layer execution configuration for one network.

    ``layers[i]`` configures the ``i``-th parameterised layer (in
    ``Sequential.planned_layers`` order); ``activation_bits`` is the
    datapath word length of the inter-layer activation stream (``None``
    keeps it float).
    """

    layers: tuple[LayerPlan, ...]
    activation_bits: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "layers", tuple(self.layers))

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerPlan:
        return self.layers[index]

    # -- construction ---------------------------------------------------------
    @classmethod
    def uniform(cls, num_layers: int, *, backend: str | None = None,
                bits: int | None = None,
                activation_bits: int | None = None) -> "ExecutionPlan":
        """The same knobs on every layer — the pre-plan configuration style.

        ``backend`` is recorded on every entry; :func:`apply_plan_inplace`
        skips it on non-spectral layers (a uniform plan must be
        expressible on mixed FC/CONV/Dense stacks).
        """
        return cls(
            layers=tuple(
                LayerPlan(backend=backend, bits=bits)
                for _ in range(num_layers)
            ),
            activation_bits=activation_bits,
        )

    @classmethod
    def from_network(cls, network) -> "ExecutionPlan":
        """Read the plan a network currently embodies.

        Backends come from each spectral layer's configured backend
        (resolved to its registered name), bits from the per-layer
        ``weight_quant_bits`` marker (falling back to the network-level
        one that :func:`repro.quant.quantize_network_weights` sets), and
        ``activation_bits`` from the first
        :class:`~repro.quant.ActivationQuantizer` in the pipeline. If the
        network has a plan stamped on it (by :func:`apply_plan_inplace`
        or :func:`repro.store.load_artifact`), that stamp is returned
        verbatim instead.
        """
        stamped = getattr(network, "_execution_plan", None)
        if stamped is not None:
            return stamped
        network_bits = getattr(network, "weight_quant_bits", None)
        entries = []
        for _path, layer in network.planned_layers():
            spectral = hasattr(layer, "spectral_cache")
            entries.append(LayerPlan(
                backend=(
                    get_backend(layer.backend).name if spectral else None
                ),
                bits=getattr(layer, "weight_quant_bits", network_bits),
                block_size=getattr(layer, "block_size", None),
            ))
        return cls(
            layers=tuple(entries),
            activation_bits=_first_activation_bits(network),
        )

    def with_layer(self, index: int, **changes) -> "ExecutionPlan":
        """A copy with entry ``index`` updated (dataclass ``replace``)."""
        layers = list(self.layers)
        layers[index] = replace(layers[index], **changes)
        return ExecutionPlan(tuple(layers), self.activation_bits)

    # -- serialisation --------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-ready dict (the manifest / wire representation)."""
        return {
            "version": PLAN_VERSION,
            "activation_bits": self.activation_bits,
            "layers": [asdict(entry) for entry in self.layers],
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExecutionPlan":
        """Inverse of :meth:`to_json`; validates shape and version."""
        if not isinstance(data, dict) or "layers" not in data:
            raise PlanError(
                f"not an execution-plan document: {type(data).__name__} "
                "without a 'layers' key"
            )
        version = data.get("version", PLAN_VERSION)
        if version != PLAN_VERSION:
            raise PlanError(
                f"unsupported execution-plan version {version!r} "
                f"(this build reads version {PLAN_VERSION})"
            )
        known = {"backend", "bits", "block_size"}
        entries = []
        for i, raw in enumerate(data["layers"]):
            unknown = set(raw) - known
            if unknown:
                raise PlanError(
                    f"plan layer {i} has unknown fields {sorted(unknown)}"
                )
            entries.append(LayerPlan(**raw))
        return cls(
            layers=tuple(entries),
            activation_bits=data.get("activation_bits"),
        )

    def dumps(self) -> str:
        """Compact JSON string form (stable key order)."""
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "ExecutionPlan":
        return cls.from_json(json.loads(text))

    def describe(self) -> str:
        """Human-readable per-layer table."""
        lines = [f"ExecutionPlan ({len(self.layers)} layers, "
                 f"activation_bits={self.activation_bits}):"]
        for i, entry in enumerate(self.layers):
            lines.append(
                f"  [{i}] backend={entry.backend or '-'} "
                f"bits={entry.bits if entry.bits is not None else '-'} "
                f"k={entry.block_size if entry.block_size is not None else '-'}"
            )
        return "\n".join(lines)


def _first_activation_bits(network) -> int | None:
    from repro.quant.network import ActivationQuantizer

    for layer in getattr(network, "layers", ()):
        if isinstance(layer, ActivationQuantizer):
            return layer.total_bits
    return None


def _iter_activation_quantizers(network):
    from repro.quant.network import ActivationQuantizer

    for _path, layer in network.named_layers():
        if isinstance(layer, ActivationQuantizer):
            yield layer


def apply_plan_inplace(network, plan: ExecutionPlan):
    """Configure ``network`` according to ``plan``, destructively.

    Sets each planned layer's FFT backend, rounds its parameters to the
    planned word length (a pure ``Parameter.value`` assignment, so
    version counters bump and any cached spectra invalidate lazily), and
    retargets existing activation quantisers. Like
    :func:`repro.quant.quantize_network_weights` this *overwrites*
    weights — apply to a deep copy (:func:`planned_view`) when the
    original must stay float. The applied plan is stamped on the network
    (``network.execution_plan``). Returns the network.

    Raises :class:`~repro.errors.PlanError` when the plan does not fit:
    wrong entry count, an unknown backend name, a ``block_size`` that
    contradicts the built layer, or ``activation_bits`` on a pipeline
    with no :class:`~repro.quant.ActivationQuantizer` to retarget
    (in-place application cannot insert layers; use :func:`planned_view`).
    """
    from repro.quant.schemes import quantize_tensor

    planned = list(network.planned_layers())
    if len(planned) != len(plan):
        raise PlanError(
            f"plan has {len(plan)} layer entries but the network has "
            f"{len(planned)} parameterised layers; plans are positional "
            "and must match exactly"
        )
    for (path, layer), entry in zip(planned, plan.layers):
        spectral = hasattr(layer, "spectral_cache")
        if entry.block_size is not None:
            built = getattr(layer, "block_size", None)
            if built != entry.block_size:
                raise PlanError(
                    f"plan wants block_size={entry.block_size} at {path} "
                    f"but the layer was built with k={built}; block size "
                    "is fixed at construction (rebuild via "
                    "repro.plan.tuner.sweep_table for fresh-build sweeps)"
                )
        if entry.backend is not None:
            if not spectral:
                raise PlanError(
                    f"plan sets backend={entry.backend!r} at {path} but "
                    f"{type(layer).__name__} is not a spectral layer"
                )
            get_backend(entry.backend)  # typo check with known-backend list
            layer.backend = entry.backend
        if entry.bits is not None:
            for param in layer.parameters():
                param.value = quantize_tensor(param.value, entry.bits)
            layer.weight_quant_bits = entry.bits
    if plan.activation_bits is not None:
        quantizers = list(_iter_activation_quantizers(network))
        if not quantizers:
            raise PlanError(
                f"plan sets activation_bits={plan.activation_bits} but the "
                "network has no ActivationQuantizer layers to retarget; "
                "in-place application cannot insert layers — build a "
                "planned_view() instead"
            )
        for quantizer in quantizers:
            quantizer.total_bits = plan.activation_bits
    layer_bits = {entry.bits for entry in plan.layers}
    if len(layer_bits) == 1 and None not in layer_bits:
        # Uniform quantisation: keep the network-level marker
        # quantization_format() and the store manifest report.
        network.weight_quant_bits = layer_bits.pop()
    network._execution_plan = plan
    return network


def planned_view(network, plan: ExecutionPlan, *, compile: bool = True,
                 cache=None):
    """A deep copy of ``network`` configured according to ``plan``.

    The generalisation of :func:`repro.quant.quantized_view`: the
    original network (and any spectral cache it was compiled with) is
    untouched. When ``plan.activation_bits`` is set and the network has
    no activation quantisers yet, they are interleaved around every layer
    exactly as ``quantized_view`` does. By default the view is compiled
    for serving (``compile=False`` returns it uncompiled; pass ``cache=``
    to share a :class:`~repro.circulant.spectral_cache.SpectralWeightCache`
    — the registry's zero-FFT ``apply_plan`` path seeds one before
    compiling). Returns the configured view.
    """
    from repro.quant.network import (
        ActivationQuantizer,
        _detach_spectral_state,
    )

    clone = copy.deepcopy(network)
    _detach_spectral_state(clone)
    if plan.activation_bits is not None and _first_activation_bits(clone) is None:
        pipeline = type(clone)()
        pipeline.add(ActivationQuantizer(plan.activation_bits))
        for layer in clone.layers:
            pipeline.add(layer)
            pipeline.add(ActivationQuantizer(plan.activation_bits))
        clone = pipeline
    apply_plan_inplace(clone, plan)
    if compile:
        clone.compile_inference(cache)
    return clone
