"""Measured autotuner over the per-layer execution-plan space.

The search the paper's design-space figures imply (block size ×
quantisation × FFT datapath, Figs 13–15), run as a production
capacity-planning step:

1. **Calibrate** — time each candidate backend's batched real transforms
   at exactly the FFT sizes the network uses, plus a frequency-domain
   multiply probe (:func:`calibrate_backends`).
2. **Prior** — convert each layer's shape into exact op counts
   (:func:`repro.analysis.complexity.block_circulant_fc_work` /
   ``block_circulant_conv_work``) and combine them with the calibration
   to predict per-layer latency, and with the
   :class:`repro.arch.EnergyModel`'s bit-width scaling to predict energy.
   The prior *ranks* backends per layer and prunes the combinatorial
   space to a handful of candidate plans.
3. **Measure** — build a :func:`~repro.plan.planned_view` of every
   surviving candidate and time real compiled forwards on a sample
   batch. Priors propose; measurements decide.
4. **Assert bit-compatibility** — every candidate's output is compared
   against a same-word-length reference on the default backend; a
   candidate whose backend mix drifts past ``tolerance`` is rejected
   (recorded in the report), and :class:`~repro.errors.PlanError` is
   raised if nothing survives.

The bits axis is deliberately *not* latency-ranked by the prior: this
software stack simulates fixed point with float64 fake quantisation, so
word length cannot speed software up (the hardware's bits² multiplier
scaling lives in the energy prior instead, which is what
``objective="energy"`` trades against measured latency).

:func:`sweep_table` is the fresh-build counterpart — it rebuilds a
network at each block size and emits the machine-readable ``(k, backend,
bits) → measured seconds`` table that :func:`validate_prior` checks the
cost model's ranking against (see ``benchmarks/bench_ablation_blocksize.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.complexity import (
    LayerWork,
    block_circulant_conv_work,
    block_circulant_fc_work,
)
from repro.arch.energy import EnergyModel
from repro.errors import PlanError
from repro.fftcore.backend import available_backends, get_backend
from repro.models.descriptors import ConvSpec, DenseSpec
from repro.plan.execution_plan import ExecutionPlan, LayerPlan, planned_view
from repro.utils.rng import make_rng

#: Calibration energies when the caller passes no platform model: the
#: 45 nm ASIC operating point of :func:`repro.arch.platforms.asic_45nm`.
_DEFAULT_ENERGY = EnergyModel(
    mult_energy_j=0.35e-12,
    add_energy_j=0.05e-12,
    register_energy_j=0.01e-12,
)


# -- calibration --------------------------------------------------------------
@dataclass(frozen=True)
class BackendCalibration:
    """Measured per-operation costs the latency prior is built from.

    ``fft_seconds[(backend, k)]`` is the amortised wall time of one
    size-``k`` real transform (forward or inverse) on that backend, from
    a batched probe; ``cmult_seconds`` is one frequency-domain complex
    multiply.
    """

    fft_seconds: dict[tuple[str, int], float]
    cmult_seconds: float

    def fft_time(self, backend: str, k: int) -> float:
        return self.fft_seconds[(backend, k)]


def calibrate_backends(backends, fft_sizes, *, batch: int = 64,
                       repeats: int = 3, seed=0) -> BackendCalibration:
    """Time batched transforms per (backend, size) plus a multiply probe.

    Probes hit the same code path the compiled forward uses (batched
    ``rfft``/``irfft`` over the last axis), warm each backend's plan
    cache first, and keep the min over ``repeats`` — the standard
    defence against scheduler noise.
    """
    rng = make_rng(seed)
    sizes = sorted(set(int(k) for k in fft_sizes if k > 1))
    fft_seconds: dict[tuple[str, int], float] = {}
    for name in backends:
        be = get_backend(name)
        for k in sizes:
            rows = rng.standard_normal((batch, k))
            be.irfft(be.rfft(rows), k)  # warm plan/twiddle caches
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                be.irfft(be.rfft(rows), k)
                best = min(best, time.perf_counter() - start)
            fft_seconds[(be.name, k)] = best / (2 * batch)
    size = 1 << 14
    a = rng.standard_normal(size) + 1j * rng.standard_normal(size)
    b = rng.standard_normal(size) + 1j * rng.standard_normal(size)
    a * b  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a * b
        best = min(best, time.perf_counter() - start)
    return BackendCalibration(
        fft_seconds=fft_seconds, cmult_seconds=best / size
    )


# -- the arch-model prior -----------------------------------------------------
def _layer_work(path: str, layer, input_shape) -> LayerWork | None:
    """Map a built layer onto the complexity model's work counts.

    Spectral FC/CONV layers get their block-circulant counts; a plain
    dense layer degenerates to ``k = 1`` (scalar MACs, no FFT axis);
    anything else contributes nothing to the prior (it is identical
    across candidate plans).
    """
    spectral = hasattr(layer, "spectral_cache")
    if hasattr(layer, "in_features") and hasattr(layer, "out_features"):
        k = layer.block_size if spectral else 1
        return block_circulant_fc_work(
            DenseSpec(path, layer.in_features, layer.out_features), k
        )
    if spectral and hasattr(layer, "in_channels") and hasattr(layer, "field"):
        if input_shape is None or len(input_shape) != 4:
            return None
        return block_circulant_conv_work(
            ConvSpec(
                path, layer.in_channels, layer.out_channels, layer.field,
                in_hw=(int(input_shape[2]), int(input_shape[3])),
                stride=layer.stride, padding=layer.padding,
            ),
            layer.block_size,
        )
    return None


def _trace_planned_shapes(network, sample_input) -> dict[str, tuple]:
    """Per-planned-layer input shapes from one layer-by-layer forward."""
    shapes: dict[str, tuple] = {}

    def run(seq, x, prefix):
        for index, layer in enumerate(seq.layers):
            path = f"{prefix}.{index}"
            if hasattr(layer, "layers") and hasattr(layer, "named_layers"):
                x = run(layer, x, f"{path}.layers")
            else:
                shapes[path] = tuple(x.shape)
                x = layer.inference_forward(x)
        return x

    run(network, np.asarray(sample_input, dtype=np.float64), "layers")
    return shapes


def prior_latency_s(work: LayerWork | None, backend: str | None,
                    calibration: BackendCalibration) -> float:
    """Predicted seconds for one layer on one backend (prior, not truth)."""
    if work is None or backend is None or work.fft_size <= 1:
        return 0.0
    return (
        work.num_fft * calibration.fft_time(backend, work.fft_size)
        + work.cmult * calibration.cmult_seconds
    )


def prior_energy_j(work: LayerWork | None, bits: int | None,
                   energy: EnergyModel) -> float:
    """Predicted joules for one layer at one word length.

    The hardware lever the latency prior cannot see: multiplier energy
    scales as bits², adder energy as bits
    (:meth:`repro.arch.EnergyModel.scaled`). ``bits=None`` prices the
    float path at 32-bit words.
    """
    if work is None:
        return 0.0
    em = energy.scaled(bits=bits if bits is not None else 32)
    return (
        work.butterflies * em.butterfly_energy_j
        + work.cmult * em.complex_mult_energy_j
        + work.cadd * 2 * em.add_energy_j
        + work.scalar_ops * em.mac_energy_j
    )


# -- candidate measurement ----------------------------------------------------
def measure_forward(network, sample_input, *,
                    repeats: int = 3) -> tuple[float, np.ndarray]:
    """``(seconds, output)`` of the compiled forward, min over repeats."""
    x = np.asarray(sample_input, dtype=np.float64)
    output = network.inference_forward(x)  # warm spectra / plan caches
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        output = network.inference_forward(x)
        best = min(best, time.perf_counter() - start)
    return best, output


@dataclass
class CandidateResult:
    """One measured candidate plan and its verdict."""

    plan: ExecutionPlan
    label: str
    seconds: float
    max_rel_err: float
    admitted: bool
    prior_seconds: float
    prior_energy_j: float

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "plan": self.plan.to_json(),
            "seconds": self.seconds,
            "max_rel_err": self.max_rel_err,
            "admitted": self.admitted,
            "prior_seconds": self.prior_seconds,
            "prior_energy_j": self.prior_energy_j,
        }


@dataclass
class TuningReport:
    """Everything :func:`tune` decided and why.

    ``best`` is the winning plan; ``baseline_seconds`` is the measured
    as-built network (the plan-free reference point the bench gate's
    speedup is quoted against); ``candidates`` records every measured
    plan including rejected ones.
    """

    best: ExecutionPlan
    best_seconds: float
    baseline_seconds: float
    objective: str
    tolerance: float
    backends: tuple[str, ...]
    candidates: list[CandidateResult] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Measured as-built-over-best ratio (> 1 means the plan won)."""
        return self.baseline_seconds / self.best_seconds

    def to_json(self) -> dict:
        return {
            "best": self.best.to_json(),
            "best_seconds": self.best_seconds,
            "baseline_seconds": self.baseline_seconds,
            "speedup": self.speedup,
            "objective": self.objective,
            "tolerance": self.tolerance,
            "backends": list(self.backends),
            "candidates": [c.to_json() for c in self.candidates],
        }


def _plan_prior(plan: ExecutionPlan, works, calibration,
                energy: EnergyModel) -> tuple[float, float]:
    latency = 0.0
    joules = 0.0
    for entry, (backend_default, work) in zip(plan.layers, works):
        backend = entry.backend if entry.backend is not None else backend_default
        latency += prior_latency_s(work, backend, calibration)
        joules += prior_energy_j(work, entry.bits, energy)
    return latency, joules


def tune(network, sample_input, *,
         backends=None,
         bits=(None,),
         activation_bits: int | None = None,
         objective: str = "latency",
         tolerance: float = 1e-9,
         latency_slack: float = 0.10,
         keep_per_layer: int = 2,
         max_plans: int = 12,
         repeats: int = 3,
         energy_model: EnergyModel | None = None) -> TuningReport:
    """Search the plan space for ``network`` and return a measured winner.

    ``network`` is a trained (not necessarily compiled) ``Sequential``;
    it is never mutated — every candidate runs in its own
    :func:`~repro.plan.planned_view`. ``backends`` defaults to every
    registered backend; ``bits`` is the word-length axis (``None`` =
    float); ``objective`` is ``"latency"`` (argmin measured seconds) or
    ``"energy"`` (among candidates within ``latency_slack`` of the
    fastest, argmin the arch model's energy prior).

    Bit compatibility is asserted explicitly: candidates are grouped by
    word-length signature, each group's reference output is the uniform
    default-backend plan at those word lengths, and any candidate whose
    max relative output error exceeds ``tolerance`` is rejected (raises
    :class:`~repro.errors.PlanError` if no candidate survives).
    """
    if objective not in ("latency", "energy"):
        raise PlanError(
            f"objective must be 'latency' or 'energy', got {objective!r}"
        )
    backends = tuple(backends) if backends is not None else available_backends()
    backends = tuple(get_backend(b).name for b in backends)
    bits = tuple(bits)
    energy = energy_model if energy_model is not None else _DEFAULT_ENERGY
    default_backend = get_backend(None).name

    planned = list(network.planned_layers())
    if not planned:
        raise PlanError("network has no parameterised layers to plan")
    shapes = _trace_planned_shapes(network, sample_input)
    # (default backend name, LayerWork) per planned layer, positional.
    works = []
    spectral_mask = []
    for path, layer in planned:
        spectral = hasattr(layer, "spectral_cache")
        spectral_mask.append(spectral)
        works.append((
            get_backend(layer.backend).name if spectral else None,
            _layer_work(path, layer, shapes.get(path)),
        ))

    # Calibrate the candidate backends plus whatever the network is
    # already built on — the as-built plan's prior needs those too.
    calibration = calibrate_backends(
        sorted(set(backends) | {
            default for default, _work in works if default is not None
        }),
        (w.fft_size for _, w in works if w is not None),
    )

    # Per-layer backend ranking by the latency prior, pruned.
    ranked: list[list[str | None]] = []
    for spectral, (_default, work) in zip(spectral_mask, works):
        if not spectral:
            ranked.append([None])
            continue
        order = sorted(
            backends, key=lambda b: prior_latency_s(work, b, calibration)
        )
        ranked.append(list(order[:max(1, keep_per_layer)]))

    as_built = ExecutionPlan.from_network(network)
    n = len(planned)

    def spectral_uniform(backend: str | None, layer_bits=None) -> ExecutionPlan:
        return ExecutionPlan(
            layers=tuple(
                LayerPlan(
                    backend=backend if spectral else None, bits=layer_bits
                )
                for spectral in spectral_mask
            ),
            activation_bits=activation_bits if layer_bits is not None else None,
        )

    greedy = ExecutionPlan(
        layers=tuple(
            LayerPlan(backend=choices[0]) for choices in ranked
        ),
        activation_bits=None,
    )

    candidates: list[tuple[str, ExecutionPlan]] = [("as-built", as_built)]
    candidates.append(("uniform-default", spectral_uniform(default_backend)))
    candidates.append(("greedy", greedy))
    for backend in backends:
        candidates.append((f"uniform-{backend}", spectral_uniform(backend)))
    # Runner-up flips: single-layer deviations from the greedy plan catch
    # layers where the prior mis-ranked a close call.
    for index, choices in enumerate(ranked):
        for alt in choices[1:]:
            candidates.append((
                f"greedy-flip-{index}-{alt}",
                greedy.with_layer(index, backend=alt),
            ))
    # Word-length variants of the greedy backend assignment (the energy
    # axis; measured latency still gets the final say).
    for b in bits:
        if b is None:
            continue
        candidates.append((
            f"greedy-{b}bit",
            ExecutionPlan(
                layers=tuple(
                    LayerPlan(backend=choices[0], bits=b) for choices in ranked
                ),
                activation_bits=activation_bits,
            ),
        ))

    seen: set[str] = set()
    unique: list[tuple[str, ExecutionPlan]] = []
    for label, plan in candidates:
        key = plan.dumps()
        if key not in seen:
            seen.add(key)
            unique.append((label, plan))
    # Cap the measured set, but never drop the three structural anchors.
    unique = unique[:max(max_plans, 3)]

    # Reference outputs per word-length signature, on the default backend.
    references: dict[tuple, np.ndarray] = {}

    def signature(plan: ExecutionPlan) -> tuple:
        return (
            tuple(entry.bits for entry in plan.layers), plan.activation_bits
        )

    results: list[CandidateResult] = []
    baseline_seconds = None
    for label, plan in unique:
        view = planned_view(network, plan)
        seconds, output = measure_forward(view, sample_input, repeats=repeats)
        sig = signature(plan)
        if sig not in references:
            ref_plan = ExecutionPlan(
                layers=tuple(
                    LayerPlan(
                        backend=default_backend if spectral else None,
                        bits=entry.bits,
                    )
                    for spectral, entry in zip(spectral_mask, plan.layers)
                ),
                activation_bits=plan.activation_bits,
            )
            references[sig] = planned_view(
                network, ref_plan
            ).inference_forward(np.asarray(sample_input, dtype=np.float64))
        ref = references[sig]
        scale = max(1.0, float(np.max(np.abs(ref))))
        err = float(np.max(np.abs(output - ref))) / scale
        prior_s, prior_j = _plan_prior(plan, works, calibration, energy)
        results.append(CandidateResult(
            plan=plan, label=label, seconds=seconds, max_rel_err=err,
            admitted=err <= tolerance, prior_seconds=prior_s,
            prior_energy_j=prior_j,
        ))
        if label == "as-built":
            baseline_seconds = seconds

    admitted = [r for r in results if r.admitted]
    if not admitted:
        raise PlanError(
            f"no candidate plan met the bit-compatibility tolerance "
            f"{tolerance:g}; worst-case relative error "
            f"{max(r.max_rel_err for r in results):g}"
        )
    fastest = min(admitted, key=lambda r: r.seconds)
    if objective == "latency":
        best = fastest
    else:
        within = [
            r for r in admitted
            if r.seconds <= fastest.seconds * (1.0 + latency_slack)
        ]
        best = min(within, key=lambda r: r.prior_energy_j)
    return TuningReport(
        best=best.plan,
        best_seconds=best.seconds,
        baseline_seconds=(
            baseline_seconds if baseline_seconds is not None
            else fastest.seconds
        ),
        objective=objective,
        tolerance=tolerance,
        backends=backends,
        candidates=results,
    )


# -- fresh-build sweeps -------------------------------------------------------
def sweep_table(build, sample_input, *, block_sizes, backends=None,
                bits=(None,), repeats: int = 3,
                energy_model: EnergyModel | None = None) -> list[dict]:
    """Measured ``(k, backend, bits) → seconds`` table over fresh builds.

    ``build(k)`` must return a *fresh* trained-or-initialised network
    built at block size ``k`` (block size is fixed at construction, so
    the sweep rebuilds instead of re-planning). Each record carries the
    measured seconds alongside the arch-model priors, which is what
    :func:`validate_prior` checks the cost model's ranking against —
    the machine-readable ablation behind
    ``benchmarks/bench_ablation_blocksize.py``.
    """
    backends = tuple(backends) if backends is not None else available_backends()
    backends = tuple(get_backend(b).name for b in backends)
    energy = energy_model if energy_model is not None else _DEFAULT_ENERGY
    records: list[dict] = []
    for k in block_sizes:
        network = build(k)
        planned = list(network.planned_layers())
        shapes = _trace_planned_shapes(network, sample_input)
        works = [
            (
                get_backend(layer.backend).name
                if hasattr(layer, "spectral_cache") else None,
                _layer_work(path, layer, shapes.get(path)),
            )
            for path, layer in planned
        ]
        calibration = calibrate_backends(
            backends, (w.fft_size for _, w in works if w is not None),
        )
        for backend in backends:
            for b in bits:
                plan = ExecutionPlan(
                    layers=tuple(
                        LayerPlan(
                            backend=(
                                backend if hasattr(layer, "spectral_cache")
                                else None
                            ),
                            bits=b,
                            block_size=getattr(layer, "block_size", None),
                        )
                        for _path, layer in planned
                    ),
                )
                view = planned_view(network, plan)
                seconds, _ = measure_forward(
                    view, sample_input, repeats=repeats
                )
                prior_s, prior_j = _plan_prior(
                    plan, works, calibration, energy
                )
                records.append({
                    "k": int(k),
                    "backend": backend,
                    "bits": b,
                    "seconds": seconds,
                    "prior_seconds": prior_s,
                    "prior_energy_j": prior_j,
                })
    return records


def validate_prior(table: list[dict]) -> dict[tuple, float]:
    """Rank agreement between the latency prior and measured time.

    For each ``(backend, bits)`` group in a :func:`sweep_table` result,
    the fraction of block-size pairs the prior orders the same way as
    the measurement (1.0 = perfect Kendall concordance, 0.5 = random).
    Groups with fewer than two block sizes are skipped.
    """
    groups: dict[tuple, list[dict]] = {}
    for record in table:
        groups.setdefault(
            (record["backend"], record["bits"]), []
        ).append(record)
    agreement: dict[tuple, float] = {}
    for key, records in groups.items():
        if len(records) < 2:
            continue
        concordant = 0
        total = 0
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                a, b = records[i], records[j]
                total += 1
                prior_order = a["prior_seconds"] - b["prior_seconds"]
                measured_order = a["seconds"] - b["seconds"]
                if prior_order * measured_order > 0 or (
                    prior_order == 0 and measured_order == 0
                ):
                    concordant += 1
        agreement[key] = concordant / total
    return agreement
