"""Per-layer execution plans and the measured autotuner.

The config spine of the serving stack: an
:class:`ExecutionPlan` records, per parameterised layer, the FFT backend,
the fixed-point word length, and the contraction (block-size) hint — the
knobs CirCNN's design-space figures sweep. One plan object flows from
compile (``Sequential.compile_inference(plan=...)`` /
:func:`planned_view`) through persistence
(:func:`repro.store.save_artifact` manifests) to serving
(``ModelRegistry.apply_plan``), and :func:`tune` searches the plan space
with the :mod:`repro.arch` cost model as a prior and real measured
forwards as the verdict. See ``docs/execution_plans.md``.
"""

from repro.plan.execution_plan import (
    PLAN_VERSION,
    ExecutionPlan,
    LayerPlan,
    apply_plan_inplace,
    planned_view,
)
from repro.plan.tuner import (
    BackendCalibration,
    CandidateResult,
    TuningReport,
    calibrate_backends,
    measure_forward,
    sweep_table,
    tune,
    validate_prior,
)

__all__ = [
    "PLAN_VERSION",
    "ExecutionPlan",
    "LayerPlan",
    "apply_plan_inplace",
    "planned_view",
    "BackendCalibration",
    "CandidateResult",
    "TuningReport",
    "calibrate_backends",
    "measure_forward",
    "sweep_table",
    "tune",
    "validate_prior",
]
