"""Seeded random-number-generator helpers.

All stochastic code in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
funnels through :func:`make_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Parameters
    ----------
    seed:
        ``None`` (OS entropy), an ``int`` seed, or an existing ``Generator``
        (returned unchanged so call sites can thread one RNG through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
