"""Small shared utilities: argument validation and seeded RNG helpers."""

from repro.utils.validation import (
    ensure_divisible,
    ensure_in_range,
    ensure_positive,
    ensure_power_of_two,
    is_power_of_two,
    next_power_of_two,
)
from repro.utils.rng import make_rng

__all__ = [
    "ensure_divisible",
    "ensure_in_range",
    "ensure_positive",
    "ensure_power_of_two",
    "is_power_of_two",
    "next_power_of_two",
    "make_rng",
]
