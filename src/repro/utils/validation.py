"""Argument-validation helpers used across the library.

These raise :mod:`repro.errors` exceptions with messages that name the
offending argument, so failures surface at the public API boundary instead
of deep inside a NumPy kernel.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, NotPowerOfTwoError, ShapeError


def is_power_of_two(n: int) -> bool:
    """Return True if ``n`` is a positive integral power of two."""
    return isinstance(n, (int,)) and n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two that is >= ``n`` (n must be >= 1)."""
    if n < 1:
        raise ShapeError(f"next_power_of_two requires n >= 1, got {n}")
    return 1 << (int(n) - 1).bit_length()


def ensure_power_of_two(n: int, name: str = "n") -> int:
    """Validate that ``n`` is a power of two and return it."""
    if not is_power_of_two(n):
        raise NotPowerOfTwoError(f"{name} must be a power of two, got {n!r}")
    return n


def ensure_positive(value, name: str = "value"):
    """Validate that a scalar is strictly positive and return it."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_divisible(numerator: int, divisor: int, name: str = "value") -> int:
    """Validate that ``numerator`` is an exact multiple of ``divisor``.

    Returns the quotient ``numerator // divisor``.
    """
    if divisor <= 0:
        raise ConfigurationError(f"divisor for {name} must be > 0, got {divisor}")
    if numerator % divisor != 0:
        raise ShapeError(
            f"{name}={numerator} is not divisible by block size {divisor}"
        )
    return numerator // divisor


def ensure_in_range(value, low, high, name: str = "value"):
    """Validate that ``low <= value <= high`` and return ``value``."""
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value
