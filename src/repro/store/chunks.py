"""Chunked, compressed, memory-mappable array storage.

One stored array is **one file** holding the concatenation of its encoded
chunks, plus a metadata record (kept in the artifact manifest, not in the
file) describing dtype, shape, codec and the per-chunk byte extents:

```
<name>.bin:  [chunk 0 bytes][chunk 1 bytes]...[chunk n-1 bytes]
meta:        {"file", "dtype", "shape", "codec",
              "chunks": [{"offset", "length", "rows", "nbytes", "crc32"}]}
```

Chunks split the array along its leading axis (zarr-style) so writes
stream, each chunk compresses and checksums independently, and a corrupt
byte is localised to one chunk. Keeping the chunks contiguous in a single
file buys the cold-start property the serving store needs: with the
``identity`` codec the file *is* the array's C-order bytes, so loading is
a single ``np.memmap`` — no read, no decode, no copy, regardless of how
many chunks the writer used. Compressed codecs trade that instant start
for a smaller artifact and are decoded chunk-by-chunk into one buffer.

Every chunk records a CRC-32 of its **stored** bytes, so corruption is
detected before any decode runs; a short file raises
:class:`~repro.errors.StoreIntegrityError` naming the truncated chunk.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

from repro.errors import StoreError, StoreIntegrityError
from repro.store.codecs import get_codec

#: Default split size along the leading axis, pre-compression.
DEFAULT_CHUNK_BYTES = 4 << 20


def _leading_split(array: np.ndarray) -> tuple[int, int]:
    """``(rows, row_nbytes)`` for leading-axis chunking (0-d = one row)."""
    if array.ndim == 0:
        return 1, array.nbytes
    rows = array.shape[0]
    return rows, array.nbytes // rows if rows else 0


def write_chunked_array(
    array: np.ndarray, directory: str | os.PathLike, name: str, *,
    codec: str = "zlib", chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> dict:
    """Write ``array`` as ``<name>.bin`` under ``directory``; return its meta.

    The array is stored in C order; non-contiguous inputs (e.g. the
    natural transposed views of frequency-major spectra) must be passed
    as the contiguous buffer the caller wants on disk. The returned meta
    dict is exactly what :func:`read_chunked_array` consumes and what the
    manifest embeds per array.
    """
    if chunk_bytes < 1:
        raise StoreError(f"chunk_bytes must be >= 1, got {chunk_bytes}")
    cod = get_codec(codec)
    array = np.asarray(array)
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    rows, row_nbytes = _leading_split(array)
    rows_per_chunk = max(1, chunk_bytes // row_nbytes) if row_nbytes else rows
    flat = array.reshape(rows, -1) if array.size else None
    filename = f"{name}.bin"
    chunks: list[dict] = []
    offset = 0
    with open(Path(directory) / filename, "wb") as fh:
        for start in range(0, rows if flat is not None else 0,
                           rows_per_chunk):
            stop = min(start + rows_per_chunk, rows)
            raw = flat[start:stop].tobytes()
            stored = cod.encode(raw)
            fh.write(stored)
            chunks.append({
                "offset": offset,
                "length": len(stored),
                "rows": stop - start,
                "nbytes": len(raw),
                "crc32": zlib.crc32(stored),
            })
            offset += len(stored)
    return {
        "file": filename,
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "codec": cod.name,
        "nbytes": array.nbytes,
        "stored_nbytes": offset,
        "chunks": chunks,
    }


def _read_stored_chunk(fh, chunk: dict, *, file: str, index: int) -> bytes:
    """One chunk's stored bytes, CRC-verified; integrity errors name it."""
    fh.seek(chunk["offset"])
    stored = fh.read(chunk["length"])
    if len(stored) != chunk["length"]:
        raise StoreIntegrityError(
            f"{file}: chunk {index} truncated — expected "
            f"{chunk['length']} stored bytes, found {len(stored)}"
        )
    if zlib.crc32(stored) != chunk["crc32"]:
        raise StoreIntegrityError(
            f"{file}: chunk {index} failed its CRC-32 check "
            "(corrupted or partially overwritten artifact)"
        )
    return stored


def read_chunked_array(
    directory: str | os.PathLike, meta: dict, *,
    mmap: bool = False, verify: bool | None = None,
) -> np.ndarray:
    """Load an array written by :func:`write_chunked_array` (read-only).

    ``mmap=True`` with the ``identity`` codec maps the file instead of
    reading it — the instant-cold-start path: pages fault in lazily as
    the first forward touches them. Mapping skips checksum verification
    by default (touching every page would defeat the laziness); pass
    ``verify=True`` to force a full check, or leave ``verify=None`` for
    the default (checked on reads, unchecked on maps). ``mmap=True`` on a
    compressed codec silently falls back to read-and-decode — the caller
    asked for the fastest available load, not for a mapping guarantee.
    """
    cod = get_codec(meta["codec"])
    dtype = np.dtype(meta["dtype"])
    shape = tuple(meta["shape"])
    path = Path(directory) / meta["file"]
    if not path.is_file():
        raise StoreError(f"missing chunk file {meta['file']!r} in {directory}")
    if np.prod(shape, dtype=np.int64) == 0:
        # Nothing was stored for an empty array; nothing to map or read.
        out = np.empty(shape, dtype=dtype)
        out.setflags(write=False)
        return out
    use_mmap = mmap and cod.name == "identity"
    if verify is None:
        verify = not use_mmap
    if verify:
        with open(path, "rb") as fh:
            for index, chunk in enumerate(meta["chunks"]):
                _read_stored_chunk(fh, chunk, file=meta["file"], index=index)
    if use_mmap:
        if path.stat().st_size != meta["nbytes"]:
            raise StoreIntegrityError(
                f"{meta['file']}: file is {path.stat().st_size} bytes, "
                f"expected {meta['nbytes']} for a mapped identity array"
            )
        out = np.memmap(path, dtype=dtype, mode="r", shape=shape)
        return out
    out = np.empty(shape, dtype=dtype)
    rows, _ = _leading_split(out)
    flat = out.reshape(rows, -1) if out.size else None
    row = 0
    with open(path, "rb") as fh:
        for index, chunk in enumerate(meta["chunks"]):
            stored = _read_stored_chunk(fh, chunk, file=meta["file"],
                                        index=index)
            raw = cod.decode(stored)
            if len(raw) != chunk["nbytes"]:
                raise StoreIntegrityError(
                    f"{meta['file']}: chunk {index} decoded to {len(raw)} "
                    f"bytes, expected {chunk['nbytes']}"
                )
            flat[row:row + chunk["rows"]] = np.frombuffer(
                raw, dtype=dtype
            ).reshape(chunk["rows"], -1)
            row += chunk["rows"]
    if row != rows:
        raise StoreIntegrityError(
            f"{meta['file']}: chunks cover {row} rows, array has {rows}"
        )
    out.setflags(write=False)
    return out


def verify_chunked_array(directory: str | os.PathLike, meta: dict) -> None:
    """CRC-check every stored chunk without decoding (raises on failure)."""
    path = Path(directory) / meta["file"]
    if not path.is_file():
        raise StoreError(f"missing chunk file {meta['file']!r} in {directory}")
    with open(path, "rb") as fh:
        for index, chunk in enumerate(meta["chunks"]):
            _read_stored_chunk(fh, chunk, file=meta["file"], index=index)
