"""Persist and reload compiled networks — the store's save/load core.

``save_artifact`` snapshots a ``compile_inference()``-ed network into a
directory: a layer-spec manifest plus one chunked file per parameter and
per **precomputed weight spectrum**. ``load_artifact`` inverts it without
recomputing a single FFT: layers are rebuilt with ``init="zeros"``,
parameter arrays are adopted read-only (memory-mapped when the codec is
``identity``), and each stored spectrum is seeded straight into a fresh
:class:`~repro.circulant.spectral_cache.SpectralWeightCache` — the loaded
network is frozen, warm, and bit-identical to the one that was saved.

Spectra are stored as the cache's **frequency-major** contiguous buffer
(FC: ``(f, p, q)``; CONV: ``(f, p, r², q)``) — for FC that transpose *is*
the contiguous memory, so writing is a plain byte dump, and on load the
natural logical view is restored by the inverse transpose. The loaded
spectrum therefore hits the same zero-copy per-frequency GEMM layout the
engine compiles to (see ``docs/spectral_engine.md``).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.circulant.spectral_cache import natural_view, spectrum_layout
from repro.errors import ConfigurationError, ShapeError, StoreError
from repro.store.chunks import (
    DEFAULT_CHUNK_BYTES,
    read_chunked_array,
    verify_chunked_array,
    write_chunked_array,
)
from repro.store.manifest import (
    MANIFEST_FILE,
    MANIFEST_FORMAT,
    content_hash,
    layer_from_spec,
    layer_to_spec,
    read_manifest,
    write_manifest,
)


def _spectrum_layout(spectrum: np.ndarray) -> tuple[str, np.ndarray]:
    """:func:`repro.circulant.spectral_cache.spectrum_layout`, as a StoreError.

    The layout algebra lives with the cache (the multi-process server's
    shared-memory images serialise the same buffers); the store wraps it
    so an unsupported spectrum still surfaces as a store failure.
    """
    try:
        return spectrum_layout(spectrum)
    except ShapeError as exc:
        raise StoreError(str(exc)) from exc


def _natural_view(buffer: np.ndarray, layout: str) -> np.ndarray:
    """Invert :func:`_spectrum_layout`: stored buffer → natural view."""
    try:
        return natural_view(buffer, layout)
    except ShapeError as exc:
        raise StoreError(f"{exc} in manifest") from exc


def _json_signature(signature: dict) -> dict:
    """A serving signature as plain JSON types (tuples become lists)."""
    out = dict(signature)
    shape = out.get("input_sample_shape")
    if shape is not None:
        out["input_sample_shape"] = list(shape)
    return out


def save_artifact(
    network, path: str | os.PathLike, *,
    codec: str = "zlib", chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    overwrite: bool = False,
) -> dict:
    """Write ``network``'s compiled state to directory ``path``.

    The network must already be compiled (``compile_inference()``): the
    store's contract is that loading skips compilation entirely, so there
    is nothing useful to persist about an uncompiled network — trying
    raises :class:`~repro.errors.StoreError`. Pass ``codec="identity"``
    for memory-mappable artifacts (larger on disk, instant to load) or
    the default ``"zlib"`` for compressed ones. Returns the manifest
    (content hash included) and writes it last, so an interrupted save
    never leaves a loadable-looking directory.
    """
    from repro.nn.serialization import capture_compiled_state
    from repro.plan import ExecutionPlan
    from repro.quant import quantization_format

    try:
        state = capture_compiled_state(network)
    except ConfigurationError as exc:
        raise StoreError(
            f"save_artifact needs a compiled network: {exc}"
        ) from exc
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    if (directory / MANIFEST_FILE).exists() and not overwrite:
        raise StoreError(
            f"{directory} already holds an artifact; pass overwrite=True "
            "or publish through ArtifactStore for versioned directories"
        )
    spec = layer_to_spec(network)
    parameters = []
    for name, param in state["parameters"].items():
        meta = write_chunked_array(
            param.value, directory, name, codec=codec, chunk_bytes=chunk_bytes
        )
        parameters.append({"name": name, "array": meta})
    spectra = []
    for record in state["spectra"]:
        layout, buffer = _spectrum_layout(record["spectrum"])
        meta = write_chunked_array(
            buffer, directory, f"{record['param']}.spectrum",
            codec=codec, chunk_bytes=chunk_bytes,
        )
        spectra.append({
            "param": record["param"],
            "backend": record["backend"],
            "layout": layout,
            "array": meta,
        })
    manifest = {
        "format": MANIFEST_FORMAT,
        "codec": codec,
        "network": spec,
        "parameters": parameters,
        "spectra": spectra,
        "serving_signature": _json_signature(state["signature"]),
        "quantization": quantization_format(network),
        # The per-layer execution configuration this network was compiled
        # under: the stamped plan when one was applied, else the plan the
        # network's construction embodies (backends, word lengths, block
        # sizes). load_artifact re-stamps it on the rebuilt network.
        "execution_plan": ExecutionPlan.from_network(network).to_json(),
    }
    write_manifest(directory, manifest)
    return read_manifest(directory)


def load_artifact(
    path: str | os.PathLike, *,
    mmap: bool = True, verify: bool | None = None, backend=None,
):
    """Reconstruct a frozen, serving-ready network from an artifact.

    No FFT runs: layers are rebuilt from the manifest's spec tree with
    ``init="zeros"`` (no random draws), each parameter adopts its stored
    array read-only without copying
    (:meth:`~repro.nn.module.Parameter.adopt_frozen` — a memory map when
    ``mmap=True`` and the codec is ``identity``), and every stored weight
    spectrum is seeded into one shared
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache`
    (:meth:`~repro.circulant.spectral_cache.SpectralWeightCache.seed`).
    The result is in eval mode with every parameter frozen — exactly the
    state ``compile_inference()`` leaves behind, minus the FFTs.

    ``verify`` follows :func:`repro.store.chunks.read_chunked_array`:
    checksums are verified on reads and skipped on maps unless forced.
    ``backend`` (name or instance) overrides the FFT backend of every
    block-circulant layer *and* the seeded spectra — the instrumentation
    hook tests use to prove zero transforms ran.
    """
    from repro.circulant.spectral_cache import SpectralWeightCache
    from repro.nn.network import Sequential

    directory = Path(path)
    manifest = read_manifest(directory)
    network = layer_from_spec(manifest["network"], backend)
    if not isinstance(network, Sequential):
        raise StoreError(
            "artifact does not describe a Sequential network at top level"
        )
    current = dict(network.named_parameters())
    stored_names = [record["name"] for record in manifest["parameters"]]
    missing = sorted(set(current) - set(stored_names))
    extra = sorted(set(stored_names) - set(current))
    if missing or extra:
        raise StoreError(
            f"manifest parameters do not match the spec tree: missing "
            f"{missing}, unexpected {extra}"
        )
    for record in manifest["parameters"]:
        param = current[record["name"]]
        array = read_chunked_array(
            directory, record["array"], mmap=mmap, verify=verify
        )
        if array.shape != param.value.shape:
            raise StoreError(
                f"stored parameter {record['name']!r} has shape "
                f"{array.shape}, the rebuilt layer expects "
                f"{param.value.shape}"
            )
        param.adopt_frozen(array)
    cache = SpectralWeightCache()
    for record in manifest["spectra"]:
        param = current.get(record["param"])
        if param is None:
            raise StoreError(
                f"spectrum record names unknown parameter {record['param']!r}"
            )
        buffer = read_chunked_array(
            directory, record["array"], mmap=mmap, verify=verify
        )
        spectrum = _natural_view(buffer, record["layout"])
        cache.seed(
            param, spectrum,
            backend=backend if backend is not None else record["backend"],
        )
    for _, layer in network.spectral_layers():
        layer.spectral_cache = cache
    network._spectral_cache = cache
    network.eval()
    quantization = manifest.get("quantization")
    if quantization and quantization.get("weight_bits") is not None:
        network.weight_quant_bits = quantization["weight_bits"]
    _restore_execution_plan(network, manifest, backend)
    signature = _json_signature(network.serving_signature())
    stored_signature = manifest["serving_signature"]
    for key in ("input_sample_shape", "layers", "cached_spectra"):
        if signature.get(key) != stored_signature.get(key):
            raise StoreError(
                f"loaded network's serving signature disagrees with the "
                f"manifest on {key!r}: {signature.get(key)!r} != "
                f"{stored_signature.get(key)!r} (corrupted or hand-edited "
                "artifact)"
            )
    return network


def _restore_execution_plan(network, manifest: dict, backend) -> None:
    """Re-stamp the manifest's execution plan on the rebuilt network.

    Validates the document and its entry count against the rebuilt
    layers (a mismatch means a hand-edited or cross-version artifact),
    restores the per-layer ``weight_quant_bits`` markers the plan's
    word lengths imply, and stamps ``network.execution_plan``. A
    ``load_artifact(backend=...)`` override rewrites the stamped
    backends to the override's registered name (or drops them when the
    override is an unregistered instance) — the stamp must describe
    what the network will actually run, not what was saved.
    """
    from repro.errors import PlanError
    from repro.plan import ExecutionPlan, LayerPlan

    try:
        plan = ExecutionPlan.from_json(manifest["execution_plan"])
    except PlanError as exc:
        raise StoreError(
            f"manifest execution_plan is invalid: {exc}"
        ) from exc
    planned = list(network.planned_layers())
    if len(plan) != len(planned):
        raise StoreError(
            f"manifest execution_plan has {len(plan)} layer entries but "
            f"the rebuilt network has {len(planned)} parameterised layers "
            "(corrupted or hand-edited artifact)"
        )
    if backend is not None:
        from repro.fftcore.backend import available_backends, get_backend

        name = get_backend(backend).name
        override = name if name in available_backends() else None
        plan = ExecutionPlan(
            layers=tuple(
                LayerPlan(
                    backend=override if entry.backend is not None else None,
                    bits=entry.bits,
                    block_size=entry.block_size,
                )
                for entry in plan.layers
            ),
            activation_bits=plan.activation_bits,
        )
    for (_path, layer), entry in zip(planned, plan.layers):
        if entry.bits is not None:
            layer.weight_quant_bits = entry.bits
    network._execution_plan = plan


def verify_artifact(path: str | os.PathLike) -> dict:
    """Integrity-check an artifact without building a network.

    Re-derives the manifest's content hash and CRC-checks every stored
    chunk of every array (no decoding, no FFTs). Raises
    :class:`~repro.errors.StoreError` /
    :class:`~repro.errors.StoreIntegrityError` on any mismatch; returns
    the manifest on success.
    """
    from repro.errors import StoreIntegrityError

    directory = Path(path)
    manifest = read_manifest(directory)
    expected = content_hash(manifest)
    if manifest["content_hash"] != expected:
        raise StoreIntegrityError(
            f"manifest content hash {manifest['content_hash']} does not "
            f"match its contents ({expected}); the manifest was edited or "
            "corrupted"
        )
    for record in manifest["parameters"]:
        verify_chunked_array(directory, record["array"])
    for record in manifest["spectra"]:
        verify_chunked_array(directory, record["array"])
    return manifest
