"""Model-artifact store: instant cold start for the serving stack.

``compile_inference()`` turns a trained network into a frozen spectral
engine — but a serving process restarting from scratch pays the whole
rebuild again: construct layers, load weights, recompute every weight
FFT. This package persists the *compiled* state instead, as a
content-hash-versioned artifact directory:

- :mod:`repro.store.codecs` — pluggable lossless byte codecs
  (``"zlib"`` compressed, ``"identity"`` memory-mappable);
- :mod:`repro.store.chunks` — zarr-style chunked array files with
  per-chunk CRC-32 integrity and an ``np.memmap`` fast path;
- :mod:`repro.store.manifest` — the JSON manifest: layer-spec tree,
  array records, serving signature, quantisation format, content hash;
- :mod:`repro.store.artifact` — :func:`save_artifact` /
  :func:`load_artifact` / :func:`verify_artifact`; loading rebuilds a
  frozen, serving-ready network with **zero FFTs recomputed** (stored
  spectra are seeded directly into the spectral cache);
- :mod:`repro.store.registry` — :class:`ArtifactStore`, the
  ``root/<model>/<hash12>/`` versioned layout whose old versions double
  as rollback targets for
  :meth:`repro.serving.registry.ModelRegistry.swap_from_store`.

See ``docs/model_store.md`` for the on-disk layout and an end-to-end
publish → cold-start-serve → hot-swap → rollback walkthrough.
"""

from repro.store.artifact import load_artifact, save_artifact, verify_artifact
from repro.store.chunks import (
    DEFAULT_CHUNK_BYTES,
    read_chunked_array,
    verify_chunked_array,
    write_chunked_array,
)
from repro.store.codecs import (
    Codec,
    IdentityCodec,
    ZlibCodec,
    available_codecs,
    get_codec,
    register_codec,
)
from repro.store.manifest import (
    MANIFEST_FILE,
    MANIFEST_FORMAT,
    content_hash,
    layer_from_spec,
    layer_to_spec,
    read_manifest,
    write_manifest,
)
from repro.store.registry import VERSION_DIGITS, ArtifactStore

__all__ = [
    "save_artifact",
    "load_artifact",
    "verify_artifact",
    "ArtifactStore",
    "VERSION_DIGITS",
    "Codec",
    "IdentityCodec",
    "ZlibCodec",
    "register_codec",
    "get_codec",
    "available_codecs",
    "DEFAULT_CHUNK_BYTES",
    "write_chunked_array",
    "read_chunked_array",
    "verify_chunked_array",
    "MANIFEST_FORMAT",
    "MANIFEST_FILE",
    "content_hash",
    "layer_to_spec",
    "layer_from_spec",
    "read_manifest",
    "write_manifest",
]
