"""Content-hash-versioned artifact directories — the publish side.

:class:`ArtifactStore` manages a directory tree of artifacts laid out as
``root/<model>/<version>/``, where ``<version>`` is the first 12 hex
digits of the artifact's manifest content hash. Publishing the same
compiled state twice lands on the same directory (a no-op), any change to
weights, spectra, codec or layer config lands on a new one, and old
versions stay on disk untouched — so the store doubles as the rollback
history: rolling an endpoint back is
``registry.swap_from_store(name, store.path(model, old_version))``.

Saves go to a temporary directory first and are renamed into place once
the manifest (written last) exists, so a crashed publish never produces a
version directory that :func:`repro.store.load_artifact` would accept.
"""

from __future__ import annotations

import itertools
import os
import shutil
from pathlib import Path

from repro.errors import StoreError
from repro.store.artifact import save_artifact
from repro.store.chunks import DEFAULT_CHUNK_BYTES
from repro.store.manifest import MANIFEST_FILE

#: Hex digits of the content hash used as the version directory name.
VERSION_DIGITS = 12

_publish_counter = itertools.count()


class ArtifactStore:
    """A directory of content-hash-versioned model artifacts."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def publish(
        self, name: str, network, *,
        codec: str = "zlib", chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> Path:
        """Save ``network`` under ``name``; returns its version directory.

        Idempotent: republishing identical compiled state resolves to the
        existing version directory and writes nothing new.
        """
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        staging = model_dir / f".publish-{os.getpid()}-{next(_publish_counter)}"
        manifest = save_artifact(
            network, staging, codec=codec, chunk_bytes=chunk_bytes
        )
        version = manifest["content_hash"].split(":", 1)[1][:VERSION_DIGITS]
        final = model_dir / version
        if final.exists():
            shutil.rmtree(staging)
            return final
        try:
            staging.rename(final)
        except OSError:
            # A concurrent publish of the same content won the rename;
            # identical bytes are already in place.
            if not final.exists():
                raise
            shutil.rmtree(staging)
        return final

    def models(self) -> list[str]:
        """Sorted model names with at least one published version."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name for entry in self.root.iterdir()
            if entry.is_dir() and self._versions_of(entry)
        )

    def _versions_of(self, model_dir: Path) -> list[Path]:
        return [
            entry for entry in model_dir.iterdir()
            if entry.is_dir()
            and not entry.name.startswith(".")
            and (entry / MANIFEST_FILE).is_file()
        ]

    def versions(self, name: str) -> list[str]:
        """Version strings for ``name``, oldest publish first.

        Ordered by directory modification time (tie-broken by name) —
        content hashes carry no ordering of their own.
        """
        model_dir = self.root / name
        if not model_dir.is_dir():
            raise StoreError(f"no model {name!r} in store {self.root}")
        entries = self._versions_of(model_dir)
        if not entries:
            raise StoreError(f"no published versions of {name!r} in {self.root}")
        entries.sort(key=lambda entry: (entry.stat().st_mtime, entry.name))
        return [entry.name for entry in entries]

    def path(self, name: str, version: str) -> Path:
        """The artifact directory for ``name`` at ``version``."""
        candidate = self.root / name / version
        if not (candidate / MANIFEST_FILE).is_file():
            raise StoreError(
                f"no artifact for model {name!r} at version {version!r} "
                f"in {self.root}"
            )
        return candidate

    def latest(self, name: str) -> Path:
        """The most recently published version directory of ``name``."""
        return self.path(name, self.versions(name)[-1])

    def load(self, name: str, version: str | None = None, *,
             mmap: bool = True, verify: bool | None = None, backend=None):
        """Load ``name`` (latest version unless one is named) to a network."""
        from repro.store.artifact import load_artifact

        directory = (
            self.latest(name) if version is None else self.path(name, version)
        )
        return load_artifact(
            directory, mmap=mmap, verify=verify, backend=backend
        )

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r})"
