"""Artifact manifest: JSON schema, layer specs, content hashing.

The manifest (``manifest.json``) is the one humanly-readable file in an
artifact directory. It records everything needed to reconstruct a frozen,
serving-ready network without touching the original Python that built it:

- ``format`` — the artifact format version (``"repro.store/1"``);
- ``network`` — a recursive layer-spec tree (constructor configs, not
  pickles: artifacts stay portable and diffable);
- ``parameters`` — one chunked-array record per named parameter
  (:mod:`repro.store.chunks` metadata, names matching
  ``Sequential.named_parameters``);
- ``spectra`` — one record per block-circulant layer: which parameter the
  spectrum belongs to, which FFT backend derived it, its layout
  (``"fc"``/``"conv"``) and its chunked-array record. The stored buffer
  is the cache's **frequency-major** memory, so a load (or map) hands the
  per-frequency GEMM the exact zero-copy layout a fresh
  ``compile_inference()`` would have produced;
- ``serving_signature`` / ``quantization`` — the batch-shape contract and
  fixed-point format the endpoint serves;
- ``execution_plan`` — the :class:`repro.plan.ExecutionPlan` document
  (per-layer backend / word length / block-size record) the network was
  compiled under; ``load_artifact`` reconstructs and re-stamps it so a
  loaded endpoint knows exactly what configuration it is serving;
- ``content_hash`` — SHA-256 over the canonical manifest minus this
  field. Every chunk's CRC-32, shape, dtype and codec is inside the
  manifest, so the hash versions the artifact's full content without
  re-reading the arrays; it is the version string
  :class:`repro.store.registry.ArtifactStore` keys directories by.

A missing, unparsable, or key-incomplete manifest raises
:class:`~repro.errors.StoreError` — the truncated-manifest error path
exercised in ``tests/test_store.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import StoreError

MANIFEST_FORMAT = "repro.store/1"
MANIFEST_FILE = "manifest.json"

_REQUIRED_KEYS = (
    "format", "content_hash", "codec", "network", "parameters", "spectra",
    "serving_signature", "quantization", "execution_plan",
)


# ---------------------------------------------------------------------------
# Layer specs
# ---------------------------------------------------------------------------

def _resolved_backend_name(layer) -> str | None:
    """The registered backend name a block-circulant layer transforms on.

    Custom backend *instances* (e.g. a ``CountingFFTBackend``) are not
    portable — a manifest naming one could never be loaded in a fresh
    process — so they are rejected at save time; load-time overrides go
    through ``load_artifact(backend=...)`` instead.
    """
    from repro.fftcore.backend import available_backends, get_backend

    if layer.backend is None:
        return None
    name = get_backend(layer.backend).name
    if name not in available_backends():
        raise StoreError(
            f"layer {layer!r} uses unregistered FFT backend {name!r}; "
            "artifacts can only reference registered backend names"
        )
    return name


def _describe_bc_dense(layer) -> dict:
    return {
        "in_features": layer.in_features,
        "out_features": layer.out_features,
        "block_size": layer.block_size,
        "bias": layer.bias is not None,
        "backend": _resolved_backend_name(layer),
    }


def _build_bc_dense(config: dict, backend):
    from repro.nn.block_circulant_dense import BlockCirculantDense

    return BlockCirculantDense(
        config["in_features"], config["out_features"], config["block_size"],
        bias=config["bias"],
        backend=backend if backend is not None else config["backend"],
        init="zeros",
    )


def _describe_bc_conv(layer) -> dict:
    return {
        "in_channels": layer.in_channels,
        "out_channels": layer.out_channels,
        "field": layer.field,
        "block_size": layer.block_size,
        "stride": layer.stride,
        "padding": layer.padding,
        "bias": layer.bias is not None,
        "backend": _resolved_backend_name(layer),
    }


def _build_bc_conv(config: dict, backend):
    from repro.nn.block_circulant_conv import BlockCirculantConv2D

    return BlockCirculantConv2D(
        config["in_channels"], config["out_channels"], config["field"],
        config["block_size"], stride=config["stride"],
        padding=config["padding"], bias=config["bias"],
        backend=backend if backend is not None else config["backend"],
        init="zeros",
    )


def _describe_bc_recurrent(layer) -> dict:
    return {
        "in_features": layer.in_features,
        "hidden_size": layer.hidden_size,
        "block_size": layer.block_size,
        "bias": getattr(layer, layer.X_GATES[0]).bias is not None,
        "backend": _resolved_backend_name(layer),
        # Per-gate backends: an applied ExecutionPlan configures each gate
        # projection independently, and the zero-FFT load path must
        # rebuild every gate on the backend its stored spectrum was
        # derived with (load_artifact seeds spectra by backend name).
        "gate_backends": {
            name: _resolved_backend_name(gate)
            for name, gate in layer.named_children()
        },
    }


def _build_bc_recurrent(cls_name: str):
    def build(config: dict, backend):
        from repro.nn import recurrent

        cls = getattr(recurrent, cls_name)
        layer = cls(
            config["in_features"], config["hidden_size"],
            config["block_size"], bias=config["bias"],
            backend=backend if backend is not None else config["backend"],
            init="zeros",
        )
        if backend is None:
            for name, gate_backend in config.get(
                "gate_backends", {}
            ).items():
                getattr(layer, name).backend = gate_backend
        return layer

    return build


def _describe_dense(layer) -> dict:
    return {
        "in_features": layer.in_features,
        "out_features": layer.out_features,
        "bias": layer.bias is not None,
    }


def _build_dense(config: dict, backend):
    from repro.nn.dense import Dense

    return Dense(config["in_features"], config["out_features"],
                 bias=config["bias"], init="zeros")


def _describe_conv(layer) -> dict:
    return {
        "in_channels": layer.in_channels,
        "out_channels": layer.out_channels,
        "field": layer.field,
        "stride": layer.stride,
        "padding": layer.padding,
        "bias": layer.bias is not None,
    }


def _build_conv(config: dict, backend):
    from repro.nn.conv import Conv2D

    return Conv2D(config["in_channels"], config["out_channels"],
                  config["field"], stride=config["stride"],
                  padding=config["padding"], bias=config["bias"],
                  init="zeros")


def _describe_pool(layer) -> dict:
    return {"field": layer.field, "stride": layer.stride}


def _describe_dropout(layer) -> dict:
    # The RNG state is deliberately not captured: a stored artifact serves
    # inference, where dropout is the identity.
    return {"rate": layer.rate}


def _describe_quantizer(layer) -> dict:
    return {"total_bits": layer.total_bits}


def _stateless(build):
    """Adapt a no-config constructor into the (config, backend) signature."""
    return lambda config, backend: build()


def _spec_registry() -> dict:
    from repro.nn import activations, dropout, pooling, reshape
    from repro.nn.block_circulant_conv import BlockCirculantConv2D
    from repro.nn.block_circulant_dense import BlockCirculantDense
    from repro.nn.conv import Conv2D
    from repro.nn.dense import Dense
    from repro.nn.recurrent import BlockCirculantGRU, BlockCirculantLSTM
    from repro.quant.network import ActivationQuantizer

    return {
        BlockCirculantDense: ("BlockCirculantDense",
                              _describe_bc_dense, _build_bc_dense),
        BlockCirculantConv2D: ("BlockCirculantConv2D",
                               _describe_bc_conv, _build_bc_conv),
        BlockCirculantLSTM: ("BlockCirculantLSTM", _describe_bc_recurrent,
                             _build_bc_recurrent("BlockCirculantLSTM")),
        BlockCirculantGRU: ("BlockCirculantGRU", _describe_bc_recurrent,
                            _build_bc_recurrent("BlockCirculantGRU")),
        Dense: ("Dense", _describe_dense, _build_dense),
        Conv2D: ("Conv2D", _describe_conv, _build_conv),
        activations.ReLU: ("ReLU", lambda _: {},
                           _stateless(activations.ReLU)),
        activations.Sigmoid: ("Sigmoid", lambda _: {},
                              _stateless(activations.Sigmoid)),
        activations.Tanh: ("Tanh", lambda _: {},
                           _stateless(activations.Tanh)),
        reshape.Flatten: ("Flatten", lambda _: {},
                          _stateless(reshape.Flatten)),
        pooling.MaxPool2D: ("MaxPool2D", _describe_pool,
                            lambda c, b: pooling.MaxPool2D(
                                c["field"], c["stride"])),
        pooling.AvgPool2D: ("AvgPool2D", _describe_pool,
                            lambda c, b: pooling.AvgPool2D(
                                c["field"], c["stride"])),
        dropout.Dropout: ("Dropout", _describe_dropout,
                          lambda c, b: dropout.Dropout(c["rate"])),
        ActivationQuantizer: ("ActivationQuantizer", _describe_quantizer,
                              lambda c, b: ActivationQuantizer(
                                  c["total_bits"])),
    }


def layer_to_spec(layer) -> dict:
    """Recursive ``{"type": ..., "config": ...}`` spec of a layer tree.

    Raises :class:`~repro.errors.StoreError` for layer types the store
    does not know how to rebuild — persisting a network with a custom
    layer needs a spec codec for it, not a silently lossy artifact.
    """
    from repro.nn.network import Sequential

    if isinstance(layer, Sequential):
        return {
            "type": "Sequential",
            "config": {"layers": [layer_to_spec(child)
                                  for child in layer.layers]},
        }
    entry = _spec_registry().get(type(layer))
    if entry is None:
        raise StoreError(
            f"cannot persist layer of type {type(layer).__name__}: no "
            "spec codec is registered for it in repro.store.manifest"
        )
    name, describe, _ = entry
    return {"type": name, "config": describe(layer)}


def layer_from_spec(spec: dict, backend=None):
    """Rebuild a layer tree from :func:`layer_to_spec` output.

    Parameterised layers are constructed with ``init="zeros"`` — their
    values are assigned from the stored arrays immediately afterwards, so
    skipping the random draw shaves the dominant Python cost off a cold
    rebuild. ``backend`` (a name or :class:`~repro.fftcore.backend.FFTBackend`
    instance) overrides the stored FFT backend of every block-circulant
    layer — the hook tests use to count transform calls on a loaded
    network.
    """
    from repro.nn.network import Sequential

    if not isinstance(spec, dict) or "type" not in spec:
        raise StoreError(f"malformed layer spec: {spec!r}")
    if spec["type"] == "Sequential":
        return Sequential(*[layer_from_spec(child, backend)
                            for child in spec["config"]["layers"]])
    builders = {name: build for name, _, build in _spec_registry().values()}
    build = builders.get(spec["type"])
    if build is None:
        raise StoreError(
            f"manifest names unknown layer type {spec['type']!r}; "
            "was this artifact written by a newer format?"
        )
    return build(spec.get("config", {}), backend)


# ---------------------------------------------------------------------------
# Manifest IO and content hashing
# ---------------------------------------------------------------------------

def content_hash(manifest: dict) -> str:
    """``"sha256:..."`` over the canonical manifest minus ``content_hash``.

    Each array record embeds its chunks' CRC-32s, byte extents, dtype and
    shape, so this hash changes whenever any stored byte, any layer
    config, or any serving metadata changes — a content version string
    computed without re-reading the arrays.
    """
    body = {key: value for key, value in manifest.items()
            if key != "content_hash"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_manifest(directory: str | os.PathLike, manifest: dict) -> None:
    """Stamp the content hash and write ``manifest.json`` under ``directory``.

    Written last by ``save_artifact``, so a crashed save leaves a
    directory *without* a manifest — unloadable by construction — rather
    than a manifest pointing at half-written chunks.
    """
    manifest = dict(manifest)
    manifest["content_hash"] = content_hash(manifest)
    path = Path(directory) / MANIFEST_FILE
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)


def read_manifest(directory: str | os.PathLike) -> dict:
    """Load and validate ``manifest.json`` (schema keys + format version).

    Raises :class:`~repro.errors.StoreError` when the file is missing,
    not JSON (truncated writes included), missing required keys, or
    written by an unknown format version.
    """
    path = Path(directory) / MANIFEST_FILE
    if not path.is_file():
        raise StoreError(
            f"no {MANIFEST_FILE} in {directory} — not an artifact directory "
            "(or an interrupted save; re-publish the artifact)"
        )
    try:
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreError(
            f"{path} is not valid JSON (truncated or corrupted manifest): "
            f"{exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise StoreError(f"{path} does not hold a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise StoreError(
            f"{path} is missing required keys {missing} "
            "(truncated manifest?)"
        )
    if manifest["format"] != MANIFEST_FORMAT:
        raise StoreError(
            f"artifact format {manifest['format']!r} is not supported "
            f"(this build reads {MANIFEST_FORMAT!r})"
        )
    return manifest
