"""Byte-stream codecs for stored artifact chunks.

The artifact store compresses each chunk independently (zarr-style), so
the codec interface is deliberately tiny: ``encode(bytes) -> bytes`` and
``decode(bytes) -> bytes``, round-trip exact. Two codecs ship:

- ``"zlib"`` — the stdlib DEFLATE compressor. Defining vectors and
  half-spectra are float64/complex128 arrays whose exponent bytes repeat
  heavily, so DEFLATE recovers a useful fraction of the raw size at
  negligible decode cost relative to recomputing the FFTs.
- ``"identity"`` — stores raw bytes. This is both the fallback when no
  real compressor is wanted *and* the memory-map fast path: an
  identity-coded chunk is the array's exact C-order bytes on disk, so
  loading can ``np.memmap`` it instead of reading and decoding
  (see :func:`repro.store.chunks.read_chunked_array`).

Codecs are looked up by name through a registry so alternative
compressors (blosc, lz4, zstd) can be plugged in without touching the
chunk or manifest layers — register an instance and its name becomes
valid in every manifest. Round-trip correctness of every registered codec
is asserted in ``tests/test_store.py`` (the zarr/deeplake
compress→decompress→assert_array_equal idiom).
"""

from __future__ import annotations

import zlib

from repro.errors import StoreError


class Codec:
    """Interface: lossless byte-stream encode/decode, identified by name."""

    name = "abstract"

    def encode(self, data: bytes) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> bytes:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Codec {self.name}>"


class IdentityCodec(Codec):
    """Raw bytes through; the artifact stays memory-mappable."""

    name = "identity"

    def encode(self, data: bytes) -> bytes:
        return bytes(data)

    def decode(self, data: bytes) -> bytes:
        return bytes(data)


class ZlibCodec(Codec):
    """Stdlib DEFLATE at a fixed level (default 6, the zlib default)."""

    name = "zlib"

    def __init__(self, level: int = 6):
        if not 0 <= level <= 9:
            raise StoreError(f"zlib level must be in [0, 9], got {level}")
        self.level = level

    def encode(self, data: bytes) -> bytes:
        return zlib.compress(bytes(data), self.level)

    def decode(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise StoreError(f"zlib chunk failed to decompress: {exc}") from exc


_CODECS: dict[str, Codec] = {}


def register_codec(codec: Codec, *, replace: bool = False) -> Codec:
    """Add ``codec`` to the registry under ``codec.name``; returns it."""
    if codec.name in _CODECS and not replace:
        raise StoreError(
            f"codec {codec.name!r} is already registered; pass replace=True "
            "to override"
        )
    _CODECS[codec.name] = codec
    return codec


def get_codec(name: str | Codec) -> Codec:
    """Look a codec up by name (instances pass through unchanged)."""
    if isinstance(name, Codec):
        return name
    try:
        return _CODECS[name]
    except KeyError:
        raise StoreError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from None


def available_codecs() -> tuple[str, ...]:
    """Names of the registered codecs."""
    return tuple(sorted(_CODECS))


register_codec(IdentityCodec())
register_codec(ZlibCodec())
