"""Command-line entry point for the experiment registry.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig13      # run one, print its table
    python -m repro.experiments all        # run everything (slow)
    python -m repro.experiments all --fast # skip the training-based runs

Exit status is non-zero when any acceptance band fails.
"""

from __future__ import annotations

import sys

from repro.experiments.registry import available_experiments, run_experiment

_SLOW = {"fig7b", "training_speedup"}


def _run_one(experiment_id: str) -> bool:
    table = run_experiment(experiment_id)
    print(table.render())
    if table.all_bands_hold:
        print("   -> all paper bands hold")
        return True
    failed = ", ".join(row.label for row in table.failures())
    print(f"   -> BAND FAILURES: {failed}")
    return False


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    fast = "--fast" in argv
    argv = [a for a in argv if a != "--fast"]
    if not argv:
        print("available experiments:")
        for experiment_id in available_experiments():
            print(f"  {experiment_id}")
        print("run with: python -m repro.experiments <id> | all [--fast]")
        return 0
    if argv == ["all"]:
        targets = [
            e for e in available_experiments()
            if not (fast and e in _SLOW)
        ]
    else:
        targets = argv
    ok = True
    for experiment_id in targets:
        ok = _run_one(experiment_id) and ok
        print()
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
