"""§3.4: DBN training acceleration (the paper's 5x-9x observation).

The paper trains DBNs with block-circulant weights and observes "a 5x to
9x acceleration in training ... less phenomenal than the model reduction
ratio ... because GPUs are less optimized for FFT operation than
matrix-vector multiplications". The same gap exists on CPUs: BLAS GEMM is
far closer to peak than FFT code, so the *measured* speedup sits well
below the operation-count ratio.

This experiment measures both quantities on the RBM substrate:

- the analytic operation-count ratio of one CD-1 step (dense outer
  products vs frequency-domain cross-correlations);
- the wall-clock ratio of actually running both RBMs through the same
  CD-1 loop on synthetic data.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.complexity import training_step_ops
from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models import RBM
from repro.utils.rng import make_rng


def measure_cd1_seconds(rbm: RBM, data: np.ndarray, batch_size: int,
                        repeats: int) -> float:
    """Median wall-clock seconds of one CD-1 pass over ``data``."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for begin in range(0, len(data), batch_size):
            rbm.cd1_step(data[begin : begin + batch_size])
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def run_training_speedup(n_visible: int = 2048, n_hidden: int = 2048,
                         block_size: int = 256, num_samples: int = 64,
                         batch_size: int = 32, repeats: int = 3,
                         seed: int = 0) -> ExperimentTable:
    """Reproduce the §3.4 DBN training-acceleration observation."""
    table = ExperimentTable(
        "training_speedup", "DBN/RBM training: dense vs block-circulant"
    )
    rng = make_rng(seed)
    data = (rng.random((num_samples, n_visible)) < 0.3).astype(float)

    dense_rbm = RBM(n_visible, n_hidden, block_size=None, seed=1)
    circulant_rbm = RBM(n_visible, n_hidden, block_size=block_size, seed=1)

    dense_time = measure_cd1_seconds(dense_rbm, data, batch_size, repeats)
    circulant_time = measure_cd1_seconds(
        circulant_rbm, data, batch_size, repeats
    )
    wall_clock_ratio = dense_time / circulant_time
    low, high = paper_values.SEC34_DBN_TRAINING_SPEEDUP_BAND
    table.add(
        "wall-clock training speedup", wall_clock_ratio, "x",
        paper=(low + high) / 2.0,
        band=BandCheck(low=2.0),
        note=f"paper band {low:g}-{high:g}x (GPU); library-FFT-vs-BLAS "
             "balance shifts the exact value",
    )
    ops = training_step_ops(n_hidden, n_visible, block_size, batch=batch_size)
    op_ratio = ops["dense"] / ops["block_circulant"]
    table.add(
        "operation-count speedup", op_ratio, "x",
        band=BandCheck(low=low),
        note="asymptotic O(n^2)/O(n log n) ratio exceeds the measured one",
    )
    table.add(
        "measured <= analytic", float(wall_clock_ratio <= op_ratio), "bool",
        band=BandCheck(low=1.0),
        note="the paper's explanation: FFT is further from peak than GEMM",
    )
    table.add(
        "parameter reduction", dense_rbm.num_weight_parameters
        / circulant_rbm.num_weight_parameters, "x",
        band=BandCheck(low=block_size * 0.99),
        note="storage compresses by k even when compute gains less",
    )
    return table
