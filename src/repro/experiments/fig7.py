"""Fig 7: compression ratio and test accuracy of block-circulant DNNs.

Three panels:

- **fig7a** — FC-layer storage saving on MNIST / CIFAR-10 / SVHN / STL-10 /
  ImageNet-shaped models (paper band: 400x-4000+x), plus the §3.4
  whole-model reduction (30-50x) with FC-only compression.
- **fig7b** — test accuracy of dense vs block-circulant networks trained
  identically on synthetic datasets; the claim is a negligible gap.
- **fig7c** — whole-model storage saving with block-circulant FC *and*
  CONV layers, against the pruning baselines (12x LeNet-5, 9x AlexNet).

Storage rows are exact arithmetic on the model shapes; accuracy rows train
real networks (small synthetic data, so benches stay minutes-scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.storage import (
    fc_only_storage_saving,
    whole_model_storage_saving,
)
from repro.datasets import dataset_spec, make_classification_images
from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models import (
    CompressionPlan,
    ModelSpec,
    alexnet_spec,
    cifar10_convnet_spec,
    default_alexnet_fc_plan,
    default_alexnet_full_plan,
    default_lenet5_caffe_plan,
    lenet5_caffe_spec,
    svhn_convnet_spec,
)
from repro.models.descriptors import DenseSpec
from repro.nn import Adam, BlockCirculantDense, Dense, ReLU, Sequential, Trainer


@dataclass(frozen=True)
class _StorageCase:
    """One dataset/model bar of Fig 7a/7c."""

    dataset: str
    model: ModelSpec
    fc_plan: CompressionPlan
    full_plan: CompressionPlan


def _stl10_mlp_spec() -> ModelSpec:
    """STL-10 FC-heavy model (96x96x3 inputs feeding wide FC layers)."""
    return ModelSpec(
        name="stl10_mlp",
        input_shape=(3, 96, 96),
        layers=(
            DenseSpec("fc1", 27648, 4096),
            DenseSpec("fc2", 4096, 512),
            DenseSpec("fc3", 512, 10),
        ),
    )


def _storage_cases() -> list[_StorageCase]:
    """The five Fig 7 dataset/model pairs with their block plans."""
    mnist = lenet5_caffe_spec()
    mnist_plan = default_lenet5_caffe_plan()
    cifar = cifar10_convnet_spec()
    cifar_fc = CompressionPlan(block_sizes={"fc1": 512, "fc2": 128})
    cifar_full = CompressionPlan(
        block_sizes={
            "conv2": 16, "conv3": 16, "conv4": 32, "conv5": 32,
            "conv6": 64, "fc1": 512, "fc2": 128,
        }
    )
    svhn = svhn_convnet_spec()
    svhn_fc = CompressionPlan(block_sizes={"fc1": 512, "fc2": 128})
    svhn_full = CompressionPlan(
        block_sizes={"conv1": 4, "fc1": 512, "fc2": 128}
    )
    stl10 = _stl10_mlp_spec()
    stl10_plan = CompressionPlan(
        block_sizes={"fc1": 2048, "fc2": 512, "fc3": 128}
    )
    imagenet = alexnet_spec()
    return [
        _StorageCase("mnist", mnist, mnist_plan, mnist_plan),
        _StorageCase("cifar10", cifar, cifar_fc, cifar_full),
        _StorageCase("svhn", svhn, svhn_fc, svhn_full),
        _StorageCase("stl10", stl10, stl10_plan, stl10_plan),
        _StorageCase(
            "imagenet(alexnet)", imagenet,
            default_alexnet_fc_plan(), default_alexnet_full_plan(),
        ),
    ]


def run_fig7a() -> ExperimentTable:
    """FC-layer storage savings (Fig 7a) + whole-model reduction (§3.4)."""
    table = ExperimentTable(
        "fig7a", "FC-layer storage saving, block-circulant + 16-bit quant"
    )
    low, high = paper_values.FIG7A_FC_SAVING_BAND
    for case in _storage_cases():
        saving = fc_only_storage_saving(case.model, case.fc_plan)
        table.add(
            f"{case.dataset} FC saving", saving, "x",
            band=BandCheck(low=100.0),  # per-model; the 400-4000 band is
            note=f"paper band {low:g}-{high:g}+ across models",
        )
    # The aggregate claim: at least one model in the 400x+ regime and the
    # spread reaching past 1000x.
    savings = [
        fc_only_storage_saving(c.model, c.fc_plan) for c in _storage_cases()
    ]
    table.add(
        "max FC saving", max(savings), "x",
        band=BandCheck(low=low), note="Fig 7a upper bars reach 4000x",
    )
    # §3.4 whole-model claim with FC-only compression (AlexNet).
    whole = whole_model_storage_saving(
        alexnet_spec(), default_alexnet_fc_plan()
    )
    table.add(
        "alexnet whole-model (FC-only plan)", whole, "x",
        paper=40.0,
        band=BandCheck(*paper_values.SEC34_WHOLE_MODEL_BAND),
        note="paper: 30-50x",
    )
    return table


def run_fig7c() -> ExperimentTable:
    """Whole-model storage saving with FC + CONV compression (Fig 7c)."""
    table = ExperimentTable(
        "fig7c", "whole-model storage saving, FC + CONV block-circulant"
    )
    for case in _storage_cases():
        if case.dataset == "stl10":
            continue  # Fig 7c covers MNIST, SVHN, CIFAR-10, AlexNet
        saving = whole_model_storage_saving(case.model, case.full_plan)
        table.add(f"{case.dataset} whole-model saving", saving, "x",
                  band=BandCheck(low=20.0))
    lenet = whole_model_storage_saving(
        lenet5_caffe_spec(), default_lenet5_caffe_plan()
    )
    table.add(
        "lenet5 vs pruning", lenet / paper_values.PRUNING_LENET5_REDUCTION,
        "x", band=BandCheck(low=1.0),
        note="CirCNN must beat Han et al.'s 12x on LeNet-5",
    )
    alexnet = whole_model_storage_saving(
        alexnet_spec(), default_alexnet_full_plan()
    )
    table.add(
        "alexnet vs pruning", alexnet / paper_values.PRUNING_ALEXNET_REDUCTION,
        "x", band=BandCheck(low=1.0),
        note="CirCNN must beat Han et al.'s 9x on AlexNet",
    )
    return table


def _train_pair(dataset, widths: tuple[int, ...], block_size: int,
                epochs: int, seed: int) -> tuple[float, float]:
    """Train a dense and a block-circulant MLP identically; return both
    test accuracies. Flattened images keep Fig 7b's runtime tractable."""
    flat = dataset.flattened()
    in_features = flat.x_train.shape[1]
    accuracies = []
    for variant_block in (1, block_size):
        layers: list = []
        previous = in_features
        for index, width in enumerate(widths):
            if variant_block > 1:
                layers.append(
                    BlockCirculantDense(
                        previous, width, variant_block, seed=seed + index
                    )
                )
            else:
                layers.append(Dense(previous, width, seed=seed + index))
            layers.append(ReLU())
            previous = width
        layers.append(Dense(previous, dataset.spec.num_classes,
                            seed=seed + len(widths)))
        net = Sequential(*layers)
        trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=seed)
        trainer.fit(flat.x_train, flat.y_train, epochs=epochs, batch_size=64)
        accuracies.append(trainer.evaluate(flat.x_test, flat.y_test))
    return accuracies[0], accuracies[1]


def run_fig7b(epochs: int = 12, train_size: int = 768,
              test_size: int = 384, noise: float = 2.0,
              seed: int = 0) -> ExperimentTable:
    """Dense vs block-circulant test accuracy on synthetic datasets.

    ``noise = 2.0`` makes the task hard enough that capacity loss *would*
    show (a block size of 64 here costs tens of accuracy points); with the
    paper-style tuned block size of 8 the gap stays within the 1-2% claim.
    """
    table = ExperimentTable(
        "fig7b", "test accuracy: dense baseline vs block-circulant FC"
    )
    datasets = {
        name: make_classification_images(
            dataset_spec(name), train_size, test_size, noise=noise,
            seed=seed + offset,
        )
        for offset, name in enumerate(("mnist", "cifar10", "svhn"))
    }
    max_drop = paper_values.FIG7B_MAX_ACCURACY_DROP
    for name, dataset in datasets.items():
        dense_acc, circulant_acc = _train_pair(
            dataset, widths=(256, 128), block_size=8,
            epochs=epochs, seed=seed + 10,
        )
        table.add(f"{name} dense accuracy", dense_acc, "frac")
        table.add(f"{name} block-circulant accuracy", circulant_acc, "frac")
        table.add(
            f"{name} accuracy drop", dense_acc - circulant_acc, "frac",
            paper=0.0,
            # "negligible ... sometimes the compressed models even
            # outperform" — small synthetic runs carry a few percent of
            # seed noise on top of the paper's 2% budget.
            band=BandCheck(high=max_drop + 0.04),
            note="paper: negligible loss (<2%)",
        )
    return table
