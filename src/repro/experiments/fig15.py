"""Fig 15: ASIC synthesis comparison (paper §5.2).

Our side is the AlexNet workload on the 45 nm ASIC platform model, plus
the near-threshold / 4-bit design point; the comparison set is the five
published ASIC systems and the Jetson TX1 GPU. Bands asserted:

- super-threshold CirCNN beats the best reference energy efficiency by
  >= 6x and holds the highest throughput among the ASIC points;
- the near-threshold 4-bit point adds ~17x, for ~102x total;
- vs Jetson TX1: ~570x (base) and ~9,690x (near-threshold).
"""

from __future__ import annotations

from repro.arch.mapping import InferenceReport, map_model
from repro.arch.platforms import (
    ASIC_REFERENCES,
    GPU_JETSON_TX1,
    asic_45nm,
    asic_45nm_near_threshold,
    best_reference_efficiency,
)
from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models import alexnet_spec, default_alexnet_full_plan


def circnn_asic_reports() -> tuple[InferenceReport, InferenceReport]:
    """(super-threshold, near-threshold-4-bit) AlexNet ASIC reports."""
    spec = alexnet_spec()
    plan = default_alexnet_full_plan()
    return (
        map_model(spec, plan, asic_45nm()),
        map_model(spec, plan, asic_45nm_near_threshold()),
    )


def run_fig15() -> ExperimentTable:
    """Reproduce the Fig 15 comparison."""
    table = ExperimentTable("fig15", "ASIC synthesis: GOPS and GOPS/W")
    base, near_threshold = circnn_asic_reports()
    best = best_reference_efficiency()

    table.add("CirCNN ASIC performance", base.equivalent_gops, "GOPS")
    table.add("CirCNN ASIC efficiency", base.gops_per_watt, "GOPS/W")
    table.add(
        "throughput vs best ASIC reference",
        base.equivalent_gops / max(r.gops for r in ASIC_REFERENCES), "x",
        band=BandCheck(low=1.0),
        note="paper: 'highest throughput' among ASIC points",
    )
    base_ratio = base.gops_per_watt / best.gops_per_watt
    table.add(
        f"EE improvement vs best ({best.name})", base_ratio, "x",
        paper=paper_values.FIG15_BASE_IMPROVEMENT_MIN,
        band=BandCheck(low=paper_values.FIG15_BASE_IMPROVEMENT_MIN,
                       high=12.0),
        note="paper: 'more than 6 times'",
    )
    nt_factor = near_threshold.gops_per_watt / base.gops_per_watt
    table.add(
        "near-threshold 4-bit factor", nt_factor, "x",
        paper=paper_values.FIG15_NEAR_THRESHOLD_FACTOR,
        band=BandCheck(low=12.0, high=25.0),
        note="paper: 'another 17x'",
    )
    total = near_threshold.gops_per_watt / best.gops_per_watt
    table.add(
        "total improvement vs best", total, "x",
        paper=paper_values.FIG15_TOTAL_IMPROVEMENT,
        band=BandCheck(low=70.0, high=160.0),
        note="paper: '102x'",
    )
    tx1_base = base.gops_per_watt / GPU_JETSON_TX1.gops_per_watt
    table.add(
        "EE vs Jetson TX1 (base)", tx1_base, "x",
        paper=paper_values.FIG15_VS_TX1_BASE,
        band=BandCheck(low=400.0, high=800.0),
        note="paper: '570x'",
    )
    tx1_nt = near_threshold.gops_per_watt / GPU_JETSON_TX1.gops_per_watt
    table.add(
        "EE vs Jetson TX1 (near-threshold)", tx1_nt, "x",
        paper=paper_values.FIG15_VS_TX1_NT,
        band=BandCheck(low=7000.0, high=15000.0),
        note="paper: '9,690x'",
    )
    # §5.2's memory observation: "memory in fact consumes slightly less
    # power consumption compared with computing blocks".
    memory_energy = sum(l.memory_energy_j for l in base.layers)
    compute_energy = sum(l.compute_energy_j for l in base.layers)
    table.add(
        "memory/compute energy ratio", memory_energy / compute_energy, "x",
        band=BandCheck(high=1.0),
        note="paper: weight storage no longer the bottleneck",
    )
    return table
