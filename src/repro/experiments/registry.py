"""Experiment registry: id -> harness callable.

``run_experiment("fig13")`` regenerates one paper artefact and returns its
:class:`~repro.experiments.tables.ExperimentTable`. Benches and the
``examples/`` scripts go through this registry so the id -> code mapping
in DESIGN.md stays authoritative.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments.fig7 import run_fig7a, run_fig7b, run_fig7c
from repro.experiments.fig13 import run_fig13
from repro.experiments.fig14 import run_fig14
from repro.experiments.fig15 import run_fig15
from repro.experiments.sec43 import run_sec43
from repro.experiments.sec53 import run_sec53
from repro.experiments.tables import ExperimentTable
from repro.experiments.training_speedup import run_training_speedup

_REGISTRY: dict[str, Callable[[], ExperimentTable]] = {
    "fig7a": run_fig7a,
    "fig7b": run_fig7b,
    "fig7c": run_fig7c,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "sec43": run_sec43,
    "sec53": run_sec53,
    "training_speedup": run_training_speedup,
}


def available_experiments() -> tuple[str, ...]:
    """Ids of every registered experiment."""
    return tuple(sorted(_REGISTRY))


def get_experiment(experiment_id: str) -> Callable[[], ExperimentTable]:
    """The harness callable for an experiment id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {available_experiments()}"
        ) from None


def run_experiment(experiment_id: str) -> ExperimentTable:
    """Run one experiment and return its result table."""
    return get_experiment(experiment_id)()
