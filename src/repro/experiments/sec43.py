"""§4.3 worked example: (p, d) design-space effects and Algorithm 3.

The paper's example assumes block size 128 on the Cyclone V FPGA and
reports:

- raising p from 16 to 32 at d = 1 costs < 10% more power but gains
  53.8% performance (the gain is sub-2x because memory bandwidth starts
  to bind);
- raising d from 1 to 2 costs +7.8% power for +62.2% performance (deeper
  pipelines also cut memory round trips);
- d above 3 is ruled out by control complexity, so Algorithm 3 searches
  p first.

This module models exactly that scenario: a stream of size-128 real FFTs
on the basic computing block, with the layer time being the slower of the
butterfly pipeline and the memory interface, and power split into a
platform floor, a per-butterfly-unit share, and a dynamic part that rises
with utilisation and falls with fewer memory trips. Constants are the
one-time calibration described in DESIGN.md §6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.arch.design_opt import ternary_search_int


#: Memory interface of the example (words per cycle); §4.3's bandwidth
#: bind point for the 128-point workload.
_MEM_WORDS_PER_CYCLE = 197.0
#: Pipeline-bubble overhead per extra depth level (the paper's "control
#: difficulty and pipelining bubbles").
_BUBBLE_PER_LEVEL = 0.08
#: Power split at the (p=16, d=1) reference: platform floor, per-unit
#: static share, and dynamic power, calibrated to the paper's example.
_FLOOR_W = 0.28
_PER_UNIT_W = 0.0005
_DYNAMIC_REF_W = 0.040
#: Fraction of dynamic energy spent on memory trips (the part d reduces).
_MEMORY_ENERGY_FRACTION = 0.60


@dataclass(frozen=True)
class DesignPointMetrics:
    """Performance and power of one (p, d) point of the §4.3 example."""

    parallelism: int
    depth: int
    relative_performance: float
    power_w: float


def _cycles_per_fft(parallelism: int, depth: int,
                    block_size: int = paper_values.SEC43_BLOCK_SIZE) -> float:
    """Streamed cycles per size-k real FFT on the (p, d) block."""
    levels = int(math.log2(block_size))
    per_level = block_size // 4  # real-input butterflies per level
    groups = -(-levels // depth)
    fft = groups * (-(-per_level // parallelism))
    # Each level group round-trips k words each way through memory.
    memory = groups * block_size * 2.0 / _MEM_WORDS_PER_CYCLE
    bubbles = 1.0 + _BUBBLE_PER_LEVEL * (depth - 1)
    return max(float(fft), memory) * bubbles


def _energy_factor(depth: int) -> float:
    """Per-image dynamic energy relative to d = 1 (fewer memory trips)."""
    levels = int(math.log2(paper_values.SEC43_BLOCK_SIZE))
    trips = -(-levels // depth) / float(levels)
    return (1.0 - _MEMORY_ENERGY_FRACTION) + _MEMORY_ENERGY_FRACTION * trips


def evaluate_design(parallelism: int, depth: int) -> DesignPointMetrics:
    """Perf/power of a (p, d) point, normalised to the (16, 1) reference."""
    reference = _cycles_per_fft(16, 1)
    cycles = _cycles_per_fft(parallelism, depth)
    performance = reference / cycles
    dynamic = _DYNAMIC_REF_W * _energy_factor(depth) * performance
    power = _FLOOR_W + _PER_UNIT_W * parallelism * depth + dynamic
    return DesignPointMetrics(parallelism, depth, performance, power)


def design_objective(parallelism: int, depth: int) -> float:
    """The metric M(Perf, Power) = Perf / Power used by Algorithm 3."""
    point = evaluate_design(parallelism, depth)
    return point.relative_performance / point.power_w


def run_algorithm3(p_max: int = 64, d_max: int = 3) -> DesignPointMetrics:
    """Algorithm 3 on the §4.3 example: ternary-search p (d=1), then d."""
    best_p = ternary_search_int(lambda p: design_objective(p, 1), 1, p_max)
    best_d = ternary_search_int(lambda d: design_objective(best_p, d), 1, d_max)
    return evaluate_design(best_p, best_d)


def run_sec43() -> ExperimentTable:
    """Reproduce the §4.3 worked example."""
    table = ExperimentTable(
        "sec43", "design optimisation example: block 128 on Cyclone V"
    )
    p16 = evaluate_design(16, 1)
    p32 = evaluate_design(32, 1)
    d2 = evaluate_design(32, 2)

    perf_gain_p = p32.relative_performance / p16.relative_performance - 1.0
    power_gain_p = p32.power_w / p16.power_w - 1.0
    table.add(
        "perf gain, p 16->32 (d=1)", perf_gain_p, "frac",
        paper=paper_values.SEC43_P_PERF_GAIN,
        band=BandCheck(0.40, 0.70), note="paper: +53.8%",
    )
    table.add(
        "power gain, p 16->32 (d=1)", power_gain_p, "frac",
        paper=paper_values.SEC43_P_POWER_LIMIT,
        band=BandCheck(high=paper_values.SEC43_P_POWER_LIMIT),
        note="paper: < 10%",
    )
    perf_gain_d = d2.relative_performance / p32.relative_performance - 1.0
    power_gain_d = d2.power_w / p32.power_w - 1.0
    table.add(
        "perf gain, d 1->2 (p=32)", perf_gain_d, "frac",
        paper=paper_values.SEC43_D_PERF_GAIN,
        band=BandCheck(0.45, 0.80), note="paper: +62.2%",
    )
    table.add(
        "power gain, d 1->2 (p=32)", power_gain_d, "frac",
        paper=paper_values.SEC43_D_POWER_GAIN,
        band=BandCheck(high=0.12), note="paper: +7.8%",
    )
    optimum = run_algorithm3()
    table.add("Algorithm 3 chosen p", optimum.parallelism, "",
              band=BandCheck(low=16.0),
              note="bandwidth-bound region favours wide p")
    table.add("Algorithm 3 chosen d", optimum.depth, "",
              band=BandCheck(low=1.0, high=3.0),
              note="control complexity caps d at 3")
    return table
