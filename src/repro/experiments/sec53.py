"""§5.3: block-circulant inference on embedded ARM processors.

The paper's sample results on a Cortex-A9 smartphone core:

- LeNet-5 on MNIST at 0.9 ms/image (96% accuracy, ~1 W) — "slightly
  faster" than TrueNorth's high-accuracy 1,000 images/s and far more
  energy-efficient than a Tesla C2075 (2,333 images/s at 202.5 W);
- the AlexNet FC layer at 667 layers/s, *beating* the GPU's 573 layers/s
  because "the benefits of computational complexity reduction become more
  significant when the model size becomes larger".

Our side converts the block-circulant work items into scalar operations
and runs them through the ARM roofline model (with its large-FFT cache
penalty); GPU/TrueNorth sides are the paper's reported measurements.
"""

from __future__ import annotations

from repro.analysis.complexity import (
    block_circulant_fc_work,
    dense_fc_ops,
    model_work,
)
from repro.arch.platforms import GPU_TESLA_C2075, arm_cortex_a9
from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models import default_lenet5_plan, lenet5_spec
from repro.models.descriptors import DenseSpec


def arm_lenet_latency_s() -> float:
    """LeNet-5 (block-circulant plan) per-image latency on the A9 model."""
    works = model_work(lenet5_spec(), default_lenet5_plan())
    return arm_cortex_a9().model_runtime_s(works)


def arm_alexnet_fc_rate() -> float:
    """AlexNet fc6 (9216 -> 4096, k = 1024) layers/s on the A9 model."""
    work = block_circulant_fc_work(
        DenseSpec("fc6", 9216, 4096), 1024, activation=False
    )
    return 1.0 / arm_cortex_a9().layer_runtime_s(work)


def run_sec53() -> ExperimentTable:
    """Reproduce the §5.3 embedded-processor results."""
    table = ExperimentTable("sec53", "embedded ARM Cortex-A9 inference")
    arm = arm_cortex_a9()

    latency = arm_lenet_latency_s()
    table.add(
        "LeNet-5 latency", latency * 1e3, "ms/image",
        paper=paper_values.SEC53_LENET_MS_PER_IMAGE,
        band=BandCheck(0.45, 1.8), note="paper: 0.9 ms/image",
    )
    fps = 1.0 / latency
    table.add(
        "LeNet-5 vs TrueNorth high-accuracy",
        fps / paper_values.SEC53_TRUENORTH_FPS, "x",
        band=BandCheck(low=0.9, high=2.5),
        note="paper: 'slightly faster' than 1,000 images/s",
    )
    # Energy per image vs the Tesla C2075 measurement.
    arm_energy = latency * arm.power_w
    gpu_energy = paper_values.SEC53_GPU_POWER_W / paper_values.SEC53_GPU_FPS
    table.add(
        "LeNet-5 energy advantage vs C2075 GPU",
        gpu_energy / arm_energy, "x",
        band=BandCheck(low=10.0),
        note="paper: 'significantly higher' efficiency (1 W vs 202.5 W)",
    )
    fc_rate = arm_alexnet_fc_rate()
    table.add(
        "AlexNet-FC throughput (ARM)", fc_rate, "layers/s",
        paper=paper_values.SEC53_ARM_FC_LAYERS_PER_S,
        band=BandCheck(400.0, 1400.0), note="paper: 667 layers/s",
    )
    table.add(
        "AlexNet-FC ARM vs GPU",
        fc_rate / paper_values.SEC53_GPU_FC_LAYERS_PER_S, "x",
        paper=paper_values.SEC53_ARM_FC_LAYERS_PER_S
        / paper_values.SEC53_GPU_FC_LAYERS_PER_S,
        band=BandCheck(low=1.0),
        note="paper: 667 vs 573 layers/s — ARM wins on the large layer",
    )
    # Why the ARM wins: the dense FC layer would be hopeless on the A9.
    dense_rate = 1.0 / arm.runtime_s(dense_fc_ops(4096, 9216))
    table.add(
        "dense AlexNet-FC on ARM (for contrast)", dense_rate, "layers/s",
        band=BandCheck(high=paper_values.SEC53_GPU_FC_LAYERS_PER_S),
        note="uncompressed layer is far slower than the GPU",
    )
    table.add(
        "GPU reference efficiency", GPU_TESLA_C2075.gops_per_watt, "GOPS/W",
        note="published/measured reference, not simulated",
    )
    return table
