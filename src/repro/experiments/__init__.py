"""Experiment harnesses: one module per paper figure / in-text result.

Each experiment function returns an :class:`~repro.experiments.tables.ExperimentTable`
whose rows pair the paper's reported value (where one exists) with the
value measured from this reproduction, plus a band check. The registry
maps experiment ids (``fig7a`` ... ``sec53``) to these functions;
``benchmarks/`` contains one pytest-benchmark target per id.
"""

from repro.experiments.tables import BandCheck, ExperimentRow, ExperimentTable
from repro.experiments.registry import available_experiments, get_experiment, run_experiment
from repro.experiments import paper_values

__all__ = [
    "BandCheck",
    "ExperimentRow",
    "ExperimentTable",
    "available_experiments",
    "get_experiment",
    "run_experiment",
    "paper_values",
]
