"""Every quantitative claim of the paper's evaluation, in one place.

These constants are the reproduction targets. Values come from the paper's
text and figures (Figs 7, 13, 14, 15; §3.4, §4.3, §5.1–5.3). Where a
figure reports bars without printed numbers, the value is the printed data
label in the figure (Fig 14) or the claim band from the prose.
"""

from __future__ import annotations

# --- §3.4 / Fig 7: compression ---------------------------------------------

#: Fig 7a: FC-layer storage saving band across datasets.
FIG7A_FC_SAVING_BAND = (400.0, 4000.0)

#: §3.4: whole-DCNN model-size reduction with FC-only block-circulant
#: weights plus 16-bit quantisation (softmax excluded).
SEC34_WHOLE_MODEL_BAND = (30.0, 50.0)

#: §3.4: prior-art parameter reductions the paper compares against.
PRUNING_LENET5_REDUCTION = 12.0   # Han et al. on LeNet-5
PRUNING_ALEXNET_REDUCTION = 9.0   # Han et al. on AlexNet

#: Fig 7b: accuracy loss of block-circulant FC layers is "negligible";
#: Fig 7c constrains degradation to 1-2% with tuned block sizes.
FIG7B_MAX_ACCURACY_DROP = 0.02
FIG7C_MAX_ACCURACY_DROP = 0.02

#: §3.4: DBN training acceleration band.
SEC34_DBN_TRAINING_SPEEDUP_BAND = (5.0, 9.0)

# --- §4.3: design-space example ---------------------------------------------

#: Block size of the §4.3 worked example.
SEC43_BLOCK_SIZE = 128
#: p: 16 -> 32 at d = 1: performance +53.8%, power increase < 10%.
SEC43_P_PERF_GAIN = 0.538
SEC43_P_POWER_LIMIT = 0.10
#: d: 1 -> 2: performance +62.2%, power +7.8%.
SEC43_D_PERF_GAIN = 0.622
SEC43_D_POWER_GAIN = 0.078

# --- §5.1 / Fig 13: FPGA ----------------------------------------------------

#: Energy-efficiency improvement vs compressed-model FPGA accelerators
#: ([FPGA17-Han ESE], [FPGA17-Zhao]).
FIG13_VS_COMPRESSED_BAND = (11.0, 16.0)
#: Energy-efficiency improvement vs uncompressed FPGA accelerators
#: ([FPGA16], [ICCAD16]).
FIG13_VS_UNCOMPRESSED_BAND = (60.0, 70.0)
#: Attribution (§5.1/§5.4): algorithmic complexity reduction 10-20x,
#: hardware/weight-storage effects 2-5x.
FIG13_ALGORITHMIC_FACTOR_BAND = (10.0, 20.0)
FIG13_HARDWARE_FACTOR_BAND = (2.0, 5.0)

# --- Fig 14: TrueNorth comparison -------------------------------------------

#: (throughput fps, energy efficiency fps/W) as printed on Fig 14's bars.
TRUENORTH_RESULTS = {
    "mnist": {"fps": 1000.0, "fps_per_watt": 16667.0},
    "cifar10": {"fps": 1249.0, "fps_per_watt": 6108.6},
    "svhn": {"fps": 2526.0, "fps_per_watt": 9889.9},
}
CIRCNN_FPGA_RESULTS = {
    "mnist": {"fps": 13698.0, "fps_per_watt": 24905.0},
    "cifar10": {"fps": 726.0, "fps_per_watt": 1320.0},
    "svhn": {"fps": 44640.0, "fps_per_watt": 8116.0},
}

# --- §5.2 / Fig 15: ASIC ----------------------------------------------------

#: Super-threshold synthesis beats the best state-of-the-art EE by >= 6x.
FIG15_BASE_IMPROVEMENT_MIN = 6.0
#: Near-threshold 0.55 V + 4-bit gives another ~17x ...
FIG15_NEAR_THRESHOLD_FACTOR = 17.0
#: ... for 102x total vs the best state-of-the-art.
FIG15_TOTAL_IMPROVEMENT = 102.0
#: vs NVIDIA Jetson TX1: 570x (base) and 9,690x (near-threshold 4-bit).
FIG15_VS_TX1_BASE = 570.0
FIG15_VS_TX1_NT = 9690.0

# --- §5.3: embedded ARM -----------------------------------------------------

#: LeNet-5 on MNIST: 0.9 ms/image at 96% accuracy, ~1 W.
SEC53_LENET_MS_PER_IMAGE = 0.9
SEC53_LENET_ACCURACY = 0.96
#: TrueNorth high-accuracy mode: 1,000 images/s.
SEC53_TRUENORTH_FPS = 1000.0
#: Tesla C2075: 2,333 images/s at 202.5 W.
SEC53_GPU_FPS = 2333.0
SEC53_GPU_POWER_W = 202.5
#: AlexNet FC layer: CirCNN-on-ARM 667 layers/s vs GPU 573 layers/s.
SEC53_ARM_FC_LAYERS_PER_S = 667.0
SEC53_GPU_FC_LAYERS_PER_S = 573.0

# --- headline ---------------------------------------------------------------

#: Abstract / §6: "6 - 102x energy efficiency improvements compared with
#: the best state-of-the-art results."
HEADLINE_IMPROVEMENT_BAND = (6.0, 102.0)
