"""Fig 13: FPGA performance / energy efficiency vs state-of-the-art.

Our side is the AlexNet workload (FC + CONV block plans) mapped onto the
Cyclone V simulator; the comparison points are the published numbers of
the four reference systems. The paper's claims, asserted as bands:

- 11-16x energy-efficiency improvement vs the compressed-model designs
  ([FPGA17-Han ESE], [FPGA17-Zhao]);
- 60-70x vs the uncompressed designs ([FPGA16], [ICCAD16]);
- the improvement decomposes into ~10-20x algorithmic and ~2-5x
  hardware/weight-storage factors (§5.1/§5.4);
- CirCNN does *not* have the highest raw throughput (ESE does, on a large
  FPGA with off-chip DRAM) — an honesty check the paper itself makes.
"""

from __future__ import annotations

from repro.analysis.complexity import model_work
from repro.arch.mapping import InferenceReport, map_model
from repro.arch.platforms import FPGA_REFERENCES, fpga_cyclone_v
from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models import alexnet_spec, default_alexnet_full_plan


def circnn_fpga_report() -> InferenceReport:
    """AlexNet under the full (FC+CONV) plan on the Cyclone V platform."""
    return map_model(
        alexnet_spec(), default_alexnet_full_plan(), fpga_cyclone_v()
    )


def run_fig13() -> ExperimentTable:
    """Reproduce the Fig 13 comparison."""
    table = ExperimentTable(
        "fig13", "FPGA comparison: equivalent GOPS and GOPS/W"
    )
    report = circnn_fpga_report()
    table.add("CirCNN FPGA performance", report.equivalent_gops, "GOPS",
              band=BandCheck(low=100.0, high=5000.0),
              note="Fig 13 places ours in the 10^2-10^3 GOPS decade")
    table.add("CirCNN FPGA efficiency", report.gops_per_watt, "GOPS/W",
              band=BandCheck(low=500.0, high=2000.0),
              note="Fig 13 places ours near 10^3 GOPS/W")
    table.add("CirCNN FPGA power", report.power_w, "W",
              band=BandCheck(high=3.0), note="low-power Cyclone V budget")

    compressed_band = BandCheck(8.0, 26.0)    # paper claim 11-16x
    uncompressed_band = BandCheck(45.0, 95.0)  # paper claim 60-70x
    for ref in FPGA_REFERENCES:
        ratio = report.gops_per_watt / ref.gops_per_watt
        compressed = ref.name in ("FPGA17_Han_ESE", "FPGA17_Zhao")
        band = compressed_band if compressed else uncompressed_band
        claim = (
            paper_values.FIG13_VS_COMPRESSED_BAND
            if compressed
            else paper_values.FIG13_VS_UNCOMPRESSED_BAND
        )
        table.add(
            f"EE improvement vs {ref.name}", ratio, "x",
            paper=sum(claim) / 2.0, band=band,
            note=f"paper claim {claim[0]:g}-{claim[1]:g}x",
        )
    # Honesty check from the paper: ESE retains the raw-throughput lead.
    ese = next(r for r in FPGA_REFERENCES if r.name == "FPGA17_Han_ESE")
    table.add(
        "throughput vs ESE", report.equivalent_gops / ese.gops, "x",
        band=BandCheck(high=1.0),
        note="paper: CirCNN 'does not yield the highest throughput'",
    )
    # Decomposition: the algorithmic factor is the dense/compressed
    # operation ratio of the mapped workload (the 10-20x source).
    works = model_work(alexnet_spec(), default_alexnet_full_plan())
    fft_layers = [w for w in works if w.fft_size > 1]
    dense_ops = sum(2 * w.dense_macs for w in fft_layers)
    compressed_ops = sum(w.total_real_ops for w in fft_layers)
    table.add(
        "algorithmic factor (compressed layers)",
        dense_ops / compressed_ops, "x",
        band=BandCheck(*paper_values.FIG13_ALGORITHMIC_FACTOR_BAND),
        note="paper: 10-20x from complexity reduction",
    )
    return table
