"""Fig 14: end-to-end FPGA throughput / efficiency vs IBM TrueNorth.

The paper runs MNIST, CIFAR-10 and SVHN networks end to end on the Cyclone
V implementation and compares against published TrueNorth results. The
claims reproduced as checks:

- CirCNN's throughput beats TrueNorth on MNIST and SVHN;
- CirCNN *loses* on CIFAR-10 because that model "uses small-scale FFTs,
  which limits the degree of improvements" — our simulator shows the same
  mechanism (the (p, d) butterfly array is under-utilised by size-4/8
  transforms);
- energy efficiency is on the same order of magnitude.

Absolute throughputs of the tiny MNIST/SVHN models are higher in our
simulator than on the paper's board, which includes host-side frame I/O we
do not model; the orderings and the CIFAR-10 mechanism are the
reproduction targets (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.arch.mapping import InferenceReport, map_model
from repro.arch.platforms import fpga_cyclone_v
from repro.experiments import paper_values
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models import (
    cifar10_convnet_spec,
    default_fig14_plans,
    mnist_mlp_spec,
    svhn_convnet_spec,
)

#: dataset name -> (model spec builder, plan key).
_WORKLOADS = {
    "mnist": mnist_mlp_spec,
    "cifar10": cifar10_convnet_spec,
    "svhn": svhn_convnet_spec,
}


def circnn_fig14_reports() -> dict[str, InferenceReport]:
    """Map the three Fig 14 workloads onto the Cyclone V platform."""
    platform = fpga_cyclone_v()
    plans = default_fig14_plans()
    reports = {}
    for dataset, builder in _WORKLOADS.items():
        spec = builder()
        reports[dataset] = map_model(spec, plans[spec.name], platform)
    return reports


def run_fig14() -> ExperimentTable:
    """Reproduce the Fig 14 comparison."""
    table = ExperimentTable(
        "fig14", "end-to-end throughput and fps/W vs IBM TrueNorth"
    )
    reports = circnn_fig14_reports()
    for dataset, report in reports.items():
        truenorth = paper_values.TRUENORTH_RESULTS[dataset]
        ours_paper = paper_values.CIRCNN_FPGA_RESULTS[dataset]
        ratio = report.throughput_fps / truenorth["fps"]
        if dataset == "cifar10":
            band = BandCheck(high=1.0)
            note = "paper: TrueNorth wins on CIFAR-10 (small FFTs)"
        else:
            band = BandCheck(low=1.0)
            note = "paper: CirCNN wins"
        table.add(f"{dataset} throughput", report.throughput_fps, "fps",
                  paper=ours_paper["fps"])
        table.add(f"{dataset} throughput vs TrueNorth", ratio, "x",
                  paper=ours_paper["fps"] / truenorth["fps"],
                  band=band, note=note)
        table.add(f"{dataset} efficiency", report.fps_per_watt, "fps/W",
                  paper=ours_paper["fps_per_watt"])
    # Mechanism check: the CIFAR-10 model's FFT hardware utilisation is
    # far below the MNIST model's (the paper's stated cause).
    mnist_util = _fft_lane_utilization("mnist")
    cifar_util = _fft_lane_utilization("cifar10")
    table.add("mnist FFT lane utilisation", mnist_util, "frac")
    table.add("cifar10 FFT lane utilisation", cifar_util, "frac")
    table.add(
        "cifar10/mnist FFT utilisation ratio",
        cifar_util / mnist_util if mnist_util else 0.0, "x",
        band=BandCheck(high=0.5),
        note="small-scale FFTs under-utilise the (p,d) array",
    )
    return table


def _fft_lane_utilization(dataset: str) -> float:
    """Achieved butterflies per lane-cycle across a workload's FFT layers.

    The basic computing block offers ``p * d`` butterfly slots per cycle;
    a size-k real transform only fills ``k/4`` lanes per level, so small
    blocks leave most of the array idle — the quantity this returns.
    """
    from repro.analysis.complexity import model_work
    from repro.arch.computing_block import BasicComputingBlock

    platform = fpga_cyclone_v()
    plans = default_fig14_plans()
    spec = _WORKLOADS[dataset]()
    block = BasicComputingBlock(
        platform.config, platform.scaled_energy(), platform.memory
    )
    butterflies = 0
    lane_cycles = 0
    for work in model_work(spec, plans[spec.name]):
        if work.fft_size <= 1 or work.num_fft == 0:
            continue
        job = block.run_ffts(work.fft_size, work.num_fft)
        butterflies += job.butterflies
        lane_cycles += job.cycles * block.peak_butterflies_per_cycle()
    if lane_cycles == 0:
        return 0.0
    return butterflies / lane_cycles
