"""Result tables: paper-reported vs measured, with band checks.

Every experiment harness returns an :class:`ExperimentTable`. A row pairs
one measured quantity with the paper's reported value (when one exists)
and an optional :class:`BandCheck` — the acceptance band derived from the
paper's claims. Benches print these tables and assert the bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BandCheck:
    """An acceptance band ``[low, high]`` (either side may be open)."""

    low: float | None = None
    high: float | None = None

    def holds(self, value: float) -> bool:
        """Whether ``value`` lies inside the band."""
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def __str__(self) -> str:
        low = "-inf" if self.low is None else f"{self.low:g}"
        high = "+inf" if self.high is None else f"{self.high:g}"
        return f"[{low}, {high}]"


@dataclass(frozen=True)
class ExperimentRow:
    """One measured quantity of an experiment."""

    label: str
    measured: float
    unit: str = ""
    paper: float | None = None
    band: BandCheck | None = None
    note: str = ""

    @property
    def in_band(self) -> bool | None:
        """Band verdict (None when the row has no acceptance band)."""
        if self.band is None:
            return None
        return self.band.holds(self.measured)


@dataclass
class ExperimentTable:
    """A named collection of rows with rendering and band aggregation."""

    experiment_id: str
    title: str
    rows: list[ExperimentRow] = field(default_factory=list)

    def add(self, label: str, measured: float, unit: str = "",
            paper: float | None = None, band: BandCheck | None = None,
            note: str = "") -> ExperimentRow:
        """Append a row and return it."""
        row = ExperimentRow(label, float(measured), unit, paper, band, note)
        self.rows.append(row)
        return row

    def row(self, label: str) -> ExperimentRow:
        """Look up a row by label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"{self.experiment_id} has no row {label!r}")

    @property
    def all_bands_hold(self) -> bool:
        """True when every banded row is inside its band."""
        return all(row.in_band is not False for row in self.rows)

    def failures(self) -> list[ExperimentRow]:
        """Rows whose band check fails."""
        return [row for row in self.rows if row.in_band is False]

    def render(self) -> str:
        """Fixed-width text rendering (what the benches print)."""
        header = f"== {self.experiment_id}: {self.title} =="
        lines = [header]
        label_width = max((len(r.label) for r in self.rows), default=10)
        for row in self.rows:
            paper = "      --" if row.paper is None else f"{row.paper:8.4g}"
            verdict = ""
            if row.band is not None:
                verdict = "  OK" if row.in_band else f"  OUT {row.band}"
            note = f"   ({row.note})" if row.note else ""
            lines.append(
                f"  {row.label:<{label_width}}  measured {row.measured:10.4g}"
                f" {row.unit:<8} paper {paper}{verdict}{note}"
            )
        return "\n".join(lines)
