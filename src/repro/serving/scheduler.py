"""Dynamic micro-batching: turning concurrent requests into one GEMM.

CirCNN's pipelined FFT datapath gets batching across inputs for free —
every cycle a new activation vector enters the pipeline while the weight
spectra stay resident (Ding et al., MICRO 2017). The software analogue is
micro-batching: the per-frequency spectral GEMM of
:func:`repro.circulant.ops.spectral_contract` costs nearly the same for
one request as for sixteen (the weight-spectrum operand is identical;
only the activation columns grow), so amortising it over many concurrent
requests is the single biggest serving lever — the same leverage CircConv
(Liao et al., 2019) relies on to make structured convolution pay off at
inference time.

:class:`MicroBatcher` implements the classic dynamic policy: the batch
window opens when the first request is taken, and closes when either
``max_batch`` requests have been collected or ``max_wait_ms`` has elapsed
— whichever comes first. Requests already queued are always drained (they
cost nothing to include), FIFO order is preserved, and an idle queue
never busy-waits.

:func:`assemble_batch` then stacks the per-request samples into one
batch-major array — optionally zero-padding the batch axis up to a
multiple of ``pad_to_multiple`` so the downstream GEMM sees a small set
of recurring shapes (BLAS and FFT plan caches both like that) — and the
caller scatters the first ``rows`` output rows back to the requests.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, QueueFullError, ShapeError


@dataclass(frozen=True)
class BatchPolicy:
    """The two latency/throughput knobs of dynamic micro-batching.

    ``max_batch`` bounds how much work one compiled forward may carry
    (throughput lever), ``max_wait_ms`` bounds how long the first request
    in a window may wait for company (latency lever), and
    ``pad_to_multiple`` optionally rounds the batch axis up with zero
    rows so the spectral GEMM sees recurring shapes.

    ``bucket_multiple`` is the sequence-traffic lever: on an endpoint
    whose network declares a variable-length time axis
    (``serving_signature()["time_axis"]``), ragged requests are grouped
    into **length buckets** — each request's sequence length rounds up to
    the next multiple of ``bucket_multiple``, requests sharing a rounded
    length (and trailing sample shape) batch together, and the time axis
    is zero-padded *within the bucket only*. A length-37 and a length-3
    request never share a batch (no quadratic padding waste), while
    lengths 33–40 all run as one recurring padded shape (FFT plan and
    GEMM shape caches both like that). Harmless on fixed-shape
    endpoints, where every request forms a single exact-shape bucket.
    """

    max_batch: int = 16
    max_wait_ms: float = 2.0
    pad_to_multiple: int | None = None
    bucket_multiple: int | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.pad_to_multiple is not None and self.pad_to_multiple < 1:
            raise ConfigurationError(
                f"pad_to_multiple must be >= 1, got {self.pad_to_multiple}"
            )
        if self.bucket_multiple is not None and self.bucket_multiple < 1:
            raise ConfigurationError(
                f"bucket_multiple must be >= 1, got {self.bucket_multiple}"
            )


class MicroBatcher:
    """Collect queued items into micro-batches under a :class:`BatchPolicy`.

    Thread-safe: any number of producers may :meth:`put` while one
    consumer loops on :meth:`next_batch`. Items are opaque to the batcher
    (the serving runtime enqueues ``(request, future)`` pairs).
    """

    def __init__(self, policy: BatchPolicy | None = None, *,
                 max_pending: int | None = None,
                 expired=None, on_expired=None):
        if max_pending is not None and max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if (expired is None) != (on_expired is None):
            raise ConfigurationError(
                "expired and on_expired must be given together: the "
                "predicate decides, the sink receives the dropped item"
            )
        self.policy = policy if policy is not None else BatchPolicy()
        self.max_pending = max_pending
        self._expired = expired
        self._on_expired = on_expired
        self._queue: queue.Queue = queue.Queue()
        # Admission counter, kept separately from Queue.qsize(): put/get
        # adjust it under one lock so the bound cannot be oversubscribed
        # by two racing producers, and force-puts (shutdown sentinels)
        # bypass it entirely.
        self._pending_lock = threading.Lock()
        self._pending = 0

    def put(self, item, *, force: bool = False) -> None:
        """Enqueue one item; never blocks.

        With ``max_pending`` set, a full queue raises
        :class:`~repro.errors.QueueFullError` *immediately* — the
        admission-control fast path: overload is reported to the caller
        synchronously instead of growing an unbounded backlog.
        ``force=True`` bypasses the bound (shutdown wake sentinels must
        always land). Forced items are excluded from the admission
        count end to end: they neither consume a slot going in nor
        release one coming out, so a shutdown sentinel passing through
        can never leak admission capacity that queued requests still
        occupy.
        """
        if not force:
            with self._pending_lock:
                if (self.max_pending is not None
                        and self._pending >= self.max_pending):
                    raise QueueFullError(
                        f"scheduler queue is full ({self.max_pending} "
                        "pending items); shedding instead of queueing"
                    )
                self._pending += 1
        # Entries carry whether they hold an admission slot, so the
        # dequeue side releases exactly the slots the enqueue side took.
        self._queue.put((item, not force))

    def pending(self) -> int:
        """Number of queued items awaiting a batch (for stats/draining)."""
        return self._queue.qsize()

    #: _take's "the expiry sink consumed this entry" result. A sentinel,
    #: not None/False, because queued items are opaque and may be falsy.
    _DROPPED = object()

    def _take(self, entry):
        """Account for a dequeued entry; route expired items to the sink.

        Returns the item when it belongs in the batch, or ``_DROPPED``
        when the expiry predicate claimed it (the sink — typically "fail
        the future with DeadlineExceededError" — has already consumed
        it). Only counted entries release an admission slot; expiry is
        still checked for forced items, so a force-put request with a
        lapsed deadline reaches the sink, not a batch.
        """
        item, counted = entry
        if counted:
            with self._pending_lock:
                if self._pending > 0:
                    self._pending -= 1
        if self._expired is not None and self._expired(item):
            self._on_expired(item)
            return self._DROPPED
        return item

    def next_batch(self, timeout: float | None = None) -> list | None:
        """Block up to ``timeout`` seconds for a batch; ``None`` if idle.

        The window opens when the first item is taken; it closes at
        ``max_batch`` items or after ``max_wait_ms``, whichever first.
        Items that are already queued when the deadline passes are still
        drained into the closing batch (they cost nothing to include).
        Entries whose per-request deadline has already passed (the
        ``expired`` predicate) never join a batch: they are handed to the
        ``on_expired`` sink as they are dequeued, so a hopeless request
        costs no forward pass — the returned batch may then be empty.
        """
        try:
            first = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        batch = []
        item = self._take(first)
        if item is not self._DROPPED:
            batch.append(item)
        deadline = time.monotonic() + self.policy.max_wait_ms / 1000.0
        while len(batch) < self.policy.max_batch:
            try:
                item = self._take(self._queue.get_nowait())
                if item is not self._DROPPED:
                    batch.append(item)
                continue
            except queue.Empty:
                pass
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self._take(self._queue.get(timeout=remaining))
                if item is not self._DROPPED:
                    batch.append(item)
            except queue.Empty:
                break
        return batch


def check_sample_shape(
    shape: tuple[int, ...], expected: tuple[int | None, ...] | None
) -> None:
    """Validate one request sample against a layer's declared input shape.

    ``expected`` comes from ``Sequential.input_sample_shape``: ``None``
    axes are wildcards (e.g. CONV spatial dims), ``None`` overall skips
    the check entirely. Raises :class:`~repro.errors.ShapeError` on
    mismatch — at submit time, so one bad request cannot poison the
    micro-batch it would have joined.
    """
    if expected is None:
        return
    if len(shape) != len(expected) or any(
        want is not None and got != want
        for got, want in zip(shape, expected)
    ):
        raise ShapeError(
            f"request sample shape {shape} does not match the endpoint's "
            f"input shape {expected} (None = any)"
        )


def bucket_length(length: int, bucket_multiple: int | None) -> int:
    """The padded sequence length a request of ``length`` buckets into.

    Rounds up to the next multiple of ``bucket_multiple`` (identity when
    the policy sets none). Requests sharing a bucketed length — and the
    rest of their sample shape — are batchable together: the scheduler
    pads their time axes to this common length, never further.
    """
    if bucket_multiple is None or bucket_multiple <= 1:
        return length
    return -(-length // bucket_multiple) * bucket_multiple


def bucket_key(shape: tuple[int, ...], time_axis: int | None,
               bucket_multiple: int | None) -> tuple:
    """Grouping key for one request sample under length bucketing.

    Fixed-shape endpoints (``time_axis`` is ``None``) key on the exact
    shape — the pre-existing grouping contract. Sequence endpoints key on
    the shape with the time axis replaced by its
    :func:`bucket_length`-rounded value, so ragged requests land in a
    small set of recurring padded shapes.
    """
    if time_axis is None or time_axis >= len(shape):
        return tuple(shape)
    key = list(shape)
    key[time_axis] = bucket_length(shape[time_axis], bucket_multiple)
    return tuple(key)


def assemble_sequence_batch(
    samples: list[np.ndarray], time_axis: int,
    bucket_multiple: int | None = None,
    pad_to_multiple: int | None = None,
) -> tuple[np.ndarray, int, list[int]]:
    """Stack ragged sequence samples into one zero-padded batch.

    All samples must agree on every axis *except* ``time_axis`` (the
    per-sample axis the network's ``serving_signature()`` declares
    variable); each is zero-padded along it up to the bucket length —
    the longest sample's length, rounded up per ``bucket_multiple``.
    Zero padding is exact for causal recurrent networks: timesteps
    ``t < len_i`` of the padded forward equal the unpadded forward, so
    the caller scatters ``y[i, :len_i]`` (slicing the *output's* time
    axis) back to request ``i`` using the returned true ``lengths``.

    Returns ``(batch, rows, lengths)``; ``rows`` counts real samples
    (the batch axis still honours ``pad_to_multiple``).
    """
    if not samples:
        raise ConfigurationError(
            "assemble_sequence_batch received no samples"
        )
    shapes = [np.shape(s) for s in samples]
    first = shapes[0]
    if time_axis >= len(first):
        raise ShapeError(
            f"time_axis {time_axis} out of range for sample shape {first}"
        )
    rest = first[:time_axis] + first[time_axis + 1:]
    for shape in shapes[1:]:
        if len(shape) != len(first) or (
            shape[:time_axis] + shape[time_axis + 1:] != rest
        ):
            raise ShapeError(
                f"cannot assemble a sequence batch from samples {first} "
                f"and {shape}: all axes but the time axis ({time_axis}) "
                "must agree"
            )
    lengths = [shape[time_axis] for shape in shapes]
    padded_len = bucket_length(max(lengths), bucket_multiple)
    rows = len(samples)
    batch_rows = rows
    if pad_to_multiple is not None and rows % pad_to_multiple:
        batch_rows = -(-rows // pad_to_multiple) * pad_to_multiple
    shape = list(first)
    shape[time_axis] = padded_len
    x = np.zeros((batch_rows, *shape), dtype=np.float64)
    for i, sample in enumerate(samples):
        index: list = [i] + [slice(None)] * len(first)
        index[1 + time_axis] = slice(0, lengths[i])
        x[tuple(index)] = np.asarray(sample, dtype=np.float64)
    return x, rows, lengths


def assemble_batch(
    samples: list[np.ndarray], pad_to_multiple: int | None = None
) -> tuple[np.ndarray, int]:
    """Stack per-request samples into one batch-major array.

    Returns ``(batch, rows)`` where ``rows`` is the number of real
    samples; when ``pad_to_multiple`` is given the batch axis is
    zero-padded up to the next multiple, and the caller must scatter only
    ``batch[:rows]`` back to the requests.
    """
    if not samples:
        raise ConfigurationError("assemble_batch received no samples")
    shape = np.shape(samples[0])
    for sample in samples[1:]:
        if np.shape(sample) != shape:
            raise ShapeError(
                f"cannot assemble a batch from mixed sample shapes "
                f"{shape} and {np.shape(sample)}"
            )
    x = np.stack([np.asarray(s, dtype=np.float64) for s in samples])
    rows = x.shape[0]
    if pad_to_multiple is not None and rows % pad_to_multiple:
        padded_rows = -(-rows // pad_to_multiple) * pad_to_multiple
        padded = np.zeros((padded_rows, *x.shape[1:]), dtype=np.float64)
        padded[:rows] = x
        x = padded
    return x, rows
