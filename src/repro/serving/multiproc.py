"""Multi-process serving: one shared model image, N worker processes.

The thread-pool :class:`~repro.serving.server.InferenceServer` scales as
far as NumPy releases the GIL; the pure-Python FFT backends (and any
Python-level layer work) serialise on it. :class:`MPInferenceServer`
breaks that ceiling by running the compiled forwards in **worker
processes** — without paying the naive cost of multi-process serving,
which is N copies of every model and N redundant compile passes:

- Every endpoint generation is serialised **once** into a
  shared-memory segment (:func:`repro.serving.shm.publish_image`) and
  each worker attaches read-only views (:func:`repro.serving.shm.attach_image`)
  — zero per-worker warm-up FFTs, zero per-worker weight RAM beyond page
  tables.
- Hot swap stays atomic *across processes*: every task is tagged with
  the registry generation it must run on, and a worker only ever
  executes a task against exactly that generation's image. Because the
  image is published into a worker's task pipe **before** any task that
  references it (and retired only after), FIFO pipe ordering makes each
  response old-or-new, never mixed.
- Overload is shed, not queued: lanes carry a bounded admission queue
  (``queue_depth``) whose overflow raises
  :class:`~repro.errors.QueueFullError` synchronously at ``submit()``,
  and per-request deadlines travel with the task so both the scheduler
  and the worker drop work that can no longer meet them
  (:class:`~repro.errors.DeadlineExceededError`).
- Workers are supervised: a dead child (segfault, OOM kill) fails its
  in-flight batches fast with :class:`~repro.errors.WorkerCrashedError`
  and is respawned from the shared images — a cold respawn re-attaches,
  it never recompiles.

Wire protocol (one dedicated pipe pair per worker, so a SIGKILL mid-
operation can never poison a lock shared with its siblings)::

    parent -> worker : ("publish", descriptor)
                       ("retire", endpoint, below_generation)
                       ("task", batch_id, endpoint, generation, x, deadline)
                       ("stop",)
    worker -> parent : ("done", batch_id, y)
                       ("expired", batch_id)
                       ("error", batch_id, exception)

See the "Multi-process serving" section of ``docs/serving_runtime.md``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import Future
from multiprocessing import connection

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    WorkerCrashedError,
)
from repro.serving.registry import DEFAULT_ENDPOINT, ModelRegistry
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatcher,
    assemble_batch,
    check_sample_shape,
)
from repro.serving.server import (
    _WAKE,
    InferenceRequest,
    InferenceResponse,
    resolve_many,
)
from repro.serving.shm import attach_image, publish_image

#: How long stop() waits for a worker to exit before terminating it.
_JOIN_TIMEOUT_S = 5.0


class BatchGate:
    """Deterministic fault-injection hook: hold a worker *inside* a batch.

    The fault tests need to kill a worker at a precisely known point —
    after it has dequeued a task and entered the forward, before it
    replies. Sleeping and hoping is not deterministic; this is. Arm the
    gate, submit work, wait for :attr:`entered`, and the worker is now
    parked inside the batch with its pid in :attr:`pid` — SIGKILL it, or
    measure queue behaviour while it is wedged, then :meth:`open` to let
    any survivor proceed.

    The gate is built on context-specific primitives so it crosses the
    ``spawn`` boundary; pass it to :class:`MPInferenceServer` as
    ``batch_gate=``. Unarmed (the default), workers never touch it.

    The park is a poll on a lock-free ``RawValue`` flag, *not* an
    ``Event.wait()``, so that a parked worker holds no IPC state that
    dies with it: a process SIGKILLed while registered as a sleeper on a
    ``multiprocessing.Event`` poisons the event — the next ``set()``
    blocks forever waiting for the dead sleeper to acknowledge its
    wake-up. Killing a parked worker is this gate's entire purpose, so a
    parked worker must be killable without leaving anything behind.
    """

    def __init__(self, context) -> None:
        self._armed = context.Value("i", 0)
        #: pid of the worker currently parked in the gate.
        self.pid = context.RawValue("i", 0)
        #: set by the worker once it is parked inside the batch.
        self.entered = context.Event()
        # Single-writer release flag the parked worker polls; see the
        # class docstring for why this is not an Event.
        self._release = context.RawValue("i", 0)

    def arm(self, batches: int = 1) -> None:
        """Make the next ``batches`` task executions park in the gate."""
        with self._armed.get_lock():
            self._armed.value += batches

    def open(self) -> None:
        """Release any parked worker and disarm. Never blocks."""
        with self._armed.get_lock():
            self._armed.value = 0
        self._release.value = 1

    def hold_if_armed(self) -> None:
        """Worker side: park if armed; no-op (no IPC) otherwise."""
        with self._armed.get_lock():
            if self._armed.value <= 0:
                return
            self._armed.value -= 1
        self.pid.value = os.getpid()
        self.entered.set()
        while not self._release.value:
            time.sleep(0.001)


def _worker_main(task_conn, result_conn, descriptors, gate) -> None:
    """Worker process body: attach shared images, serve tasks until stop.

    ``descriptors`` seeds the initial images (a respawned worker gets the
    current image set the same way); later generations arrive as
    ``publish`` messages. Strictly sequential message processing is what
    the swap protocol's FIFO argument rests on.
    """
    images: dict[str, dict[int, object]] = {}

    def publish(descriptor) -> None:
        try:
            attached = attach_image(descriptor)
        except FileNotFoundError:
            # The parent already retired this generation: every task that
            # referenced it resolved before the unlink, so no task for it
            # can still be behind us in the pipe. Nothing to install.
            return
        images.setdefault(descriptor["endpoint"], {})[
            descriptor["generation"]
        ] = attached

    for descriptor in descriptors:
        publish(descriptor)
    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; nothing left to serve
        kind = message[0]
        if kind == "stop":
            break
        if kind == "publish":
            publish(message[1])
            continue
        if kind == "retire":
            _, endpoint, below = message
            generations = images.get(endpoint, {})
            for generation in [g for g in generations if g < below]:
                generations.pop(generation).close()
            continue
        # ("task", batch_id, endpoint, generation, x, deadline)
        _, batch_id, endpoint, generation, x, deadline = message
        try:
            if gate is not None:
                gate.hold_if_armed()
            if deadline is not None and time.monotonic() > deadline:
                result_conn.send(("expired", batch_id))
                continue
            attached = images[endpoint][generation]
            y = np.asarray(attached.network.inference_forward(x))
            result_conn.send(("done", batch_id, y))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                result_conn.send(("error", batch_id, exc))
            except Exception:
                result_conn.send(
                    ("error", batch_id, RuntimeError(repr(exc)))
                )
    for generations in images.values():
        for attached in generations.values():
            attached.close()


class _Worker:
    """Parent-side handle of one worker process and its dedicated pipes."""

    def __init__(self, index: int, process, task_conn, result_conn):
        self.index = index
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.alive = True
        # Set (under the server lock) by the one _reap that processes this
        # worker's death. `alive` alone cannot dedup reaps: a dispatcher
        # that hits a broken pipe clears it first, and that must not
        # swallow the respawn.
        self.reaped = False

    def close_pipes(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


class _Inflight:
    """One dispatched batch awaiting its worker's reply."""

    __slots__ = ("endpoint", "generation", "items", "rows", "padded",
                 "closed", "worker_index")

    def __init__(self, endpoint, generation, items, rows, padded, closed,
                 worker_index):
        self.endpoint = endpoint
        self.generation = generation
        self.items = items          # [(request, future), ...] — claimed
        self.rows = rows            # real rows (batch may be padded)
        self.padded = padded        # zero rows appended by assemble_batch
        self.closed = closed        # lane batch-close instant
        self.worker_index = worker_index


class _Lane:
    """Per-endpoint bounded batcher plus its batch-forming thread."""

    def __init__(self, batcher: MicroBatcher, thread: threading.Thread):
        self.batcher = batcher
        self.thread = thread


class MPInferenceServer:
    """Multi-process serving runtime over shared-memory endpoint images.

    Parameters
    ----------
    model:
        A :class:`~repro.serving.registry.ModelRegistry` or a single
        network (registered under ``"default"``, compiled if needed).
        Every endpoint present at :meth:`start` is published to shared
        memory; endpoints registered or swapped afterwards (including
        :meth:`~repro.serving.registry.ModelRegistry.swap_from_store`
        called directly on the registry) are picked up through the
        registry's subscription hook.
    workers:
        Number of worker processes. Each attaches the *same* shared
        images — per-worker incremental memory is page tables, not
        weights.
    max_batch, max_wait_ms, pad_to_multiple:
        The usual :class:`~repro.serving.scheduler.BatchPolicy` knobs.
    queue_depth:
        Bound on **unresolved** requests per endpoint — queued *and*
        dispatched-but-unanswered, so a wedged worker cannot grow an
        unbounded pipe backlog either. When full, :meth:`submit` raises
        :class:`~repro.errors.QueueFullError` synchronously — load is
        shed at admission, never silently backlogged. ``None`` = unbounded.
    start_method:
        ``multiprocessing`` start method; the default ``"spawn"`` is the
        only one that is safe regardless of the parent's thread activity.
    batch_gate:
        Optional :class:`BatchGate` for fault-injection tests.
    """

    def __init__(self, model, *, workers: int = 2, max_batch: int = 16,
                 max_wait_ms: float = 2.0,
                 pad_to_multiple: int | None = None,
                 queue_depth: int | None = None,
                 start_method: str = "spawn",
                 batch_gate: BatchGate | None = None):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth is not None and queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if isinstance(model, ModelRegistry):
            self.registry = model
        else:
            self.registry = ModelRegistry()
            self.registry.register(DEFAULT_ENDPOINT, model)
        self.policy = BatchPolicy(
            max_batch=max_batch, max_wait_ms=max_wait_ms,
            pad_to_multiple=pad_to_multiple,
        )
        self.worker_count = workers
        self.queue_depth = queue_depth
        self.batch_gate = batch_gate
        import multiprocessing

        self._context = multiprocessing.get_context(start_method)
        # One lock guards workers, images, the current-generation map and
        # the in-flight table: the swap protocol's ordering guarantees
        # (publish broadcast before the generation map moves, tasks tagged
        # under the same lock) all hang off its critical sections.
        self._lock = threading.RLock()
        self._lifecycle = threading.Lock()
        self._stop = threading.Event()
        self._stop.set()  # not started yet
        self._closing = False
        self._workers: list[_Worker] = []
        self._images: dict[str, dict[int, object]] = {}
        self._current: dict[str, int] = {}
        self._inflight: dict[int, _Inflight] = {}
        self._inflight_cv = threading.Condition(self._lock)
        # Notified when the supervisor installs a respawned worker, so a
        # dispatch that finds every worker dead can wait for the
        # replacement instead of failing a batch the respawn would have
        # served milliseconds later.
        self._workers_cv = threading.Condition(self._lock)
        self._lanes: dict[str, _Lane] = {}
        # Unresolved requests per endpoint (queued + dispatched): the
        # admission-control counter queue_depth bounds. Incremented at
        # submit, released by each future's done callback — so the bound
        # covers work a wedged worker is sitting on, not just the queue.
        self._outstanding: dict[str, int] = {}
        self._collector: threading.Thread | None = None
        self._wake_r = None
        self._wake_w = None
        self._next_worker = 0
        self._ids = itertools.count()
        self._batch_ids = itertools.count()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._responses = 0
        self._batches = 0
        self._batched_rows = 0
        self._padded_rows = 0
        self._errors = 0
        self._cancelled = 0
        self._shed = 0
        self._expired = 0
        self._crashes = 0
        self._respawns = 0

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return not self._stop.is_set()

    def start(self) -> "MPInferenceServer":
        """Publish every endpoint to shared memory and spawn the workers."""
        with self._lifecycle:
            if self.running:
                return self
            self._closing = False
            images: dict[str, dict[int, object]] = {}
            current: dict[str, int] = {}
            for endpoint in self.registry.endpoints():
                net, generation = self.registry.snapshot(endpoint)
                images[endpoint] = {
                    generation: publish_image(endpoint, net, generation)
                }
                current[endpoint] = generation
            self._wake_r, self._wake_w = self._context.Pipe(duplex=False)
            with self._lock:
                self._images = images
                self._current = current
                self._workers = [
                    self._spawn(index) for index in range(self.worker_count)
                ]
                self._stop.clear()
            self._collector = threading.Thread(
                target=self._collect, name="repro-mp-collector", daemon=True,
            )
            self._collector.start()
            self.registry.subscribe(self._on_publish)
        return self

    def stop(self, drain_timeout_s: float | None = None) -> None:
        """Drain lanes, settle in-flight batches, stop and reap workers.

        Every request admitted before ``stop()`` resolves: lanes drain
        their queues (dispatching final batches), the collector settles
        every in-flight future, and only then are workers told to exit.
        Shared segments are unlinked last.

        ``drain_timeout_s`` bounds the wait for in-flight batches; if a
        worker is wedged (stuck kernel, held fault-injection gate) past
        it, the remaining workers are killed and their batches fail with
        :class:`~repro.errors.WorkerCrashedError` instead of hanging
        shutdown forever. ``None`` waits indefinitely.
        """
        with self._lifecycle:
            if not self.running:
                return
            self.registry.unsubscribe(self._on_publish)
            with self._lock:
                self._stop.set()
                lanes = list(self._lanes.values())
            for lane in lanes:
                lane.batcher.put(_WAKE, force=True)
            for lane in lanes:
                lane.thread.join()
            with self._inflight_cv:
                drained = self._inflight_cv.wait_for(
                    lambda: not self._inflight, timeout=drain_timeout_s
                )
                self._closing = True
                workers = list(self._workers)
            if not drained:
                # _closing is already set, so the collector fails the
                # orphaned batches without respawning replacements.
                for worker in workers:
                    if worker.alive:
                        worker.process.kill()
                with self._inflight_cv:
                    self._inflight_cv.wait_for(
                        lambda: not self._inflight,
                        timeout=_JOIN_TIMEOUT_S,
                    )
            for worker in workers:
                if worker.alive:
                    try:
                        worker.task_conn.send(("stop",))
                    except (OSError, ValueError):
                        pass
            for worker in workers:
                worker.process.join(timeout=_JOIN_TIMEOUT_S)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=_JOIN_TIMEOUT_S)
            self._wake_collector()
            if self._collector is not None:
                self._collector.join()
                self._collector = None
            for worker in workers:
                worker.close_pipes()
            for conn in (self._wake_r, self._wake_w):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            self._wake_r = self._wake_w = None
            with self._lock:
                for generations in self._images.values():
                    for image in generations.values():
                        image.close_and_unlink()
                self._images = {}
                self._current = {}
                self._workers = []
                self._lanes.clear()

    def __enter__(self) -> "MPInferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path --------------------------------------------------------
    def submit(self, x, endpoint: str = DEFAULT_ENDPOINT,
               deadline_ms: float | None = None) -> Future:
        """Enqueue one sample; returns a Future of
        :class:`~repro.serving.server.InferenceResponse`.

        Raises :class:`~repro.errors.QueueFullError` immediately when the
        endpoint's admission queue (``queue_depth``) is full — the shed
        path — and :class:`~repro.errors.ShapeError` on a malformed
        sample. ``deadline_ms`` sets a relative deadline; a request that
        cannot be served in time fails with
        :class:`~repro.errors.DeadlineExceededError` instead of occupying
        a batch (the deadline travels to the worker with the task).
        """
        net, _ = self.registry.snapshot(endpoint)
        x = np.asarray(x, dtype=np.float64)
        check_sample_shape(x.shape, getattr(net, "input_sample_shape", None))
        now = time.monotonic()
        deadline = None if deadline_ms is None else now + deadline_ms / 1e3
        request = InferenceRequest(
            request_id=next(self._ids), endpoint=endpoint, x=x,
            enqueued_at=now, deadline=deadline,
        )
        future: Future = Future()
        with self._lock:
            if not self.running:
                raise ConfigurationError(
                    "MPInferenceServer is not running; call start() or use "
                    "it as a context manager"
                )
            if (self.queue_depth is not None
                    and self._outstanding.get(endpoint, 0)
                    >= self.queue_depth):
                with self._stats_lock:
                    self._shed += 1
                raise QueueFullError(
                    f"endpoint {endpoint!r} already has "
                    f"{self.queue_depth} unresolved requests; shedding "
                    "instead of queueing"
                )
            self._outstanding[endpoint] = (
                self._outstanding.get(endpoint, 0) + 1
            )
            future.add_done_callback(
                lambda _f, e=endpoint: self._release(e)
            )
            self._lane(endpoint).batcher.put((request, future))
        with self._stats_lock:
            self._requests += 1
        return future

    def _release(self, endpoint: str) -> None:
        with self._lock:
            count = self._outstanding.get(endpoint, 0)
            if count > 0:
                self._outstanding[endpoint] = count - 1

    def infer(self, x, endpoint: str = DEFAULT_ENDPOINT,
              timeout: float | None = None,
              deadline_ms: float | None = None) -> np.ndarray:
        """Synchronous single-sample convenience: submit and wait."""
        return self.submit(x, endpoint, deadline_ms=deadline_ms) \
            .result(timeout).y

    def submit_many(self, samples, endpoint: str = DEFAULT_ENDPOINT,
                    deadline_ms: float | None = None) -> list[Future]:
        """Enqueue a burst of samples; returns their futures in order."""
        return [
            self.submit(x, endpoint, deadline_ms=deadline_ms)
            for x in samples
        ]

    def infer_many(self, samples, endpoint: str = DEFAULT_ENDPOINT,
                   timeout: float | None = None,
                   deadline_ms: float | None = None) -> list[np.ndarray]:
        """Submit a burst, wait under **one shared deadline**, return ys."""
        futures = self.submit_many(samples, endpoint, deadline_ms=deadline_ms)
        return [r.y for r in resolve_many(futures, timeout)]

    # -- hot swap ------------------------------------------------------------
    def swap_from_store(self, endpoint: str, path, *, mmap: bool = True):
        """Hot-swap ``endpoint`` from a stored artifact, atomically.

        Delegates to
        :meth:`~repro.serving.registry.ModelRegistry.swap_from_store`;
        the registry subscription publishes the new generation's shared
        image to every worker before any task is tagged with it, so each
        response is computed entirely on one generation.
        """
        return self.registry.swap_from_store(endpoint, path, mmap=mmap)

    def _on_publish(self, endpoint: str, network, generation: int) -> None:
        """Registry subscription: share a newly published generation.

        Ordering is the heart of cross-process swap atomicity: the image
        is broadcast into every worker's task pipe *before* the current-
        generation map moves, and tasks are tagged under the same lock —
        so by pipe FIFO a worker always installs generation G before the
        first task tagged G arrives, and the retire message trails the
        last task of the old generation.
        """
        if not self.running:
            return
        image = publish_image(endpoint, network, generation)
        with self._lock:
            if not self.running or generation <= self._current.get(
                endpoint, -1
            ):
                # Two publishes can race here (subscription callbacks run
                # on their registry-publishing threads): if a newer
                # generation already landed, this image can never be
                # tagged by a task — drop it instead of moving the
                # endpoint backwards.
                image.close_and_unlink()
                return
            self._broadcast(("publish", image.descriptor))
            self._images.setdefault(endpoint, {})[generation] = image
            self._current[endpoint] = generation
            self._broadcast(("retire", endpoint, generation))
            self._maybe_unlink(endpoint)

    def _broadcast(self, message) -> None:
        # Caller holds self._lock. A send failure here means the worker
        # died; the collector will observe the sentinel, fail its batches
        # and respawn it with the *current* images — which include this
        # one — so a lost broadcast is self-healing.
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.task_conn.send(message)
            except (OSError, ValueError):
                pass

    def _maybe_unlink(self, endpoint: str) -> None:
        # Caller holds self._lock. A superseded image can be unlinked once
        # no dispatched batch still references its generation: at that
        # point every worker that ever ran a task on it has already
        # attached (it had to, to produce the reply), and workers that
        # never will are free to ignore the stale publish message.
        current = self._current.get(endpoint)
        generations = self._images.get(endpoint, {})
        referenced = {
            inflight.generation for inflight in self._inflight.values()
            if inflight.endpoint == endpoint
        }
        for generation in sorted(generations):
            if generation >= current or generation in referenced:
                continue
            generations.pop(generation).close_and_unlink()

    # -- lanes and dispatch --------------------------------------------------
    def _lane(self, endpoint: str) -> _Lane:
        with self._lock:
            lane = self._lanes.get(endpoint)
            if lane is None:
                # No batcher-level max_pending: admission control lives in
                # submit()'s outstanding counter, which also covers
                # dispatched batches a wedged worker is sitting on.
                batcher = MicroBatcher(
                    self.policy,
                    expired=self._is_expired, on_expired=self._expire_item,
                )
                thread = threading.Thread(
                    target=self._lane_loop, args=(endpoint, batcher),
                    name=f"repro-mp-lane-{endpoint}", daemon=True,
                )
                lane = _Lane(batcher, thread)
                self._lanes[endpoint] = lane
                thread.start()
            return lane

    @staticmethod
    def _is_expired(item) -> bool:
        if item is _WAKE:
            return False
        request, _ = item
        return (request.deadline is not None
                and time.monotonic() > request.deadline)

    def _expire_item(self, item) -> None:
        request, future = item
        with self._stats_lock:
            self._expired += 1
        if future.set_running_or_notify_cancel():
            future.set_exception(DeadlineExceededError(
                f"request {request.request_id} missed its deadline before "
                "a batch could be formed"
            ))

    def _lane_loop(self, endpoint: str, batcher: MicroBatcher) -> None:
        while True:
            if self._stop.is_set() and batcher.pending() == 0:
                return
            batch = batcher.next_batch(timeout=0.05)
            if not batch:
                continue
            closed = time.monotonic()
            items = [item for item in batch if item is not _WAKE]
            if not items:
                continue
            self._dispatch(endpoint, items, closed)

    def _dispatch(self, endpoint: str, items: list, closed: float) -> None:
        # Claim futures before any work, exactly like the thread server:
        # once RUNNING, a client cancel() can no longer race the scatter.
        live = [
            (request, future) for request, future in items
            if future.set_running_or_notify_cancel()
        ]
        if len(live) < len(items):
            with self._stats_lock:
                self._cancelled += len(items) - len(live)
        if not live:
            return
        requests = [request for request, _ in live]
        try:
            x, rows = assemble_batch(
                [request.x for request in requests],
                self.policy.pad_to_multiple,
            )
        except BaseException as exc:
            self._fail(live, exc)
            return
        # The batch deadline is the latest member deadline: members that
        # had already expired were dropped at batch formation, so if the
        # worker finds this deadline passed, *every* member has missed.
        deadlines = [request.deadline for request in requests]
        deadline = None if any(d is None for d in deadlines) \
            else max(deadlines)
        with self._lock:
            generation = self._current.get(endpoint)
            if generation is None:
                self._fail(live, ConfigurationError(
                    f"endpoint {endpoint!r} has no published image"
                ))
                return
            batch_id = next(self._batch_ids)
            sent = False
            give_up = time.monotonic() + _JOIN_TIMEOUT_S
            while not sent:
                worker = self._pick_worker()
                if worker is None:
                    # Every worker is dead. The supervisor respawns each
                    # crashed worker unless the server is closing, so wait
                    # (lock released) for the replacement rather than
                    # failing a batch it would serve moments later.
                    if self._closing or not self._workers_cv.wait(
                        timeout=max(0.0, give_up - time.monotonic())
                    ):
                        self._fail(live, WorkerCrashedError(
                            "no live worker process to run the batch on"
                        ))
                        return
                    continue
                try:
                    worker.task_conn.send(
                        ("task", batch_id, endpoint, generation, x, deadline)
                    )
                    sent = True
                except (OSError, ValueError):
                    # The collector reaps marked workers explicitly; wake
                    # it rather than relying on the sentinel, which it may
                    # already have stopped watching.
                    worker.alive = False
                    self._wake_collector()
            self._inflight[batch_id] = _Inflight(
                endpoint, generation, live, rows, x.shape[0] - rows,
                closed, worker.index,
            )

    def _pick_worker(self):
        # Caller holds self._lock: plain round-robin over live workers.
        for _ in range(len(self._workers)):
            worker = self._workers[self._next_worker % len(self._workers)]
            self._next_worker += 1
            if worker.alive:
                return worker
        return None

    def _fail(self, items: list, exc: BaseException,
              count_errors: bool = True) -> None:
        if count_errors:
            with self._stats_lock:
                self._errors += len(items)
        for _, future in items:
            try:
                future.set_exception(exc)
            except Exception:
                pass

    # -- worker supervision --------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        # Caller holds self._lock (or is in single-threaded start()).
        # Dedicated pipe pair per worker: a SIGKILLed child cannot corrupt
        # state shared with its siblings, unlike a common mp.Queue whose
        # feeder lock dies with whoever held it.
        task_recv, task_send = self._context.Pipe(duplex=False)
        result_recv, result_send = self._context.Pipe(duplex=False)
        descriptors = [
            self._images[endpoint][generation].descriptor
            for endpoint, generation in self._current.items()
        ]
        process = self._context.Process(
            target=_worker_main,
            args=(task_recv, result_send, descriptors, self.batch_gate),
            name=f"repro-mp-worker-{index}",
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so EOF propagates when the
        # child dies.
        task_recv.close()
        result_send.close()
        return _Worker(index, process, task_send, result_recv)

    def _wake_collector(self) -> None:
        if self._wake_w is not None:
            try:
                self._wake_w.send(b"w")
            except (OSError, ValueError):
                pass

    def _collect(self) -> None:
        """Collector thread: results, crash detection, respawn — one loop.

        ``connection.wait`` multiplexes every worker's result pipe, every
        worker's process sentinel, and a wake pipe. Result messages are
        always drained before a death is acted on, so replies a worker
        managed to send before dying are still honoured.
        """
        while True:
            with self._lock:
                by_conn = {
                    w.result_conn: w for w in self._workers if w.alive
                }
                by_sentinel = {
                    w.process.sentinel: w for w in self._workers if w.alive
                }
                marked = [
                    w for w in self._workers if not w.alive and not w.reaped
                ]
                closing = self._closing
            # A dispatcher that hit a broken pipe marked the worker dead
            # already — the if-alive filters above exclude it from the wait
            # set, so reap it here or its in-flight batches (and its
            # respawn) would be lost.
            for worker in marked:
                self._drain_results(worker)
                self._reap(worker)
            if closing and not by_conn:
                return
            waitables = (
                list(by_conn) + list(by_sentinel) + [self._wake_r]
            )
            ready = connection.wait(waitables, timeout=1.0)
            dead = []
            for obj in ready:
                if obj is self._wake_r:
                    try:
                        while self._wake_r.poll():
                            self._wake_r.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                worker = by_conn.get(obj)
                if worker is not None:
                    if not self._drain_results(worker):
                        dead.append(worker)
                    continue
                worker = by_sentinel.get(obj)
                if worker is not None and worker not in dead:
                    dead.append(worker)
            for worker in dead:
                self._drain_results(worker)
                self._reap(worker)
            with self._lock:
                if self._closing and not any(
                    w.alive for w in self._workers
                ):
                    return

    def _drain_results(self, worker: _Worker) -> bool:
        """Deliver every queued reply from ``worker``; False on EOF."""
        while True:
            try:
                if not worker.result_conn.poll():
                    return True
                message = worker.result_conn.recv()
            except (EOFError, OSError):
                return False
            self._settle(message)

    def _settle(self, message) -> None:
        kind, batch_id = message[0], message[1]
        with self._inflight_cv:
            inflight = self._inflight.pop(batch_id, None)
            if inflight is not None:
                self._maybe_unlink(inflight.endpoint)
            self._inflight_cv.notify_all()
        if inflight is None:
            return
        if kind == "done":
            y = message[2][:inflight.rows]
            if y.shape[0] != len(inflight.items):
                self._fail(inflight.items, RuntimeError(
                    f"endpoint {inflight.endpoint!r} returned {y.shape[0]} "
                    f"output rows for a batch of {len(inflight.items)} "
                    "requests"
                ))
                return
            done = time.monotonic()
            for row, (request, future) in zip(y, inflight.items):
                future.set_result(InferenceResponse(
                    request_id=request.request_id,
                    endpoint=inflight.endpoint,
                    y=row.copy(),
                    batch_size=inflight.rows,
                    generation=inflight.generation,
                    queued_ms=(inflight.closed - request.enqueued_at) * 1e3,
                    latency_ms=(done - request.enqueued_at) * 1e3,
                ))
            with self._stats_lock:
                self._responses += inflight.rows
                self._batches += 1
                self._batched_rows += inflight.rows
                self._padded_rows += inflight.padded
        elif kind == "expired":
            with self._stats_lock:
                self._expired += len(inflight.items)
            # Deadline drops are accounted under "expired", not "errors".
            self._fail(inflight.items, DeadlineExceededError(
                "the batch deadline passed before the worker could run it"
            ), count_errors=False)
        else:  # "error"
            self._fail(inflight.items, message[2])

    def _reap(self, worker: _Worker) -> None:
        """A worker died: fail its in-flight batches fast, then respawn."""
        with self._inflight_cv:
            if worker.reaped:
                return
            worker.reaped = True
            worker.alive = False
            orphaned = [
                (batch_id, inflight)
                for batch_id, inflight in self._inflight.items()
                if inflight.worker_index == worker.index
            ]
            for batch_id, _ in orphaned:
                del self._inflight[batch_id]
            endpoints = {inflight.endpoint for _, inflight in orphaned}
            for endpoint in endpoints:
                self._maybe_unlink(endpoint)
            self._inflight_cv.notify_all()
            closing = self._closing
        worker.process.join(timeout=_JOIN_TIMEOUT_S)
        exitcode = worker.process.exitcode
        for _, inflight in orphaned:
            self._fail(inflight.items, WorkerCrashedError(
                f"worker process {worker.index} died (exit code "
                f"{exitcode}) with the batch in flight"
            ))
        if closing:
            return
        with self._stats_lock:
            self._crashes += 1
        worker.close_pipes()
        with self._lock:
            if self._closing:
                return
            replacement = self._spawn(worker.index)
            slot = self._workers.index(worker)
            self._workers[slot] = replacement
            self._workers_cv.notify_all()
        with self._stats_lock:
            self._respawns += 1

    # -- stats ---------------------------------------------------------------
    def stats(self) -> dict[str, float]:
        """Serving counters, including the overload and fault ones.

        ``shed`` counts :class:`~repro.errors.QueueFullError` fast
        rejects, ``expired`` counts deadline drops (scheduler- and
        worker-side), ``crashes``/``respawns`` count supervisor activity.
        """
        with self._stats_lock:
            batches = self._batches
            return {
                "requests": self._requests,
                "responses": self._responses,
                "batches": batches,
                "errors": self._errors,
                "cancelled": self._cancelled,
                "shed": self._shed,
                "expired": self._expired,
                "crashes": self._crashes,
                "respawns": self._respawns,
                "workers": len(self._workers),
                "mean_batch_size": (
                    self._batched_rows / batches if batches else 0.0
                ),
            }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"MPInferenceServer({state}, workers={self.worker_count}, "
            f"endpoints={self.registry.endpoints()}, "
            f"queue_depth={self.queue_depth})"
        )
