"""Multi-process serving: one shared model image, N worker processes.

The thread-pool :class:`~repro.serving.server.InferenceServer` scales as
far as NumPy releases the GIL; the pure-Python FFT backends (and any
Python-level layer work) serialise on it. :class:`MPInferenceServer`
breaks that ceiling by running the compiled forwards in **worker
processes** — without paying the naive cost of multi-process serving,
which is N copies of every model and N redundant compile passes:

- Every endpoint generation is serialised **once** into a
  shared-memory segment (:func:`repro.serving.shm.publish_image`) and
  each worker attaches read-only views (:func:`repro.serving.shm.attach_image`)
  — zero per-worker warm-up FFTs, zero per-worker weight RAM beyond page
  tables.
- Hot swap stays atomic *across processes*: every task is tagged with
  the registry generation it must run on, and a worker only ever
  executes a task against exactly that generation's image. Because the
  image is published into a worker's task pipe **before** any task that
  references it (and retired only after), FIFO pipe ordering makes each
  response old-or-new, never mixed.
- Overload is shed, not queued: lanes carry a bounded admission queue
  (``queue_depth``) whose overflow raises
  :class:`~repro.errors.QueueFullError` synchronously at ``submit()``,
  and per-request deadlines travel with the task so both the scheduler
  and the worker drop work that can no longer meet them
  (:class:`~repro.errors.DeadlineExceededError`).
- Workers are supervised: a dead child (segfault, OOM kill) fails its
  in-flight batches fast with :class:`~repro.errors.WorkerCrashedError`
  and is respawned from the shared images — a cold respawn re-attaches,
  it never recompiles.
- Wedged workers are detected, not just dead ones: with
  ``wedge_timeout_s`` set, workers heartbeat the *start* of every batch
  over the result pipe, and the collector SIGKILLs any worker whose
  batch has been running past the timeout — its batches fail with
  :class:`~repro.errors.WorkerWedgedError` and the ordinary crash
  supervision respawns it. A stuck forward (runaway kernel, deadlocked
  extension) therefore costs one worker for ``wedge_timeout_s``, not the
  server forever.
- Failures can be made invisible: an optional
  :class:`~repro.serving.resilience.RetryPolicy` transparently
  resubmits batches orphaned by a crash or wedge (jittered backoff,
  never past a request's deadline), and an optional per-endpoint
  :class:`~repro.serving.resilience.CircuitBreaker` converts a
  persistently failing endpoint into
  :class:`~repro.errors.CircuitOpenError` fast-rejects at admission —
  the same synchronous contract as ``QueueFullError``.

Wire protocol (one dedicated pipe pair per worker, so a SIGKILL mid-
operation can never poison a lock shared with its siblings)::

    parent -> worker : ("publish", descriptor)
                       ("retire", endpoint, below_generation)
                       ("task", batch_id, endpoint, generation, x,
                               deadline, descriptor)
                       ("stop",)

Task sends happen outside the server lock (batch payloads can exceed
the pipe buffer; a blocking send under the lock would deadlock the
collector) and every task carries its image descriptor, so the
``publish``/``retire`` broadcasts are best-effort: a worker that missed
one attaches from the task itself.
    worker -> parent : ("begin", batch_id)        # wedge-watchdog heartbeat
                       ("done", batch_id, y)
                       ("expired", batch_id)
                       ("error", batch_id, exception)

See the "Multi-process serving" section of ``docs/serving_runtime.md``.
"""

from __future__ import annotations

import itertools
import os
import select
import threading
import time
from concurrent.futures import Future
from multiprocessing import connection

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
    WorkerCrashedError,
    WorkerWedgedError,
)
from repro.serving.registry import DEFAULT_ENDPOINT, ModelRegistry
from repro.serving.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatcher,
    assemble_batch,
    assemble_sequence_batch,
    bucket_key,
    check_sample_shape,
)
from repro.serving.server import (
    _WAKE,
    InferenceRequest,
    InferenceResponse,
    resolve_many,
)
from repro.serving.shm import attach_image, publish_image

#: How long stop() waits for a worker to exit before terminating it.
_JOIN_TIMEOUT_S = 5.0


def _writable(conn) -> bool:
    """True when a small send on ``conn`` will not block.

    POSIX reports a pipe writable only while at least ``PIPE_BUF`` bytes
    fit, and broadcast messages are far smaller than that, so a positive
    answer means the send completes without blocking.
    """
    try:
        _, ready, _ = select.select([], [conn], [], 0)
    except (OSError, ValueError):
        return False
    return bool(ready)


class BatchGate:
    """Deterministic fault-injection hook: hold a worker *inside* a batch.

    The fault tests need to kill a worker at a precisely known point —
    after it has dequeued a task and entered the forward, before it
    replies. Sleeping and hoping is not deterministic; this is. Arm the
    gate, submit work, wait for :attr:`entered`, and the worker is now
    parked inside the batch with its pid in :attr:`pid` — SIGKILL it, or
    measure queue behaviour while it is wedged, then :meth:`open` to let
    any survivor proceed.

    The gate is built on context-specific primitives so it crosses the
    ``spawn`` boundary; pass it to :class:`MPInferenceServer` as
    ``batch_gate=``. Unarmed (the default), workers never touch it.

    The park is a poll on a lock-free ``RawValue`` flag, *not* an
    ``Event.wait()``, so that a parked worker holds no IPC state that
    dies with it: a process SIGKILLed while registered as a sleeper on a
    ``multiprocessing.Event`` poisons the event — the next ``set()``
    blocks forever waiting for the dead sleeper to acknowledge its
    wake-up. Killing a parked worker is this gate's entire purpose, so a
    parked worker must be killable without leaving anything behind.
    """

    def __init__(self, context) -> None:
        self._armed = context.Value("i", 0)
        #: pid of the worker currently parked in the gate.
        self.pid = context.RawValue("i", 0)
        #: set by the worker once it is parked inside the batch.
        self.entered = context.Event()
        # Single-writer release flag the parked worker polls; see the
        # class docstring for why this is not an Event.
        self._release = context.RawValue("i", 0)

    def arm(self, batches: int = 1) -> None:
        """Make the next ``batches`` task executions park in the gate."""
        with self._armed.get_lock():
            self._armed.value += batches

    def open(self) -> None:
        """Release any parked worker and disarm. Never blocks."""
        with self._armed.get_lock():
            self._armed.value = 0
        self._release.value = 1

    def reset(self) -> None:
        """Re-arm-able park-forever mode: make the *next* park hold again.

        ``open()`` leaves the release flag raised, so without a reset the
        gate is single-use — a later :meth:`arm` would park only
        momentarily. ``reset()`` lowers the flag (and clears
        :attr:`entered`) so the gate can wedge workers repeatedly: the
        chaos soak's injected wedges are ``reset(); arm(); …`` cycles,
        and a wedge test that never calls ``open()`` at all parks its
        worker *forever* — exactly the stuck-forward failure mode the
        watchdog exists to kill. Only call while no worker is parked
        (after ``open()``, or after the watchdog killed the parked
        worker).
        """
        self._release.value = 0
        self.entered.clear()
        self.pid.value = 0

    def hold_if_armed(self) -> None:
        """Worker side: park if armed; no-op (no IPC) otherwise."""
        with self._armed.get_lock():
            if self._armed.value <= 0:
                return
            self._armed.value -= 1
        self.pid.value = os.getpid()
        self.entered.set()
        while not self._release.value:
            time.sleep(0.001)


def _worker_main(task_conn, result_conn, descriptors, gate,
                 heartbeat) -> None:
    """Worker process body: attach shared images, serve tasks until stop.

    ``descriptors`` seeds the initial images (a respawned worker gets the
    current image set the same way). Later generations arrive as
    best-effort ``publish`` messages, but every task also carries its own
    image descriptor, so a worker that missed (or has not yet received) a
    publish simply attaches on first use — no ordering between publishes
    and tasks is load-bearing. With ``heartbeat`` on
    (the parent runs a wedge watchdog), every task is acknowledged with
    a ``("begin", batch_id)`` message *before* the forward starts — the
    parent times the gap between that heartbeat and the reply.
    """
    images: dict[str, dict[int, object]] = {}

    def publish(descriptor) -> None:
        try:
            attached = attach_image(descriptor)
        except FileNotFoundError:
            # The parent already retired this generation: every task that
            # referenced it resolved before the unlink, so no task for it
            # can still be behind us in the pipe. Nothing to install.
            return
        images.setdefault(descriptor["endpoint"], {})[
            descriptor["generation"]
        ] = attached

    for descriptor in descriptors:
        publish(descriptor)
    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError):
            break  # parent is gone; nothing left to serve
        kind = message[0]
        if kind == "stop":
            break
        if kind == "publish":
            publish(message[1])
            continue
        if kind == "retire":
            _, endpoint, below = message
            generations = images.get(endpoint, {})
            for generation in [g for g in generations if g < below]:
                generations.pop(generation).close()
            continue
        # ("task", batch_id, endpoint, generation, x, deadline, descriptor)
        _, batch_id, endpoint, generation, x, deadline, descriptor = message
        try:
            if heartbeat:
                # Sent before the fault-injection gate on purpose: a
                # gate-parked worker is the deterministic stand-in for a
                # wedged forward, and the watchdog must see its batch as
                # started to time it out.
                result_conn.send(("begin", batch_id))
            if gate is not None:
                gate.hold_if_armed()
            if deadline is not None and time.monotonic() > deadline:
                result_conn.send(("expired", batch_id))
                continue
            if generation not in images.get(endpoint, {}):
                # The publish broadcast for this generation was dropped
                # (or is still in the pipe behind us): attach from the
                # descriptor the task itself carries. The parent keeps an
                # image linked while any batch of its generation is in
                # flight, so this attach cannot race the unlink.
                publish(descriptor)
            attached = images[endpoint][generation]
            y = np.asarray(attached.network.inference_forward(x))
            result_conn.send(("done", batch_id, y))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            try:
                result_conn.send(("error", batch_id, exc))
            except Exception:
                result_conn.send(
                    ("error", batch_id, RuntimeError(repr(exc)))
                )
    for generations in images.values():
        for attached in generations.values():
            attached.close()


class _Worker:
    """Parent-side handle of one worker process and its dedicated pipes."""

    def __init__(self, index: int, process, task_conn, result_conn):
        self.index = index
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.alive = True
        # Set (under the server lock) by the one _reap that processes this
        # worker's death. `alive` alone cannot dedup reaps: a dispatcher
        # that hits a broken pipe clears it first, and that must not
        # swallow the respawn.
        self.reaped = False
        # Batches dispatched to this worker and not yet settled (under
        # the server lock) — the least-loaded dispatch signal.
        self.load = 0
        # Set by the watchdog just before it SIGKILLs a wedged worker, so
        # the reap can tell "killed for wedging" from an ordinary crash
        # and raise WorkerWedgedError instead of WorkerCrashedError.
        self.wedged = False
        # Serialises writes to task_conn. Task sends happen *outside* the
        # server lock — a batch payload can exceed the pipe buffer, and a
        # blocking send under the lock would deadlock against the
        # collector (which needs the lock to drain the result pipe the
        # worker is waiting on). Dispatchers block on this mutex;
        # broadcasts only try-acquire it (their messages are droppable).
        self.send_mutex = threading.Lock()

    def close_pipes(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


class _Inflight:
    """One dispatched batch awaiting its worker's reply."""

    __slots__ = ("endpoint", "generation", "items", "rows", "padded",
                 "closed", "worker_index", "attempt", "began_at",
                 "lengths", "time_axis")

    def __init__(self, endpoint, generation, items, rows, padded, closed,
                 worker_index, attempt=1, lengths=None, time_axis=None):
        self.endpoint = endpoint
        self.generation = generation
        self.items = items          # [(request, future), ...] — claimed
        self.rows = rows            # real rows (batch may be padded)
        self.padded = padded        # zero rows appended by assemble_batch
        self.closed = closed        # lane batch-close instant
        self.worker_index = worker_index
        self.attempt = attempt      # 1 = first dispatch; bumped per retry
        self.began_at = None        # worker "begin" heartbeat instant
        self.lengths = lengths      # per-request true sequence lengths
        self.time_axis = time_axis  # sample time axis (sequence endpoints)


class _Lane:
    """Per-endpoint bounded batcher plus its batch-forming thread."""

    def __init__(self, batcher: MicroBatcher, thread: threading.Thread):
        self.batcher = batcher
        self.thread = thread


class MPInferenceServer:
    """Multi-process serving runtime over shared-memory endpoint images.

    Parameters
    ----------
    model:
        A :class:`~repro.serving.registry.ModelRegistry` or a single
        network (registered under ``"default"``, compiled if needed).
        Every endpoint present at :meth:`start` is published to shared
        memory; endpoints registered or swapped afterwards (including
        :meth:`~repro.serving.registry.ModelRegistry.swap_from_store`
        called directly on the registry) are picked up through the
        registry's subscription hook.
    workers:
        Number of worker processes. Each attaches the *same* shared
        images — per-worker incremental memory is page tables, not
        weights.
    max_batch, max_wait_ms, pad_to_multiple, bucket_multiple:
        The usual :class:`~repro.serving.scheduler.BatchPolicy` knobs.
        ``bucket_multiple`` enables length-bucketed batching on sequence
        endpoints (networks with a ``time_axis``): ragged requests group
        by rounded-up padded length, are zero-padded within their bucket
        only, and each response carries its true-length output slice.
    queue_depth:
        Bound on **unresolved** requests per endpoint — queued *and*
        dispatched-but-unanswered, so a wedged worker cannot grow an
        unbounded pipe backlog either. When full, :meth:`submit` raises
        :class:`~repro.errors.QueueFullError` synchronously — load is
        shed at admission, never silently backlogged. ``None`` = unbounded.
    start_method:
        ``multiprocessing`` start method; the default ``"spawn"`` is the
        only one that is safe regardless of the parent's thread activity.
    batch_gate:
        Optional :class:`BatchGate` for fault-injection tests.
    wedge_timeout_s:
        Arm the wedge watchdog: workers heartbeat each batch start, and
        any worker whose batch runs longer than this is SIGKILLed by the
        collector — its in-flight batches fail fast with
        :class:`~repro.errors.WorkerWedgedError` and it is respawned
        from the shared images. ``None`` (default) disables the
        watchdog and the heartbeats.
    retry:
        Optional :class:`~repro.serving.resilience.RetryPolicy`:
        batches failed by a worker crash or wedge are transparently
        redispatched (jittered exponential backoff) as long as another
        attempt can still start before each request's deadline. With
        retries on, a crash or wedge under deadline slack is invisible
        to clients.
    breaker:
        Optional :class:`~repro.serving.resilience.BreakerPolicy`: each
        endpoint gets a circuit breaker fed by its request outcomes.
        While the circuit is open, :meth:`submit` raises
        :class:`~repro.errors.CircuitOpenError` synchronously — same
        admission contract as ``QueueFullError``.
    """

    def __init__(self, model, *, workers: int = 2, max_batch: int = 16,
                 max_wait_ms: float = 2.0,
                 pad_to_multiple: int | None = None,
                 bucket_multiple: int | None = None,
                 queue_depth: int | None = None,
                 start_method: str = "spawn",
                 batch_gate: BatchGate | None = None,
                 wedge_timeout_s: float | None = None,
                 retry: RetryPolicy | None = None,
                 breaker: BreakerPolicy | None = None):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if queue_depth is not None and queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        if wedge_timeout_s is not None and wedge_timeout_s <= 0:
            raise ConfigurationError(
                f"wedge_timeout_s must be > 0, got {wedge_timeout_s}"
            )
        if isinstance(model, ModelRegistry):
            self.registry = model
        else:
            self.registry = ModelRegistry()
            self.registry.register(DEFAULT_ENDPOINT, model)
        self.policy = BatchPolicy(
            max_batch=max_batch, max_wait_ms=max_wait_ms,
            pad_to_multiple=pad_to_multiple,
            bucket_multiple=bucket_multiple,
        )
        self.worker_count = workers
        self.queue_depth = queue_depth
        self.batch_gate = batch_gate
        self.wedge_timeout_s = wedge_timeout_s
        self.retry = retry
        self._retry_rng = retry.rng() if retry is not None else None
        self._breaker_policy = breaker
        self._breakers: dict[str, CircuitBreaker] = {}
        import multiprocessing

        self._context = multiprocessing.get_context(start_method)
        # One lock guards workers, images, the current-generation map and
        # the in-flight table: the swap protocol's ordering guarantees
        # (publish broadcast before the generation map moves, tasks tagged
        # under the same lock) all hang off its critical sections.
        self._lock = threading.RLock()
        self._lifecycle = threading.Lock()
        self._stop = threading.Event()
        self._stop.set()  # not started yet
        self._closing = False
        self._workers: list[_Worker] = []
        self._images: dict[str, dict[int, object]] = {}
        self._current: dict[str, int] = {}
        self._inflight: dict[int, _Inflight] = {}
        self._inflight_cv = threading.Condition(self._lock)
        # Notified when the supervisor installs a respawned worker, so a
        # dispatch that finds every worker dead can wait for the
        # replacement instead of failing a batch the respawn would have
        # served milliseconds later.
        self._workers_cv = threading.Condition(self._lock)
        self._lanes: dict[str, _Lane] = {}
        # Unresolved requests per endpoint (queued + dispatched): the
        # admission-control counter queue_depth bounds. Incremented at
        # submit, released by each future's done callback — so the bound
        # covers work a wedged worker is sitting on, not just the queue.
        self._outstanding: dict[str, int] = {}
        self._collector: threading.Thread | None = None
        self._wake_r = None
        self._wake_w = None
        self._next_worker = 0
        self._ids = itertools.count()
        self._batch_ids = itertools.count()
        # Pending retry timers (timer -> (endpoint, items, exc)), plus a
        # count of retries mid-redispatch, both folded into stop()'s
        # drain condition so shutdown cannot slip between a timer firing
        # and its batch landing in _inflight.
        self._retry_timers: dict = {}
        self._retry_active = 0
        self._stats_lock = threading.Lock()
        self._endpoint_stats: dict[str, dict[str, int]] = {}
        self._crashes = 0
        self._wedged = 0
        self._respawns = 0

    #: Per-endpoint counter names; stats() sums them for the flat view.
    _STAT_KEYS = ("requests", "responses", "batches", "batched_rows",
                  "padded_rows", "errors", "cancelled", "shed", "expired",
                  "rejected", "retries")

    def _bump(self, endpoint: str, **deltas) -> None:
        with self._stats_lock:
            counts = self._endpoint_stats.setdefault(
                endpoint, dict.fromkeys(self._STAT_KEYS, 0)
            )
            for key, delta in deltas.items():
                counts[key] += delta

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return not self._stop.is_set()

    def start(self) -> "MPInferenceServer":
        """Publish every endpoint to shared memory and spawn the workers."""
        with self._lifecycle:
            if self.running:
                return self
            self._closing = False
            images: dict[str, dict[int, object]] = {}
            current: dict[str, int] = {}
            for endpoint in self.registry.endpoints():
                net, generation = self.registry.snapshot(endpoint)
                images[endpoint] = {
                    generation: publish_image(endpoint, net, generation)
                }
                current[endpoint] = generation
            self._wake_r, self._wake_w = self._context.Pipe(duplex=False)
            with self._lock:
                self._images = images
                self._current = current
                self._workers = [
                    self._spawn(index) for index in range(self.worker_count)
                ]
                self._stop.clear()
            self._collector = threading.Thread(
                target=self._collect, name="repro-mp-collector", daemon=True,
            )
            self._collector.start()
            self.registry.subscribe(self._on_publish)
        return self

    def stop(self, drain_timeout_s: float | None = None) -> None:
        """Drain lanes, settle in-flight batches, stop and reap workers.

        Every request admitted before ``stop()`` resolves: lanes drain
        their queues (dispatching final batches), the collector settles
        every in-flight future, and only then are workers told to exit.
        Shared segments are unlinked last.

        ``drain_timeout_s`` bounds the wait for in-flight batches; if a
        worker is wedged (stuck kernel, held fault-injection gate) past
        it, the remaining workers are killed and their batches fail with
        :class:`~repro.errors.WorkerCrashedError` instead of hanging
        shutdown forever. ``None`` waits indefinitely.
        """
        with self._lifecycle:
            if not self.running:
                return
            self.registry.unsubscribe(self._on_publish)
            with self._lock:
                self._stop.set()
                lanes = list(self._lanes.values())
            for lane in lanes:
                lane.batcher.put(_WAKE, force=True)
            for lane in lanes:
                lane.thread.join()
            with self._inflight_cv:
                # Pending retry timers and mid-redispatch retries count as
                # in-flight work: a retry that was promised must either
                # land or fail, never be dropped by shutdown.
                drained = self._inflight_cv.wait_for(
                    lambda: (not self._inflight
                             and not self._retry_timers
                             and self._retry_active == 0),
                    timeout=drain_timeout_s,
                )
                self._closing = True
                pending_retries = list(self._retry_timers.items())
                self._retry_timers.clear()
                workers = list(self._workers)
            # Retries still pending past the drain window fail fast with
            # the fault that triggered them (the timer's own firing would
            # do the same now that _closing is set; claiming them here
            # just resolves the futures without waiting for the timers).
            for timer, (endpoint, items, exc) in pending_retries:
                timer.cancel()
                self._fail(endpoint, items, exc)
            if not drained:
                # _closing is already set, so the collector fails the
                # orphaned batches without respawning replacements.
                for worker in workers:
                    if worker.alive:
                        worker.process.kill()
                with self._inflight_cv:
                    self._inflight_cv.wait_for(
                        lambda: not self._inflight,
                        timeout=_JOIN_TIMEOUT_S,
                    )
            for worker in workers:
                if worker.alive:
                    try:
                        with worker.send_mutex:
                            worker.task_conn.send(("stop",))
                    except (OSError, ValueError):
                        pass
            for worker in workers:
                worker.process.join(timeout=_JOIN_TIMEOUT_S)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=_JOIN_TIMEOUT_S)
            self._wake_collector()
            if self._collector is not None:
                self._collector.join()
                self._collector = None
            for worker in workers:
                worker.close_pipes()
            for conn in (self._wake_r, self._wake_w):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            self._wake_r = self._wake_w = None
            with self._lock:
                for generations in self._images.values():
                    for image in generations.values():
                        image.close_and_unlink()
                self._images = {}
                self._current = {}
                self._workers = []
                self._lanes.clear()

    def __enter__(self) -> "MPInferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path --------------------------------------------------------
    def submit(self, x, endpoint: str = DEFAULT_ENDPOINT,
               deadline_ms: float | None = None) -> Future:
        """Enqueue one sample; returns a Future of
        :class:`~repro.serving.server.InferenceResponse`.

        Raises :class:`~repro.errors.QueueFullError` immediately when the
        endpoint's admission queue (``queue_depth``) is full — the shed
        path — :class:`~repro.errors.CircuitOpenError` while the
        endpoint's circuit breaker (if configured) is open, and
        :class:`~repro.errors.ShapeError` on a malformed sample.
        ``deadline_ms`` sets a relative deadline; a request that cannot
        be served in time fails with
        :class:`~repro.errors.DeadlineExceededError` instead of occupying
        a batch (the deadline travels to the worker with the task).
        """
        net, _ = self.registry.snapshot(endpoint)
        x = np.asarray(x, dtype=np.float64)
        check_sample_shape(x.shape, getattr(net, "input_sample_shape", None))
        now = time.monotonic()
        deadline = None if deadline_ms is None else now + deadline_ms / 1e3
        request = InferenceRequest(
            request_id=next(self._ids), endpoint=endpoint, x=x,
            enqueued_at=now, deadline=deadline,
        )
        future: Future = Future()
        breaker = self.breaker(endpoint)
        with self._lock:
            if not self.running:
                raise ServerClosedError(
                    "MPInferenceServer is not running; call start() or use "
                    "it as a context manager"
                )
            if breaker is not None:
                try:
                    breaker.admit()
                except Exception:
                    self._bump(endpoint, rejected=1)
                    raise
            if (self.queue_depth is not None
                    and self._outstanding.get(endpoint, 0)
                    >= self.queue_depth):
                self._bump(endpoint, shed=1)
                raise QueueFullError(
                    f"endpoint {endpoint!r} already has "
                    f"{self.queue_depth} unresolved requests; shedding "
                    "instead of queueing"
                )
            self._outstanding[endpoint] = (
                self._outstanding.get(endpoint, 0) + 1
            )
            future.add_done_callback(
                lambda f, e=endpoint, b=breaker: self._request_done(e, b, f)
            )
            self._lane(endpoint).batcher.put((request, future))
        self._bump(endpoint, requests=1)
        return future

    def breaker(self, endpoint: str) -> CircuitBreaker | None:
        """The endpoint's circuit breaker; ``None`` when unconfigured."""
        if self._breaker_policy is None:
            return None
        with self._lock:
            cb = self._breakers.get(endpoint)
            if cb is None:
                cb = self._breakers[endpoint] = CircuitBreaker(
                    self._breaker_policy
                )
            return cb

    def _request_done(self, endpoint: str, breaker, future: Future) -> None:
        # Every admitted request releases its admission slot and (when a
        # breaker is configured) votes on the endpoint's health: any
        # exception — worker fault, deadline miss — counts as a failure,
        # so sustained expiry alone can open the circuit.
        self._release(endpoint)
        if breaker is not None and not future.cancelled():
            breaker.record(future.exception() is None)

    def _release(self, endpoint: str) -> None:
        with self._lock:
            count = self._outstanding.get(endpoint, 0)
            if count > 0:
                self._outstanding[endpoint] = count - 1

    def infer(self, x, endpoint: str = DEFAULT_ENDPOINT,
              timeout: float | None = None,
              deadline_ms: float | None = None) -> np.ndarray:
        """Synchronous single-sample convenience: submit and wait."""
        return self.submit(x, endpoint, deadline_ms=deadline_ms) \
            .result(timeout).y

    def submit_many(self, samples, endpoint: str = DEFAULT_ENDPOINT,
                    deadline_ms: float | None = None) -> list[Future]:
        """Enqueue a burst of samples; returns their futures in order."""
        return [
            self.submit(x, endpoint, deadline_ms=deadline_ms)
            for x in samples
        ]

    def infer_many(self, samples, endpoint: str = DEFAULT_ENDPOINT,
                   timeout: float | None = None,
                   deadline_ms: float | None = None) -> list[np.ndarray]:
        """Submit a burst, wait under **one shared deadline**, return ys."""
        futures = self.submit_many(samples, endpoint, deadline_ms=deadline_ms)
        return [r.y for r in resolve_many(futures, timeout)]

    # -- hot swap ------------------------------------------------------------
    def swap_from_store(self, endpoint: str, path, *, mmap: bool = True):
        """Hot-swap ``endpoint`` from a stored artifact, atomically.

        Delegates to
        :meth:`~repro.serving.registry.ModelRegistry.swap_from_store`;
        the registry subscription publishes the new generation's shared
        image to every worker before any task is tagged with it, so each
        response is computed entirely on one generation.
        """
        return self.registry.swap_from_store(endpoint, path, mmap=mmap)

    def _on_publish(self, endpoint: str, network, generation: int) -> None:
        """Registry subscription: share a newly published generation.

        Ordering is the heart of cross-process swap atomicity: the image
        is broadcast into every worker's task pipe *before* the current-
        generation map moves, and tasks are tagged under the same lock —
        so by pipe FIFO a worker always installs generation G before the
        first task tagged G arrives, and the retire message trails the
        last task of the old generation.
        """
        if not self.running:
            return
        image = publish_image(endpoint, network, generation)
        with self._lock:
            if not self.running or generation <= self._current.get(
                endpoint, -1
            ):
                # Two publishes can race here (subscription callbacks run
                # on their registry-publishing threads): if a newer
                # generation already landed, this image can never be
                # tagged by a task — drop it instead of moving the
                # endpoint backwards.
                image.close_and_unlink()
                return
            self._broadcast(("publish", image.descriptor))
            self._images.setdefault(endpoint, {})[generation] = image
            self._current[endpoint] = generation
            self._broadcast(("retire", endpoint, generation))
            self._maybe_unlink(endpoint)

    def _broadcast(self, message) -> None:
        # Caller holds self._lock, so this must NEVER block: a full task
        # pipe (large batches queued) or a dispatcher mid-send would
        # otherwise deadlock the collector. Both broadcast kinds are
        # droppable — tasks carry their own image descriptor, so a missed
        # "publish" just means the worker attaches on first use, and
        # "retire" thresholds are cumulative, so the next one that lands
        # closes everything an earlier dropped one would have. Skip any
        # worker whose pipe is busy or not writable.
        for worker in self._workers:
            if not worker.alive:
                continue
            if not worker.send_mutex.acquire(blocking=False):
                continue
            try:
                if not _writable(worker.task_conn):
                    continue
                worker.task_conn.send(message)
            except (OSError, ValueError):
                pass
            finally:
                worker.send_mutex.release()

    def _maybe_unlink(self, endpoint: str) -> None:
        # Caller holds self._lock. A superseded image can be unlinked once
        # no dispatched batch still references its generation: at that
        # point every worker that ever ran a task on it has already
        # attached (it had to, to produce the reply), and workers that
        # never will are free to ignore the stale publish message.
        current = self._current.get(endpoint)
        generations = self._images.get(endpoint, {})
        referenced = {
            inflight.generation for inflight in self._inflight.values()
            if inflight.endpoint == endpoint
        }
        for generation in sorted(generations):
            if generation >= current or generation in referenced:
                continue
            generations.pop(generation).close_and_unlink()

    # -- lanes and dispatch --------------------------------------------------
    def _lane(self, endpoint: str) -> _Lane:
        with self._lock:
            lane = self._lanes.get(endpoint)
            if lane is None:
                # No batcher-level max_pending: admission control lives in
                # submit()'s outstanding counter, which also covers
                # dispatched batches a wedged worker is sitting on.
                batcher = MicroBatcher(
                    self.policy,
                    expired=self._is_expired, on_expired=self._expire_item,
                )
                thread = threading.Thread(
                    target=self._lane_loop, args=(endpoint, batcher),
                    name=f"repro-mp-lane-{endpoint}", daemon=True,
                )
                lane = _Lane(batcher, thread)
                self._lanes[endpoint] = lane
                thread.start()
            return lane

    @staticmethod
    def _is_expired(item) -> bool:
        if item is _WAKE:
            return False
        request, _ = item
        return (request.deadline is not None
                and time.monotonic() > request.deadline)

    def _expire_item(self, item) -> None:
        request, future = item
        self._bump(request.endpoint, expired=1)
        if future.set_running_or_notify_cancel():
            future.set_exception(DeadlineExceededError(
                f"request {request.request_id} missed its deadline before "
                "a batch could be formed"
            ))

    def _lane_loop(self, endpoint: str, batcher: MicroBatcher) -> None:
        while True:
            if self._stop.is_set() and batcher.pending() == 0:
                return
            batch = batcher.next_batch(timeout=0.05)
            if not batch:
                continue
            closed = time.monotonic()
            items = [item for item in batch if item is not _WAKE]
            if not items:
                continue
            self._dispatch(endpoint, items, closed)

    def _dispatch(self, endpoint: str, items: list, closed: float,
                  attempt: int = 1, claimed: bool = False) -> None:
        # Mirror of the thread server's _run_batch grouping: wildcard-axis
        # endpoints sub-batch per concrete shape, and sequence endpoints
        # (a declared time_axis) group by *length bucket* so ragged
        # requests batch together, padded within their bucket only.
        net, _ = self.registry.snapshot(endpoint)
        time_axis = getattr(net, "time_axis", None)
        groups: dict[tuple, list] = {}
        for item in items:
            key = bucket_key(
                item[0].x.shape, time_axis, self.policy.bucket_multiple
            )
            groups.setdefault(key, []).append(item)
        for group in groups.values():
            self._dispatch_group(
                endpoint, group, closed, time_axis, attempt, claimed
            )

    def _dispatch_group(self, endpoint: str, items: list, closed: float,
                        time_axis: int | None, attempt: int = 1,
                        claimed: bool = False) -> None:
        # Claim futures before any work, exactly like the thread server:
        # once RUNNING, a client cancel() can no longer race the scatter.
        # Retry redispatches (claimed=True) skip this: their futures went
        # RUNNING on the first attempt.
        if claimed:
            live = list(items)
        else:
            live = [
                (request, future) for request, future in items
                if future.set_running_or_notify_cancel()
            ]
            if len(live) < len(items):
                self._bump(endpoint, cancelled=len(items) - len(live))
        if not live:
            return
        requests = [request for request, _ in live]
        try:
            if time_axis is not None:
                x, rows, lengths = assemble_sequence_batch(
                    [request.x for request in requests], time_axis,
                    self.policy.bucket_multiple,
                    self.policy.pad_to_multiple,
                )
            else:
                x, rows = assemble_batch(
                    [request.x for request in requests],
                    self.policy.pad_to_multiple,
                )
                lengths = None
        except BaseException as exc:
            self._fail(endpoint, live, exc)
            return
        # The batch deadline is the latest member deadline: members that
        # had already expired were dropped at batch formation, so if the
        # worker finds this deadline passed, *every* member has missed.
        deadlines = [request.deadline for request in requests]
        deadline = None if any(d is None for d in deadlines) \
            else max(deadlines)
        give_up = time.monotonic() + _JOIN_TIMEOUT_S
        while True:
            with self._lock:
                generation = self._current.get(endpoint)
                if generation is None:
                    self._fail(endpoint, live, ConfigurationError(
                        f"endpoint {endpoint!r} has no published image"
                    ))
                    return
                descriptor = self._images[endpoint][generation].descriptor
                worker = self._pick_worker()
                while worker is None:
                    # Every worker is dead. The supervisor respawns each
                    # crashed worker unless the server is closing, so wait
                    # (lock released) for the replacement rather than
                    # failing a batch it would serve moments later.
                    if self._closing or not self._workers_cv.wait(
                        timeout=max(0.0, give_up - time.monotonic())
                    ):
                        self._fail(endpoint, live, WorkerCrashedError(
                            "no live worker process to run the batch on"
                        ))
                        return
                    worker = self._pick_worker()
                batch_id = next(self._batch_ids)
                worker.load += 1
                self._inflight[batch_id] = _Inflight(
                    endpoint, generation, live, rows, x.shape[0] - rows,
                    closed, worker.index, attempt,
                    lengths=lengths, time_axis=time_axis,
                )
            # The send happens OUTSIDE the server lock: a batch payload
            # can exceed the pipe buffer, and a blocking send under the
            # lock deadlocks against the collector (which needs the lock
            # to settle the reply the worker is trying to hand us).
            # Registering in-flight state first is safe — the collector
            # cannot see a reply for this batch before the send lands,
            # and the registration pins the image against unlinking.
            try:
                with worker.send_mutex:
                    worker.task_conn.send((
                        "task", batch_id, endpoint, generation, x,
                        deadline, descriptor,
                    ))
                return
            except (OSError, ValueError):
                # The collector reaps marked workers explicitly; wake it
                # rather than relying on the sentinel, which it may
                # already have stopped watching.
                with self._lock:
                    worker.alive = False
                    reclaimed = self._inflight.pop(batch_id, None)
                    if reclaimed is not None and worker.load > 0:
                        worker.load -= 1
                self._wake_collector()
                if reclaimed is None:
                    # The collector reaped the dead worker between our
                    # send failing and the lock: it already failed or
                    # retried these items. Nothing left to redispatch.
                    return

    def _pick_worker(self):
        # Caller holds self._lock: least-loaded live worker, with a
        # rotating starting offset so equal-load ties still spread
        # round-robin across the pool. "Load" is dispatched-but-unsettled
        # batches, so a worker grinding through a slow batch (or quietly
        # wedging) stops attracting new work while its siblings idle.
        count = len(self._workers)
        if count == 0:
            return None
        best = None
        for offset in range(count):
            worker = self._workers[(self._next_worker + offset) % count]
            if worker.alive and (best is None or worker.load < best.load):
                best = worker
        self._next_worker += 1
        return best

    def _worker_in_slot(self, index: int):
        # Caller holds self._lock.
        for worker in self._workers:
            if worker.index == index:
                return worker
        return None

    def _fail(self, endpoint: str, items: list, exc: BaseException,
              count_errors: bool = True) -> None:
        if count_errors:
            self._bump(endpoint, errors=len(items))
        for _, future in items:
            try:
                future.set_exception(exc)
            except Exception:
                pass

    # -- retries -------------------------------------------------------------
    def _fail_or_retry(self, inflight: _Inflight, exc: BaseException) -> None:
        """Fail an orphaned batch — or transparently redispatch it.

        With a :class:`RetryPolicy` configured and the fault retryable
        (a crash or wedge, not a deterministic error), every request
        whose deadline still admits another attempt is rescheduled after
        the policy's jittered backoff; the rest fail with the original
        fault. Called by :meth:`_reap` on the collector thread.
        """
        policy = self.retry
        items = inflight.items
        if policy is None or not policy.retryable(exc):
            self._fail(inflight.endpoint, items, exc)
            return
        now = time.monotonic()
        attempt = inflight.attempt + 1
        retry_items, fail_items, latest = [], [], None
        with self._lock:
            if self._closing or not self.running:
                fail_items = items
            else:
                for request, future in items:
                    at = policy.next_attempt_at(
                        attempt, now, request.deadline, self._retry_rng
                    )
                    if at is None:
                        fail_items.append((request, future))
                    else:
                        retry_items.append((request, future))
                        latest = at if latest is None else max(latest, at)
        if fail_items:
            self._fail(inflight.endpoint, fail_items, exc)
        if not retry_items:
            return
        self._bump(inflight.endpoint, retries=len(retry_items))
        self._schedule_retry(
            inflight.endpoint, retry_items, inflight.closed, attempt,
            max(0.0, latest - now), exc,
        )

    def _schedule_retry(self, endpoint: str, items: list, closed: float,
                        attempt: int, delay: float,
                        exc: BaseException) -> None:
        timer_box: list[threading.Timer] = []

        def fire() -> None:
            with self._inflight_cv:
                claim = self._retry_timers.pop(timer_box[0], None)
                if claim is None:
                    return  # stop() claimed and failed these requests
                aborted = self._closing or not self.running
                if not aborted:
                    self._retry_active += 1
            if aborted:
                # A retry landing after stop() began fails fast with the
                # original fault instead of dispatching into a dying
                # worker pool.
                self._fail(endpoint, items, exc)
                return
            try:
                self._dispatch(endpoint, items, closed, attempt=attempt,
                               claimed=True)
            finally:
                with self._inflight_cv:
                    self._retry_active -= 1
                    self._inflight_cv.notify_all()

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        timer_box.append(timer)
        with self._inflight_cv:
            self._retry_timers[timer] = (endpoint, items, exc)
        timer.start()

    # -- worker supervision --------------------------------------------------
    def _spawn(self, index: int) -> _Worker:
        # Caller holds self._lock (or is in single-threaded start()).
        # Dedicated pipe pair per worker: a SIGKILLed child cannot corrupt
        # state shared with its siblings, unlike a common mp.Queue whose
        # feeder lock dies with whoever held it.
        task_recv, task_send = self._context.Pipe(duplex=False)
        result_recv, result_send = self._context.Pipe(duplex=False)
        descriptors = [
            self._images[endpoint][generation].descriptor
            for endpoint, generation in self._current.items()
        ]
        process = self._context.Process(
            target=_worker_main,
            args=(task_recv, result_send, descriptors, self.batch_gate,
                  self.wedge_timeout_s is not None),
            name=f"repro-mp-worker-{index}",
            daemon=True,
        )
        process.start()
        # Close the child's ends in the parent so EOF propagates when the
        # child dies.
        task_recv.close()
        result_send.close()
        return _Worker(index, process, task_send, result_recv)

    def _wake_collector(self) -> None:
        if self._wake_w is not None:
            try:
                self._wake_w.send(b"w")
            except (OSError, ValueError):
                pass

    def _collect(self) -> None:
        """Collector thread: results, crash detection, respawn — one loop.

        ``connection.wait`` multiplexes every worker's result pipe, every
        worker's process sentinel, and a wake pipe. Result messages are
        always drained before a death is acted on, so replies a worker
        managed to send before dying are still honoured.
        """
        while True:
            with self._lock:
                by_conn = {
                    w.result_conn: w for w in self._workers if w.alive
                }
                by_sentinel = {
                    w.process.sentinel: w for w in self._workers if w.alive
                }
                marked = [
                    w for w in self._workers if not w.alive and not w.reaped
                ]
                closing = self._closing
            # A dispatcher that hit a broken pipe marked the worker dead
            # already — the if-alive filters above exclude it from the wait
            # set, so reap it here or its in-flight batches (and its
            # respawn) would be lost.
            for worker in marked:
                self._drain_results(worker)
                self._reap(worker)
            if closing and not by_conn:
                return
            self._check_wedged()
            waitables = (
                list(by_conn) + list(by_sentinel) + [self._wake_r]
            )
            # With the watchdog armed, wake often enough that a wedged
            # worker is detected well within one wedge_timeout_s even if
            # no pipe traffic arrives meanwhile.
            wait_timeout = 1.0 if self.wedge_timeout_s is None \
                else min(1.0, self.wedge_timeout_s / 4)
            ready = connection.wait(waitables, timeout=wait_timeout)
            dead = []
            for obj in ready:
                if obj is self._wake_r:
                    try:
                        while self._wake_r.poll():
                            self._wake_r.recv()
                    except (EOFError, OSError):
                        pass
                    continue
                worker = by_conn.get(obj)
                if worker is not None:
                    if not self._drain_results(worker):
                        dead.append(worker)
                    continue
                worker = by_sentinel.get(obj)
                if worker is not None and worker not in dead:
                    dead.append(worker)
            for worker in dead:
                self._drain_results(worker)
                self._reap(worker)
            with self._lock:
                if self._closing and not any(
                    w.alive for w in self._workers
                ):
                    return

    def _check_wedged(self) -> None:
        """Watchdog scan: SIGKILL any worker whose batch overran the timeout.

        A batch counts as running from its ``("begin", ...)`` heartbeat.
        The kill turns a wedge into an ordinary supervised death — the
        sentinel fires, :meth:`_reap` fails (or retries) the batches with
        :class:`~repro.errors.WorkerWedgedError` and respawns the worker
        from the shared images.
        """
        timeout = self.wedge_timeout_s
        if timeout is None:
            return
        now = time.monotonic()
        victims = []
        with self._lock:
            for inflight in self._inflight.values():
                if (inflight.began_at is None
                        or now - inflight.began_at < timeout):
                    continue
                worker = self._worker_in_slot(inflight.worker_index)
                if (worker is not None and worker.alive
                        and not worker.wedged):
                    # Marked before the kill so _reap can tell a wedge
                    # from an ordinary crash (and so one scan cannot
                    # queue duplicate kills).
                    worker.wedged = True
                    victims.append(worker)
        for worker in victims:
            worker.process.kill()

    def _drain_results(self, worker: _Worker) -> bool:
        """Deliver every queued reply from ``worker``; False on EOF."""
        while True:
            try:
                if not worker.result_conn.poll():
                    return True
                message = worker.result_conn.recv()
            except (EOFError, OSError):
                return False
            self._settle(message)

    def _settle(self, message) -> None:
        kind, batch_id = message[0], message[1]
        if kind == "begin":
            # Wedge-watchdog heartbeat: the worker entered the forward.
            with self._lock:
                inflight = self._inflight.get(batch_id)
                if inflight is not None:
                    inflight.began_at = time.monotonic()
            return
        with self._inflight_cv:
            inflight = self._inflight.pop(batch_id, None)
            if inflight is not None:
                self._maybe_unlink(inflight.endpoint)
                worker = self._worker_in_slot(inflight.worker_index)
                if worker is not None and worker.load > 0:
                    worker.load -= 1
            self._inflight_cv.notify_all()
        if inflight is None:
            return
        if kind == "done":
            y = message[2][:inflight.rows]
            if y.shape[0] != len(inflight.items):
                self._fail(inflight.endpoint, inflight.items, RuntimeError(
                    f"endpoint {inflight.endpoint!r} returned {y.shape[0]} "
                    f"output rows for a batch of {len(inflight.items)} "
                    "requests"
                ))
                return
            done = time.monotonic()
            lengths, time_axis = inflight.lengths, inflight.time_axis
            for index, (row, (request, future)) in enumerate(
                zip(y, inflight.items)
            ):
                out = row
                if (
                    lengths is not None
                    and out.ndim > time_axis
                    and out.shape[time_axis] != lengths[index]
                ):
                    # Within-bucket zero padding is internal: slice the
                    # response back to the request's true length. A model
                    # that collapses the time axis has nothing to slice.
                    slicer = [slice(None)] * out.ndim
                    slicer[time_axis] = slice(0, lengths[index])
                    out = out[tuple(slicer)]
                future.set_result(InferenceResponse(
                    request_id=request.request_id,
                    endpoint=inflight.endpoint,
                    y=out.copy(),
                    batch_size=inflight.rows,
                    generation=inflight.generation,
                    queued_ms=(inflight.closed - request.enqueued_at) * 1e3,
                    latency_ms=(done - request.enqueued_at) * 1e3,
                ))
            self._bump(
                inflight.endpoint, responses=inflight.rows, batches=1,
                batched_rows=inflight.rows, padded_rows=inflight.padded,
            )
        elif kind == "expired":
            self._bump(inflight.endpoint, expired=len(inflight.items))
            # Deadline drops are accounted under "expired", not "errors".
            self._fail(inflight.endpoint, inflight.items,
                       DeadlineExceededError(
                           "the batch deadline passed before the worker "
                           "could run it"
                       ), count_errors=False)
        else:  # "error"
            self._fail(inflight.endpoint, inflight.items, message[2])

    def _reap(self, worker: _Worker) -> None:
        """A worker died: fail its in-flight batches fast, then respawn."""
        with self._inflight_cv:
            if worker.reaped:
                return
            worker.reaped = True
            worker.alive = False
            orphaned = [
                (batch_id, inflight)
                for batch_id, inflight in self._inflight.items()
                if inflight.worker_index == worker.index
            ]
            for batch_id, _ in orphaned:
                del self._inflight[batch_id]
            endpoints = {inflight.endpoint for _, inflight in orphaned}
            for endpoint in endpoints:
                self._maybe_unlink(endpoint)
            self._inflight_cv.notify_all()
            closing = self._closing
        worker.process.join(timeout=_JOIN_TIMEOUT_S)
        exitcode = worker.process.exitcode
        if worker.wedged:
            exc = WorkerWedgedError(
                f"worker process {worker.index} exceeded wedge_timeout_s="
                f"{self.wedge_timeout_s} inside a batch and was killed by "
                "the watchdog"
            )
        else:
            exc = WorkerCrashedError(
                f"worker process {worker.index} died (exit code "
                f"{exitcode}) with the batch in flight"
            )
        for _, inflight in orphaned:
            self._fail_or_retry(inflight, exc)
        if closing:
            return
        with self._stats_lock:
            if worker.wedged:
                self._wedged += 1
            else:
                self._crashes += 1
        worker.close_pipes()
        with self._lock:
            if self._closing:
                return
            replacement = self._spawn(worker.index)
            slot = self._workers.index(worker)
            self._workers[slot] = replacement
            self._workers_cv.notify_all()
        with self._stats_lock:
            self._respawns += 1

    # -- stats ---------------------------------------------------------------
    def stats(self, endpoint: str | None = None) -> dict[str, float]:
        """Serving counters: flat totals, or one endpoint's breakdown.

        With ``endpoint`` given, returns that endpoint's counters
        (``requests``/``responses``/``shed``/``expired``/``rejected``/
        ``retries``/…) plus its ``mean_batch_size``. Without, returns
        the familiar flat summary — every per-endpoint counter summed —
        extended with the supervisor totals (``crashes``, ``wedged``,
        ``respawns``, ``workers``) and a ``per_endpoint`` mapping of the
        raw breakdowns. ``shed`` counts ``QueueFullError`` fast rejects,
        ``rejected`` counts ``CircuitOpenError`` fast rejects,
        ``expired`` counts deadline drops (scheduler- and worker-side),
        ``retries`` counts transparently redispatched requests.
        """
        with self._stats_lock:
            if endpoint is not None:
                counts = dict(self._endpoint_stats.get(
                    endpoint, dict.fromkeys(self._STAT_KEYS, 0)
                ))
                batches = counts["batches"]
                counts["mean_batch_size"] = (
                    counts["batched_rows"] / batches if batches else 0.0
                )
                return counts
            totals = dict.fromkeys(self._STAT_KEYS, 0)
            per_endpoint = {}
            for name, counts in self._endpoint_stats.items():
                per_endpoint[name] = dict(counts)
                for key in self._STAT_KEYS:
                    totals[key] += counts[key]
            batches = totals["batches"]
            batched_rows = totals.pop("batched_rows")
            totals.pop("padded_rows")
            totals.update(
                crashes=self._crashes,
                wedged=self._wedged,
                respawns=self._respawns,
                workers=len(self._workers),
                mean_batch_size=(
                    batched_rows / batches if batches else 0.0
                ),
                per_endpoint=per_endpoint,
            )
            return totals

    def reset_stats(self) -> None:
        """Zero every counter — per-endpoint breakdowns and supervisor
        totals alike — e.g. between chaos-soak phases or bench rounds."""
        with self._stats_lock:
            self._endpoint_stats.clear()
            self._crashes = self._wedged = self._respawns = 0

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"MPInferenceServer({state}, workers={self.worker_count}, "
            f"endpoints={self.registry.endpoints()}, "
            f"queue_depth={self.queue_depth})"
        )
