"""Named model endpoints with atomic hot swap.

A serving process rarely holds one network: the CirCNN stack alone wants
the float FC model, the CONV model, and one or more fixed-point
(:func:`repro.quant.quantized_view`) variants live at the same time, each
behind a stable endpoint name. :class:`ModelRegistry` owns that mapping
and makes replacement *atomic*: a batch resolves its network exactly once
(:meth:`ModelRegistry.snapshot`), so a concurrent :meth:`swap` — a weight
push, a requantisation (:func:`repro.quant.requantize_endpoint`), an
execution re-plan (:meth:`ModelRegistry.apply_plan`), a rollback — is
observed entirely or not at all, never as a mix of old and new layers. Old networks are not torn down: in-flight batches finish on
their snapshot, and the spectral cache's weak references let the retired
generation be garbage-collected once the last batch drops it.
"""

from __future__ import annotations

import logging
import threading

from repro.errors import ConfigurationError

logger = logging.getLogger(__name__)

DEFAULT_ENDPOINT = "default"


class ModelRegistry:
    """Thread-safe mapping of endpoint names to compiled networks.

    Each endpoint carries a monotonically increasing *generation* counter
    (bumped on every :meth:`swap`), which serving responses echo so
    clients can tell which weight generation produced an answer.
    """

    def __init__(self) -> None:
        self._endpoints: dict[str, tuple[object, int]] = {}
        self._lock = threading.RLock()
        self._subscribers: list = []
        # Brownout ladders: endpoint -> ordered variant list (level 0 =
        # full precision) and the level currently being served.
        self._ladders: dict[str, list] = {}
        self._ladder_levels: dict[str, int] = {}
        # Execution-plan state: endpoint -> (source network, applied
        # ExecutionPlan, the planned view being served). Recorded by
        # apply_plan and invalidated whenever a foreign network is
        # swapped in (_sync_plan_state).
        self._plan_states: dict[str, tuple] = {}

    def subscribe(self, callback) -> None:
        """Call ``callback(name, network, generation)`` on every publish.

        Fires after each :meth:`register` and :meth:`swap` (and therefore
        after :meth:`load_endpoint` / :meth:`swap_from_store`), outside
        the registry lock, on the publishing thread. This is how a
        secondary serving plane — e.g. the multi-process server's
        shared-memory images — tracks weight pushes made directly on the
        registry without polling generations.
        """
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a :meth:`subscribe` callback (missing ones are ignored)."""
        with self._lock:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    def _notify(self, name: str, network, generation: int) -> None:
        # A subscriber that raises must not abort the publish: the swap
        # has already landed (the registry dict moved before _notify), so
        # propagating would misreport a successful swap as failed — and
        # skipping the remaining subscribers would leave a secondary
        # serving plane (e.g. the MP server's shm images) silently stale.
        # Log and continue; every subscriber sees every publish.
        with self._lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(name, network, generation)
            except Exception:
                logger.exception(
                    "registry subscriber %r failed during publish of "
                    "endpoint %r generation %d; continuing",
                    callback, name, generation,
                )

    @staticmethod
    def _prepare(network, compile: bool):
        # "Has a spectral cache" is no longer proof of serving-readiness:
        # attach_spectral_cache() (training mode) attaches one without
        # freezing or warming. Compile unless every parameter is actually
        # frozen — i.e. compile_inference() ran and nothing thawed since.
        needs_compile = compile and hasattr(network, "compile_inference") and (
            getattr(network, "spectral_cache", None) is None
            or not all(
                getattr(p, "frozen", True)
                for p in getattr(network, "parameters", list)()
            )
        )
        if needs_compile:
            network.compile_inference()  # puts the network in eval mode
        elif hasattr(network, "eval"):
            # Already compiled (or compile=False): still force eval mode —
            # a compiled network that went back to training (fine-tuning)
            # must not serve training-mode forwards (dropout noise,
            # non-reentrant state).
            network.eval()
        return network

    def register(self, name: str, network, *, compile: bool = True):
        """Add a new endpoint; raises if ``name`` is already taken.

        By default the network is compiled for serving
        (``compile_inference()``) unless it is already fully compiled —
        a warm spectral cache *and* every parameter frozen (a cache
        attached by ``attach_spectral_cache()`` for training does not
        count). Returns the (compiled) network.
        """
        # Prepare outside the lock: compile_inference() computes every
        # weight spectrum eagerly, and holding the lock for that long
        # would stall snapshot() — i.e. all serving traffic — meanwhile.
        net = self._prepare(network, compile)
        with self._lock:
            if name in self._endpoints:
                raise ConfigurationError(
                    f"endpoint {name!r} is already registered; use swap() "
                    "to replace it atomically"
                )
            self._endpoints[name] = (net, 0)
            self._sync_ladder_level(name, net)
            self._sync_plan_state(name, net)
        self._notify(name, net, 0)
        return net

    def swap(self, name: str, network, *, compile: bool = True):
        """Atomically replace (or create) an endpoint's network.

        In-flight batches keep the snapshot they already resolved; every
        batch formed after the swap sees the new network. Returns the
        previous network (``None`` if the endpoint was fresh) so callers
        can keep it for rollback.
        """
        # Prepare (possibly compiling spectra) outside the lock, so
        # serving traffic keeps resolving snapshots of the old network
        # until the atomic dict update below.
        net = self._prepare(network, compile)
        with self._lock:
            old = self._endpoints.get(name)
            generation = old[1] + 1 if old is not None else 0
            self._endpoints[name] = (net, generation)
            self._sync_ladder_level(name, net)
            self._sync_plan_state(name, net)
        self._notify(name, net, generation)
        return old[0] if old is not None else None

    def _sync_ladder_level(self, name: str, net) -> None:
        # Caller holds self._lock. Keep the ladder level honest across
        # *any* swap: swapping in a ladder variant records its rung;
        # swapping in a foreign network invalidates the ladder entirely
        # (its variants degrade a model that is no longer being served).
        ladder = self._ladders.get(name)
        if ladder is None:
            return
        for level, variant in enumerate(ladder):
            if variant is net:
                self._ladder_levels[name] = level
                return
        del self._ladders[name]
        del self._ladder_levels[name]

    def _sync_plan_state(self, name: str, net) -> None:
        # Caller holds self._lock. Keep the recorded plan honest across
        # *any* swap: a foreign network means the recorded ExecutionPlan
        # no longer describes what is being served, so drop it.
        state = self._plan_states.get(name)
        if state is not None and state[2] is not net:
            del self._plan_states[name]

    # -- execution plans -----------------------------------------------------
    def apply_plan(self, name: str, plan, *, source=None):
        """Atomically re-plan an endpoint: build, seed, compile, swap.

        The generalised registry action behind
        :func:`repro.quant.requantize_endpoint`: builds an uncompiled
        :func:`repro.plan.planned_view` of ``source`` under ``plan``
        (per-layer backends, word lengths, activation quantisers), then
        compiles and :meth:`swap`\\ s it in — in-flight batches finish on
        their snapshot, new batches see the planned view, never a mix.

        **Zero-FFT-where-possible**: before compiling, every spectral
        layer whose planned weights and backend are identical to what the
        endpoint is currently serving has its spectrum *seeded* from the
        served network's warm cache
        (:meth:`~repro.circulant.spectral_cache.SpectralWeightCache.seed`)
        — a backend-only re-plan (the autotuner's common case) swaps with
        no new transforms for the unchanged layers, exactly like a
        brownout rung move.

        ``source`` defaults to the source recorded by the previous
        ``apply_plan`` (so successive re-plans derive from the same float
        original, not from an already-quantised view), falling back to
        the currently served network. The applied plan is retrievable
        via :meth:`applied_plan` until a foreign swap invalidates it.
        Returns the compiled planned view.
        """
        from repro.plan import planned_view

        with self._lock:
            state = self._plan_states.get(name)
            current = self._endpoints.get(name)
            served = current[0] if current is not None else None
        if source is None:
            source = state[0] if state is not None else served
            if source is None:
                raise ConfigurationError(
                    f"endpoint {name!r} is not registered; pass source= "
                    "to apply a plan to a fresh endpoint"
                )
        view = planned_view(source, plan, compile=False)
        from repro.circulant.spectral_cache import SpectralWeightCache

        cache = SpectralWeightCache()
        if served is not None and hasattr(served, "spectral_layers"):
            self._seed_unchanged_spectra(served, view, cache)
        view.compile_inference(cache)
        with self._lock:
            self._plan_states[name] = (source, plan, view)
        self.swap(name, view, compile=False)
        return view

    @staticmethod
    def _seed_unchanged_spectra(served, view, cache) -> None:
        # Positional pairing, mirroring ExecutionPlan's positional
        # layers. A structural mismatch (the served endpoint holds an
        # unrelated network) just skips seeding; compile recomputes.
        import numpy as np

        from repro.fftcore.backend import get_backend

        served_layers = list(served.spectral_layers())
        view_layers = list(view.spectral_layers())
        if len(served_layers) != len(view_layers):
            return
        for (_, old), (_, new) in zip(served_layers, view_layers):
            old_cache = getattr(old, "spectral_cache", None)
            if old_cache is None:
                continue
            backend_name = get_backend(new.backend).name
            if get_backend(old.backend).name != backend_name:
                continue
            old_value = old.weight.value
            new_value = new.weight.value
            if old_value.shape != new_value.shape:
                continue
            if not np.array_equal(old_value, new_value):
                continue
            cache.seed(
                new.weight,
                old_cache.spectrum(old.weight, old.backend),
                backend=backend_name,
            )

    def applied_plan(self, name: str):
        """The :class:`~repro.plan.ExecutionPlan` ``name`` serves under.

        ``None`` when no plan was applied — or when a later
        :meth:`swap` installed a network the plan does not describe.
        """
        with self._lock:
            state = self._plan_states.get(name)
            return state[1] if state is not None else None

    def load_endpoint(self, name: str, path, *, mmap: bool = True):
        """Register a new endpoint straight from a stored artifact.

        Loads the artifact at ``path`` via
        :func:`repro.store.load_artifact` — a serving-ready network whose
        weight spectra are seeded from disk, no FFT recomputed — and
        registers it under ``name`` (``compile=False``: the loaded
        network is already frozen and warm). Raises if ``name`` exists;
        use :meth:`swap_from_store` for a live endpoint. Returns the
        loaded network.
        """
        from repro.store import load_artifact

        net = load_artifact(path, mmap=mmap)
        return self.register(name, net, compile=False)

    def swap_from_store(self, name: str, path, *, mmap: bool = True):
        """Atomically hot-swap (or create) an endpoint from a stored artifact.

        The disk-to-serving weight push: load the artifact at ``path``
        (spectra seeded, zero FFTs), then :meth:`swap` it in — in-flight
        batches finish on their snapshot, the generation counter bumps,
        and the previous network is returned for rollback. Rolling back
        is the same call with the prior artifact's path, so a store
        directory of content-hash-versioned artifacts doubles as the
        rollback history (see ``docs/model_store.md``).
        """
        from repro.store import load_artifact

        net = load_artifact(path, mmap=mmap)
        old = self.swap(name, net, compile=False)
        return old

    # -- brownout ladders ----------------------------------------------------
    def set_ladder(self, name: str, variants, *, compile: bool = True):
        """Register ``name``'s degradation ladder: ordered fallback variants.

        ``variants[0]`` is the full-precision network (rung 0);
        ``variants[1:]`` are progressively cheaper fallbacks — typically
        lower-bit :func:`~repro.quant.quantized_view` twins or
        coarser-block models, the accuracy/cost knob of CirCNN fig 7c.
        Every variant is prepared for serving **now** (compiled unless
        already frozen and warm, exactly like :meth:`register`), so a
        later :meth:`serve_level` swap runs zero FFTs — the downshift
        under pressure is a pure atomic pointer move (plus, on the
        multi-process server, a memcpy into a fresh shared image).

        If ``name`` is not yet registered, rung 0 is registered for it;
        if it is, the current network must be one of ``variants`` (the
        ladder must describe what is actually being served). Returns the
        prepared variant list.
        """
        if len(variants) < 2:
            raise ConfigurationError(
                "a degradation ladder needs at least two variants (the "
                f"full-precision rung plus one fallback), got "
                f"{len(variants)}"
            )
        prepared = [self._prepare(net, compile) for net in variants]
        with self._lock:
            current = self._endpoints.get(name)
            if current is None:
                level = 0
            else:
                matches = [
                    i for i, net in enumerate(prepared)
                    if net is current[0]
                ]
                if not matches:
                    raise ConfigurationError(
                        f"endpoint {name!r} is serving a network that is "
                        "not in the ladder; include the currently served "
                        "network among the variants"
                    )
                level = matches[0]
            self._ladders[name] = prepared
            self._ladder_levels[name] = level
        if current is None:
            self.register(name, prepared[0], compile=False)
        return prepared

    def ladder(self, name: str) -> list:
        """The endpoint's registered variant list (raises if none)."""
        with self._lock:
            try:
                return list(self._ladders[name])
            except KeyError:
                raise ConfigurationError(
                    f"endpoint {name!r} has no degradation ladder; call "
                    "set_ladder() first"
                ) from None

    def ladder_level(self, name: str) -> int:
        """The rung currently being served (0 = full precision)."""
        with self._lock:
            if name not in self._ladders:
                raise ConfigurationError(
                    f"endpoint {name!r} has no degradation ladder; call "
                    "set_ladder() first"
                )
            return self._ladder_levels[name]

    def serve_level(self, name: str, level: int):
        """Atomically serve ladder rung ``level`` (idempotent per level).

        The brownout step: swaps the pre-compiled variant in through
        :meth:`swap` (``compile=False`` — the FFTs ran at
        :meth:`set_ladder` time), bumping the generation so in-flight
        batches stay old-or-new, never mixed. Returns the variant now
        being served.
        """
        with self._lock:
            ladder = self._ladders.get(name)
            if ladder is None:
                raise ConfigurationError(
                    f"endpoint {name!r} has no degradation ladder; call "
                    "set_ladder() first"
                )
            if not 0 <= level < len(ladder):
                raise ConfigurationError(
                    f"ladder level {level} out of range for endpoint "
                    f"{name!r} (0..{len(ladder) - 1})"
                )
            if self._ladder_levels[name] == level:
                return ladder[level]
            variant = ladder[level]
        # Swap outside this method's critical section work: swap() takes
        # the same reentrant lock for its atomic dict move and records
        # the new level via _sync_ladder_level.
        self.swap(name, variant, compile=False)
        return variant

    def snapshot(self, name: str):
        """``(network, generation)`` — the atomic unit a batch runs on."""
        with self._lock:
            try:
                return self._endpoints[name]
            except KeyError:
                known = ", ".join(sorted(self._endpoints)) or "<none>"
                raise ConfigurationError(
                    f"unknown endpoint {name!r}; registered: {known}"
                ) from None

    def get(self, name: str):
        """The network currently behind ``name``."""
        return self.snapshot(name)[0]

    def generation(self, name: str) -> int:
        """How many times ``name`` has been swapped since registration."""
        return self.snapshot(name)[1]

    def unregister(self, name: str):
        """Remove an endpoint; returns the network that was serving it."""
        with self._lock:
            net, _ = self.snapshot(name)
            del self._endpoints[name]
            self._ladders.pop(name, None)
            self._ladder_levels.pop(name, None)
            self._plan_states.pop(name, None)
        return net

    def endpoints(self) -> list[str]:
        """Sorted endpoint names."""
        with self._lock:
            return sorted(self._endpoints)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._endpoints

    def __len__(self) -> int:
        with self._lock:
            return len(self._endpoints)

    def __repr__(self) -> str:
        return f"ModelRegistry(endpoints={self.endpoints()})"
