"""Resilience policies: retries, circuit breaking, brownout degradation.

PR 7 gave the multi-process server crash *detection* — SIGKILL is
noticed, in-flight batches fail fast, the worker respawns. This module
is the layer above detection: policies that turn failures the runtime
can recover from into latency (or into cheaper answers) instead of
client-visible errors.

Three policies, each usable standalone and each wired through both
serving runtimes (:class:`~repro.serving.server.InferenceServer` and
:class:`~repro.serving.multiproc.MPInferenceServer`):

- :class:`RetryPolicy` — compiled inference is **idempotent** (a forward
  has no side effects and the shared images make re-execution
  bit-identical), so a batch failed by a crashed or wedged worker can be
  resubmitted transparently. Jittered exponential backoff, bounded by
  ``max_attempts`` and — because a retry that cannot finish in time is
  pure waste — never scheduled past the request deadline.
- :class:`CircuitBreaker` (configured by :class:`BreakerPolicy`) — a
  per-endpoint rolling window of request outcomes. When the
  error/expiry rate crosses the threshold the circuit *opens* and
  admission fast-rejects with :class:`~repro.errors.CircuitOpenError`
  (same synchronous contract as :class:`~repro.errors.QueueFullError`);
  after a cooldown, *half-open* probe requests decide whether the
  endpoint has healed.
- :class:`DegradationPolicy` / :class:`DegradationController` — the
  brownout ladder. CirCNN's own results (fig 7c) show block size and
  quantisation are a *tunable* accuracy/cost knob: a coarser, lower-bit
  variant of an endpoint serves several times more traffic at a 1–2 %
  accuracy cost. Endpoints register an ordered list of fallback
  variants (:meth:`~repro.serving.registry.ModelRegistry.set_ladder` —
  compiled once up front, so a downshift is a zero-FFT atomic swap via
  the existing generation machinery), and the controller monitors the
  shed + deadline-miss rate, stepping the endpoint **down** under
  sustained pressure and — with hysteresis, so it never flaps — back
  **up** when pressure subsides.

All three are pure policy objects: deterministic given their inputs
(injectable clocks, seedable jitter), so the tier-1 suite exercises
every state machine in-process without spawning a server.

See the "Resilience" section of ``docs/serving_runtime.md`` for the
failure-mode table (crash / wedge / overload / sustained pressure →
detection → action → client-visible outcome).
"""

from __future__ import annotations

import logging
import random
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    WorkerCrashedError,
)

logger = logging.getLogger(__name__)


# -- retries -----------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry budget for idempotent inference batches.

    ``max_attempts`` counts *total* attempts (first try included), so
    ``max_attempts=3`` allows two retries. Delays grow exponentially —
    ``backoff_ms * multiplier**retry`` — with up to ``jitter`` fraction
    of extra random delay so a burst of batches failed by one crash does
    not resubmit in lockstep. A retry is never scheduled past the
    request's deadline: :meth:`next_attempt_at` returns ``None`` when
    the backed-off attempt could not even *start* before the deadline,
    and the caller fails the request with the original error instead.

    ``retry_on`` lists the exception types worth retrying. The default
    is worker loss (:class:`~repro.errors.WorkerCrashedError`, which
    :class:`~repro.errors.WorkerWedgedError` subclasses) — transient by
    construction, since the supervisor respawns the worker. Model-level
    errors (shape mismatches etc.) are deterministic and excluded.

    ``seed`` pins the jitter stream for deterministic tests; ``None``
    draws from a fresh system-seeded generator per server.
    """

    max_attempts: int = 3
    backoff_ms: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_on: tuple = (WorkerCrashedError,)
    seed: int | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_ms < 0:
            raise ConfigurationError(
                f"backoff_ms must be >= 0, got {self.backoff_ms}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {self.jitter}"
            )
        if not self.retry_on:
            raise ConfigurationError("retry_on must name at least one type")

    def rng(self) -> random.Random:
        """A jitter stream for one server instance."""
        return random.Random(self.seed)

    def retryable(self, exc: BaseException) -> bool:
        """Whether ``exc`` is a transient failure worth retrying."""
        return isinstance(exc, self.retry_on)

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before attempt ``attempt`` (1 = first retry), seconds."""
        base = (self.backoff_ms / 1e3) * self.multiplier ** max(
            0, attempt - 1
        )
        return base * (1.0 + self.jitter * rng.random())

    def next_attempt_at(self, attempt: int, now: float,
                        deadline: float | None,
                        rng: random.Random) -> float | None:
        """Absolute time attempt ``attempt`` may start, or ``None``.

        ``None`` means the retry budget is exhausted (``attempt >
        max_attempts``) or the backed-off start would already be past
        ``deadline`` — the deadline-aware cutoff: a retry that cannot
        start in time is abandoned rather than scheduled.
        """
        if attempt > self.max_attempts:
            return None
        at = now + self.delay_s(attempt - 1, rng)
        if deadline is not None and at >= deadline:
            return None
        return at


# -- circuit breaker ---------------------------------------------------------
@dataclass(frozen=True)
class BreakerPolicy:
    """Knobs of the per-endpoint circuit breaker.

    The breaker watches a rolling ``window_s``-second window of request
    outcomes (success vs error/expiry). Once at least ``min_requests``
    outcomes are in the window and the failure fraction reaches
    ``failure_threshold``, the circuit opens: admission fast-rejects
    with :class:`~repro.errors.CircuitOpenError` for ``cooldown_s``
    seconds. After the cooldown the breaker goes *half-open* and admits
    up to ``half_open_probes`` probe requests: if every probe succeeds
    the circuit closes (window reset); any probe failure re-opens it for
    another cooldown.
    """

    window_s: float = 10.0
    min_requests: int = 10
    failure_threshold: float = 0.5
    cooldown_s: float = 5.0
    half_open_probes: int = 1

    def __post_init__(self):
        if self.window_s <= 0:
            raise ConfigurationError(
                f"window_s must be > 0, got {self.window_s}"
            )
        if self.min_requests < 1:
            raise ConfigurationError(
                f"min_requests must be >= 1, got {self.min_requests}"
            )
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1], got "
                f"{self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got "
                f"{self.half_open_probes}"
            )


class CircuitBreaker:
    """Rolling-window circuit breaker for one endpoint.

    Thread-safe; both serving runtimes call :meth:`admit` synchronously
    at ``submit()`` and :meth:`record` from each future's done callback.
    The ``clock`` parameter (default ``time.monotonic``) makes the state
    machine deterministic under test.

    States: ``"closed"`` (normal; outcomes accumulate in the window),
    ``"open"`` (admission fast-rejects until the cooldown elapses),
    ``"half-open"`` (a bounded number of probes admitted; their outcomes
    decide). Outcome recording is intentionally permissive about
    ordering — a late callback from a request admitted before the state
    changed is just another sample, never an error.
    """

    def __init__(self, policy: BreakerPolicy | None = None, *,
                 clock=time.monotonic):
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._window: deque[tuple[float, bool]] = deque()
        self._opened_at = 0.0
        self._probes_admitted = 0
        self._probe_successes = 0
        #: Cumulative CircuitOpenError fast-rejects (telemetry).
        self.rejected = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def _prune(self, now: float) -> None:
        horizon = now - self.policy.window_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def admit(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` when open.

        Called synchronously at submit time — the fast-reject contract:
        an open circuit never queues the request first.
        """
        now = self._clock()
        with self._lock:
            if self._state == "closed":
                return
            if self._state == "open":
                if now - self._opened_at < self.policy.cooldown_s:
                    self.rejected += 1
                    raise CircuitOpenError(
                        "circuit is open (failure rate over "
                        f"{self.policy.failure_threshold:.0%} in the last "
                        f"{self.policy.window_s:g}s window); fast-rejecting "
                        "until the cooldown elapses"
                    )
                # Cooldown over: this request becomes the first probe.
                self._state = "half-open"
                self._probes_admitted = 0
                self._probe_successes = 0
            # half-open: admit a bounded number of probes, reject the rest
            if self._probes_admitted >= self.policy.half_open_probes:
                self.rejected += 1
                raise CircuitOpenError(
                    "circuit is half-open and its probe budget "
                    f"({self.policy.half_open_probes}) is already in "
                    "flight; fast-rejecting until the probes settle"
                )
            self._probes_admitted += 1

    def record(self, ok: bool) -> None:
        """Feed one request outcome (success or error/expiry) back."""
        now = self._clock()
        with self._lock:
            if self._state == "half-open":
                if not ok:
                    # A probe failed: straight back to open, fresh cooldown.
                    self._state = "open"
                    self._opened_at = now
                    return
                self._probe_successes += 1
                if self._probe_successes >= self.policy.half_open_probes:
                    # The endpoint healed: close with a clean window so
                    # pre-outage failures cannot immediately re-open it.
                    self._state = "closed"
                    self._window.clear()
                return
            if self._state == "open":
                # Stragglers from before the circuit opened; the window
                # is already history.
                return
            self._window.append((now, ok))
            self._prune(now)
            if len(self._window) < self.policy.min_requests:
                return
            failures = sum(1 for _, got in self._window if not got)
            if failures / len(self._window) >= self.policy.failure_threshold:
                self._state = "open"
                self._opened_at = now


# -- brownout degradation ladder ---------------------------------------------
@dataclass(frozen=True)
class DegradationPolicy:
    """Thresholds and hysteresis of the brownout ladder controller.

    *Pressure* is the fraction of attempted requests the endpoint had to
    shed (:class:`~repro.errors.QueueFullError`) or expire
    (:class:`~repro.errors.DeadlineExceededError`) since the previous
    evaluation. The controller steps **down** one rung when pressure
    reaches ``step_down_pressure``, and back **up** one rung only after
    pressure has stayed at or below ``step_up_pressure`` continuously
    for ``recovery_s`` seconds. ``dwell_s`` is the minimum time between
    *any* two steps. The two-threshold band plus the recovery dwell is
    the hysteresis: a load hovering at the boundary cannot flap the
    endpoint between precisions.
    """

    step_down_pressure: float = 0.2
    step_up_pressure: float = 0.02
    dwell_s: float = 1.0
    recovery_s: float = 2.0

    def __post_init__(self):
        if not 0.0 < self.step_down_pressure <= 1.0:
            raise ConfigurationError(
                f"step_down_pressure must be in (0, 1], got "
                f"{self.step_down_pressure}"
            )
        if not 0.0 <= self.step_up_pressure < self.step_down_pressure:
            raise ConfigurationError(
                "step_up_pressure must be in [0, step_down_pressure) — "
                f"got {self.step_up_pressure} vs step_down_pressure "
                f"{self.step_down_pressure}"
            )
        if self.dwell_s < 0:
            raise ConfigurationError(
                f"dwell_s must be >= 0, got {self.dwell_s}"
            )
        if self.recovery_s < 0:
            raise ConfigurationError(
                f"recovery_s must be >= 0, got {self.recovery_s}"
            )


class DegradationController:
    """Steps one endpoint along its brownout ladder under pressure.

    ``server`` is any serving runtime exposing per-endpoint counters via
    ``stats(endpoint)`` (``requests``, ``shed``, ``expired``) and a
    ``registry`` whose endpoint carries a ladder
    (:meth:`~repro.serving.registry.ModelRegistry.set_ladder`). Each
    :meth:`tick` computes the pressure since the previous tick and asks
    the policy whether to step; a step is one
    :meth:`~repro.serving.registry.ModelRegistry.serve_level` call —
    an atomic generation-bumping swap to a variant that was compiled
    when the ladder was registered, so no FFT runs on the downshift
    path.

    Drive ticks yourself (deterministic tests, external control loops)
    or :meth:`start` the built-in daemon thread that ticks every
    ``interval_s``. ``transitions`` records every step as
    ``(monotonic_time, old_level, new_level)`` for assertions and
    dashboards.
    """

    def __init__(self, server, endpoint: str,
                 policy: DegradationPolicy | None = None, *,
                 interval_s: float = 0.25, clock=time.monotonic):
        if interval_s <= 0:
            raise ConfigurationError(
                f"interval_s must be > 0, got {interval_s}"
            )
        self.server = server
        self.endpoint = endpoint
        self.policy = policy if policy is not None else DegradationPolicy()
        self.interval_s = interval_s
        self._clock = clock
        self._lock = threading.Lock()
        self._last_counts: dict[str, float] | None = None
        self._last_step_at: float | None = None
        self._low_since: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.transitions: list[tuple[float, int, int]] = []
        # Fail fast on a missing ladder rather than on the first tick.
        self.server.registry.ladder_level(endpoint)

    @property
    def level(self) -> int:
        """The endpoint's current ladder rung (0 = full precision)."""
        return self.server.registry.ladder_level(self.endpoint)

    def pressure(self, counts: dict[str, float]) -> float:
        """Shed + deadline-miss fraction since the previous tick."""
        last = self._last_counts or {}
        attempted = (
            counts.get("requests", 0) - last.get("requests", 0)
            + counts.get("shed", 0) - last.get("shed", 0)
        )
        misses = (
            counts.get("shed", 0) - last.get("shed", 0)
            + counts.get("expired", 0) - last.get("expired", 0)
        )
        if attempted <= 0:
            return 0.0
        return misses / attempted

    def tick(self) -> int:
        """Evaluate once; returns the (possibly new) ladder level."""
        now = self._clock()
        counts = self.server.stats(self.endpoint)
        registry = self.server.registry
        with self._lock:
            pressure = self.pressure(counts)
            self._last_counts = dict(counts)
            level = registry.ladder_level(self.endpoint)
            depth = len(registry.ladder(self.endpoint)) - 1
            dwelt = (
                self._last_step_at is None
                or now - self._last_step_at >= self.policy.dwell_s
            )
            if pressure >= self.policy.step_down_pressure:
                self._low_since = None
                if level < depth and dwelt:
                    registry.serve_level(self.endpoint, level + 1)
                    self._last_step_at = now
                    self.transitions.append((now, level, level + 1))
                    logger.warning(
                        "brownout: endpoint %r stepped down to level %d "
                        "(pressure %.0f%%)", self.endpoint, level + 1,
                        pressure * 100.0,
                    )
                    return level + 1
            elif pressure <= self.policy.step_up_pressure:
                if level == 0:
                    self._low_since = None
                    return level
                if self._low_since is None:
                    self._low_since = now
                if (now - self._low_since >= self.policy.recovery_s
                        and dwelt):
                    registry.serve_level(self.endpoint, level - 1)
                    self._last_step_at = now
                    self._low_since = now
                    self.transitions.append((now, level, level - 1))
                    logger.info(
                        "brownout: endpoint %r recovered to level %d",
                        self.endpoint, level - 1,
                    )
                    return level - 1
            else:
                # In the hysteresis band: neither direction moves, and
                # the recovery clock restarts — stepping up requires
                # *sustained* low pressure, not one quiet sample.
                self._low_since = None
            return level

    # -- background loop -----------------------------------------------------
    def start(self) -> "DegradationController":
        """Tick every ``interval_s`` on a daemon thread; idempotent."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop,
                name=f"repro-brownout-{self.endpoint}", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background loop (the current tick finishes first)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.tick()
            except Exception:
                # The monitored server may be stopping under us; a
                # controller must never take the serving process down.
                logger.exception(
                    "brownout tick failed for endpoint %r", self.endpoint
                )

    def __enter__(self) -> "DegradationController":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"DegradationController(endpoint={self.endpoint!r}, "
            f"level={self.level}, transitions={len(self.transitions)})"
        )
