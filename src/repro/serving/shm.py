"""Shared-memory images of compiled endpoints — one copy, N processes.

The multi-process server's whole premise is that a compiled endpoint is
*frozen and read-only*: ``compile_inference()`` freezes every parameter
array and the cached weight spectra are returned read-only, so nothing a
worker does at serving time ever writes to model state. That makes the
state ideal for ``multiprocessing.shared_memory``: the parent serialises
each endpoint **once** into a single shared segment — every parameter
array plus every precomputed frequency-major weight spectrum, exactly the
bytes the artifact store would persist — and each worker process maps the
same physical pages instead of rebuilding or copying them.

The worker-side reconstruction is the artifact store's zero-FFT load
(:func:`repro.store.load_artifact`) pointed at shared memory instead of
disk: layers are rebuilt from the same spec tree
(:func:`repro.store.manifest.layer_from_spec`), parameters adopt
read-only views straight into the segment
(:meth:`~repro.nn.module.Parameter.adopt_frozen`), and every spectrum is
seeded through
:meth:`~repro.circulant.spectral_cache.SpectralWeightCache.seed_buffer`
— zero FFTs, zero per-worker warm-up RAM beyond the page tables.

An image is identified by ``(endpoint, generation)``; the generation is
the :class:`~repro.serving.registry.ModelRegistry` counter, which is what
lets the multi-process hot-swap protocol stay atomic across processes
(see ``repro.serving.multiproc``). The *descriptor* — a small picklable
dict naming the segment plus per-array offsets — is all that crosses the
process boundary.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.circulant.spectral_cache import (
    SpectralWeightCache,
    spectrum_layout,
)

#: Byte alignment of every array inside a segment. 64 covers the widest
#: dtype here (complex128) and keeps rows cache-line aligned for the GEMM.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def _attach_segment(name: str):
    """Open an existing segment without adopting its lifetime.

    On Python 3.13+ ``track=False`` attaches without telling the resource
    tracker at all — the clean statement of "workers only borrow the
    mapping; the parent owns creation and unlinking". On 3.11/3.12 the
    attach re-registers the name, but serving workers are *spawned
    children* and therefore share the parent's tracker process, where
    registration is an idempotent set-add: the parent's eventual
    ``unlink()`` unregisters it exactly once. Explicitly unregistering
    here would be wrong — it would strip the parent's own registration
    from the shared tracker.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


class SharedEndpointImage:
    """Owner-side handle of one endpoint generation in shared memory.

    Created by :func:`publish_image` in the serving parent. Holds the
    segment open for the image's lifetime (workers attach by name, so the
    name must survive until the generation is retired) and exposes the
    picklable ``descriptor`` workers attach from. ``close_and_unlink``
    releases the parent mapping and removes the name; workers that are
    still attached keep their mapping — POSIX unlink semantics — so
    retiring an image never races an in-flight batch.
    """

    def __init__(self, endpoint: str, generation: int, segment,
                 descriptor: dict):
        self.endpoint = endpoint
        self.generation = generation
        self._segment = segment
        self.descriptor = descriptor

    @property
    def nbytes(self) -> int:
        """Total payload bytes shared (parameters + spectra)."""
        return self.descriptor["nbytes"]

    def close_and_unlink(self) -> None:
        """Release the parent's mapping and remove the segment name."""
        try:
            self._segment.close()
        except BufferError:
            # A stray view into the buffer is still alive in this
            # process; the segment closes when it is collected.
            pass
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self) -> str:
        return (
            f"SharedEndpointImage(endpoint={self.endpoint!r}, "
            f"generation={self.generation}, nbytes={self.nbytes})"
        )


def publish_image(endpoint: str, network, generation: int,
                  context=None) -> SharedEndpointImage:
    """Serialise a compiled ``network`` into one shared-memory segment.

    Captures the compiled state exactly as the artifact store would
    (:func:`repro.nn.serialization.capture_compiled_state` — raises
    :class:`~repro.errors.ConfigurationError` for uncompiled networks),
    lays every parameter array and frequency-major spectrum buffer into
    a fresh segment, and returns the owner handle whose ``descriptor``
    workers pass to :func:`attach_image`.
    """
    from multiprocessing import shared_memory

    from repro.nn.serialization import capture_compiled_state
    from repro.quant import quantization_format
    from repro.store.manifest import layer_to_spec

    state = capture_compiled_state(network)
    spec = layer_to_spec(network)

    arrays: list[tuple[dict, np.ndarray]] = []
    parameters = []
    offset = 0
    for name, param in state["parameters"].items():
        value = np.ascontiguousarray(param.value)
        offset = _aligned(offset)
        record = {
            "name": name,
            "offset": offset,
            "shape": value.shape,
            "dtype": value.dtype.str,
        }
        parameters.append(record)
        arrays.append((record, value))
        offset += value.nbytes
    spectra = []
    for entry in state["spectra"]:
        layout, buffer = spectrum_layout(entry["spectrum"])
        buffer = np.ascontiguousarray(buffer)
        offset = _aligned(offset)
        record = {
            "param": entry["param"],
            "backend": entry["backend"],
            "layout": layout,
            "offset": offset,
            "shape": buffer.shape,
            "dtype": buffer.dtype.str,
        }
        spectra.append(record)
        arrays.append((record, buffer))
        offset += buffer.nbytes

    segment = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for record, value in arrays:
        view = np.ndarray(
            value.shape, dtype=value.dtype,
            buffer=segment.buf, offset=record["offset"],
        )
        view[...] = value
        del view  # drop the buffer export before anyone can close()

    descriptor = {
        "endpoint": endpoint,
        "generation": generation,
        "segment": segment.name,
        "nbytes": offset,
        "spec": spec,
        "quantization": quantization_format(network),
        "parameters": parameters,
        "spectra": spectra,
    }
    return SharedEndpointImage(endpoint, generation, segment, descriptor)


class AttachedEndpoint:
    """Worker-side handle: a serving-ready network viewing shared memory.

    ``network`` is frozen, warm and in eval mode — the state
    ``compile_inference()`` leaves behind — but every parameter array and
    cached spectrum is a read-only view into the shared segment, so the
    worker's private footprint is just the layer objects. Keep the handle
    alive as long as the network serves (the mapping dies with it).
    """

    def __init__(self, endpoint: str, generation: int, network, segment):
        self.endpoint = endpoint
        self.generation = generation
        self.network = network
        self._segment = segment

    def close(self) -> None:
        """Drop the network and release this process's mapping."""
        self.network = None
        try:
            self._segment.close()
        except BufferError:
            # Views into the segment are still referenced somewhere in
            # this process; the mapping is released when they die.
            pass

    def __repr__(self) -> str:
        return (
            f"AttachedEndpoint(endpoint={self.endpoint!r}, "
            f"generation={self.generation})"
        )


def attach_image(descriptor: dict, backend=None) -> AttachedEndpoint:
    """Reconstruct a frozen serving-ready network from an image descriptor.

    The zero-FFT, zero-copy worker cold start: no parameter bytes are
    read (views fault in lazily as the first forward touches them) and no
    transform runs — each stored spectrum is seeded into a fresh
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` via
    :meth:`~repro.circulant.spectral_cache.SpectralWeightCache.seed_buffer`.
    ``backend`` overrides the FFT backend of every block-circulant layer
    and seeded spectrum — the instrumentation hook the zero-FFT tests use,
    exactly as in :func:`repro.store.load_artifact`.
    """
    from repro.nn.network import Sequential
    from repro.store.manifest import layer_from_spec

    segment = _attach_segment(descriptor["segment"])
    network = layer_from_spec(descriptor["spec"], backend)
    if not isinstance(network, Sequential):
        raise ConfigurationError(
            "image descriptor does not describe a Sequential network"
        )
    current = dict(network.named_parameters())
    stored = [record["name"] for record in descriptor["parameters"]]
    missing = sorted(set(current) - set(stored))
    extra = sorted(set(stored) - set(current))
    if missing or extra:
        raise ConfigurationError(
            f"image parameters do not match the spec tree: missing "
            f"{missing}, unexpected {extra}"
        )
    for record in descriptor["parameters"]:
        view = np.ndarray(
            tuple(record["shape"]), dtype=np.dtype(record["dtype"]),
            buffer=segment.buf, offset=record["offset"],
        )
        current[record["name"]].adopt_frozen(view)
    cache = SpectralWeightCache()
    for record in descriptor["spectra"]:
        param = current.get(record["param"])
        if param is None:
            raise ConfigurationError(
                f"image spectrum names unknown parameter {record['param']!r}"
            )
        buffer = np.ndarray(
            tuple(record["shape"]), dtype=np.dtype(record["dtype"]),
            buffer=segment.buf, offset=record["offset"],
        )
        cache.seed_buffer(
            param, buffer, record["layout"],
            backend=backend if backend is not None else record["backend"],
        )
    for _, layer in network.spectral_layers():
        layer.spectral_cache = cache
    network._spectral_cache = cache
    network.eval()
    quantization = descriptor.get("quantization")
    if quantization and quantization.get("weight_bits") is not None:
        network.weight_quant_bits = quantization["weight_bits"]
    return AttachedEndpoint(
        descriptor["endpoint"], descriptor["generation"], network, segment
    )
