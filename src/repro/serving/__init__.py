"""Batched serving runtime over the spectral inference engine.

The ROADMAP north-star is serving heavy traffic, and the per-frequency
spectral GEMM (see ``docs/spectral_engine.md``) costs nearly the same for
one request as for sixteen — so the serving runtime's job is to turn many
concurrent single-sample requests into few compiled batch forwards, the
software analogue of the batching-across-inputs leverage CirCNN's
pipelined FFT hardware gets for free.

Three pieces, documented end to end in ``docs/serving_runtime.md``:

- :class:`~repro.serving.scheduler.MicroBatcher` /
  :class:`~repro.serving.scheduler.BatchPolicy` — dynamic micro-batching
  (collect up to ``max_batch`` requests or ``max_wait_ms``, whichever
  first) and batch assembly with optional batch-axis padding;
- :class:`~repro.serving.registry.ModelRegistry` — named endpoints over
  multiple compiled networks (FC, CONV, quantised views) with atomic
  hot swap and per-endpoint generation counters;
- :class:`~repro.serving.server.InferenceServer` — the request/response
  runtime: per-endpoint lanes feed assembled batches to a worker thread
  pool, which runs one reentrant compiled forward per batch
  (``Sequential.inference_forward``) and scatters rows to futures;
- :class:`~repro.serving.multiproc.MPInferenceServer` — the same request
  path over worker *processes*: every endpoint generation is shared once
  via ``multiprocessing.shared_memory``
  (:mod:`repro.serving.shm`), workers attach read-only views (zero
  per-worker FFTs or weight copies), hot swap stays atomic across
  processes, overload is shed (:class:`~repro.errors.QueueFullError`,
  per-request deadlines), and crashed workers are respawned from the
  shared images (:class:`~repro.errors.WorkerCrashedError`).
- :mod:`repro.serving.resilience` — the fault-tolerance policies layered
  on top: :class:`~repro.serving.resilience.RetryPolicy`
  (deadline-aware transparent retries of crashed/wedged batches),
  :class:`~repro.serving.resilience.CircuitBreaker` /
  :class:`~repro.serving.resilience.BreakerPolicy` (per-endpoint
  fast-reject when an endpoint is persistently failing), and
  :class:`~repro.serving.resilience.DegradationController` /
  :class:`~repro.serving.resilience.DegradationPolicy` (brownout: step
  down a pre-compiled quantised ladder under pressure, recover with
  hysteresis).
"""

from repro.serving.multiproc import BatchGate, MPInferenceServer
from repro.serving.registry import DEFAULT_ENDPOINT, ModelRegistry
from repro.serving.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    DegradationController,
    DegradationPolicy,
    RetryPolicy,
)
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatcher,
    assemble_batch,
    check_sample_shape,
)
from repro.serving.server import (
    InferenceRequest,
    InferenceResponse,
    InferenceServer,
    resolve_many,
)
from repro.serving.shm import (
    AttachedEndpoint,
    SharedEndpointImage,
    attach_image,
    publish_image,
)

__all__ = [
    "DEFAULT_ENDPOINT",
    "BatchPolicy",
    "MicroBatcher",
    "assemble_batch",
    "check_sample_shape",
    "ModelRegistry",
    "InferenceRequest",
    "InferenceResponse",
    "InferenceServer",
    "MPInferenceServer",
    "BatchGate",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "DegradationPolicy",
    "DegradationController",
    "resolve_many",
    "AttachedEndpoint",
    "SharedEndpointImage",
    "attach_image",
    "publish_image",
]
