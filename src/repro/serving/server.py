"""Batched inference serving on top of the spectral engine.

:class:`InferenceServer` is the first subsystem above the layer API: it
accepts single-sample requests from any number of client threads, lets a
per-endpoint :class:`~repro.serving.scheduler.MicroBatcher` assemble them
into micro-batches, runs **one compiled forward per batch** on a worker
thread pool, and scatters the output rows back to per-request futures.

The concurrency contract
------------------------
Compiled forwards are *read-only* over the cached weight spectra
(``Sequential.inference_forward`` writes no per-call state, and
``compile_inference()`` freezes the parameter arrays), so any number of
batches may execute concurrently on one network. Weight updates go
through :class:`~repro.serving.registry.ModelRegistry.swap`, which
replaces the whole network atomically: a batch resolves its snapshot
once, so it observes the old generation or the new one, never a mix.

Request/response dataclasses, the scheduler knobs (``max_batch``,
``max_wait_ms``, ``pad_to_multiple``) and the hot-swap contract are
documented end to end in ``docs/serving_runtime.md``.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ServerClosedError
from repro.serving.registry import DEFAULT_ENDPOINT, ModelRegistry
from repro.serving.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
)
from repro.serving.scheduler import (
    BatchPolicy,
    MicroBatcher,
    assemble_batch,
    assemble_sequence_batch,
    bucket_key,
    check_sample_shape,
)

# Sentinel enqueued at shutdown so idle batcher waits wake immediately.
_WAKE = object()


def resolve_many(futures, timeout: float | None = None) -> list:
    """Resolve a burst of response futures under **one shared deadline**.

    ``timeout`` bounds the wait for the *whole burst*, not each future:
    one monotonic deadline is computed up front and every ``result()``
    call gets only the time remaining, so a stalled burst fails after
    ``timeout`` seconds total — not ``N x timeout``, which is what naive
    per-future ``result(timeout)`` loops degrade to when the first
    futures are the slow ones. Shared by ``InferenceServer.infer_many``
    and ``MPInferenceServer.infer_many``.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    responses = []
    for future in futures:
        remaining = (
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        responses.append(future.result(remaining))
    return responses


@dataclass(frozen=True)
class InferenceRequest:
    """One sample submitted to the server (the batch axis is added by
    the scheduler: ``x`` has the endpoint's per-sample shape)."""

    request_id: int
    endpoint: str
    x: np.ndarray
    enqueued_at: float  # time.monotonic()
    #: Absolute time.monotonic() deadline, or None for no deadline. The
    #: multi-process server propagates it to workers; the scheduler drops
    #: already-expired entries at batch formation.
    deadline: float | None = None


@dataclass(frozen=True)
class InferenceResponse:
    """One request's result, with the serving telemetry dashboards want."""

    request_id: int
    endpoint: str
    y: np.ndarray
    batch_size: int     # real requests in the micro-batch that served it
    generation: int     # registry generation of the network snapshot
    queued_ms: float    # submit -> batch close
    latency_ms: float   # submit -> result ready


class _Lane:
    """Per-endpoint batcher plus the thread that forms its batches."""

    def __init__(self, batcher: MicroBatcher, thread: threading.Thread):
        self.batcher = batcher
        self.thread = thread


class InferenceServer:
    """Dynamic micro-batching serving runtime over compiled networks.

    Parameters
    ----------
    model:
        A :class:`~repro.serving.registry.ModelRegistry`, or a single
        network (registered under the ``"default"`` endpoint, compiled if
        it is not already).
    max_batch, max_wait_ms, pad_to_multiple, bucket_multiple:
        The :class:`~repro.serving.scheduler.BatchPolicy` knobs, shared by
        every endpoint lane. ``bucket_multiple`` enables length-bucketed
        batching on sequence endpoints (networks declaring a
        ``time_axis``): ragged requests group by rounded-up padded
        length and are zero-padded within their bucket only, then each
        response carries its request's true-length output slice.
    workers:
        Size of the thread pool that executes assembled batches. Safe to
        raise because compiled forwards are read-only over the cached
        spectra; NumPy releases the GIL inside the FFT/GEMM kernels, so
        extra workers overlap real work.
    retry:
        Optional :class:`~repro.serving.resilience.RetryPolicy`. A batch
        whose forward raises one of the policy's ``retry_on`` types is
        re-run after jittered backoff (inference is idempotent) instead
        of failing its futures — up to ``max_attempts`` and never past a
        request deadline. Retries run on the worker thread that owns the
        batch, so ``stop()``'s drain naturally waits for them.
    breaker:
        Optional :class:`~repro.serving.resilience.BreakerPolicy`. Each
        endpoint gets its own :class:`~repro.serving.resilience.CircuitBreaker`;
        when an endpoint's rolling-window failure rate trips it,
        ``submit`` fast-rejects with
        :class:`~repro.errors.CircuitOpenError` until half-open probes
        close the circuit again.

    Usage::

        server = InferenceServer(net, max_batch=16, max_wait_ms=2.0)
        with server:                      # start() / stop()
            y = server.infer(x_sample)   # or submit() for a Future
    """

    def __init__(self, model, *, max_batch: int = 16,
                 max_wait_ms: float = 2.0,
                 pad_to_multiple: int | None = None,
                 bucket_multiple: int | None = None, workers: int = 2,
                 retry: RetryPolicy | None = None,
                 breaker: BreakerPolicy | None = None):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if isinstance(model, ModelRegistry):
            self.registry = model
        else:
            self.registry = ModelRegistry()
            self.registry.register(DEFAULT_ENDPOINT, model)
        self.policy = BatchPolicy(
            max_batch=max_batch, max_wait_ms=max_wait_ms,
            pad_to_multiple=pad_to_multiple,
            bucket_multiple=bucket_multiple,
        )
        self.workers = workers
        self.retry = retry
        self._retry_rng = retry.rng() if retry is not None else None
        self._breaker_policy = breaker
        self._breakers: dict[str, CircuitBreaker] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._lanes: dict[str, _Lane] = {}
        # RLock: submit() holds it across the running check, lane lookup
        # and enqueue so a concurrent stop() cannot strand a request in a
        # lane whose consumer thread has already exited.
        self._lock = threading.RLock()
        # Serialises start()/stop() end to end (joins included): a start()
        # racing a mid-drain stop() must not have its fresh executor and
        # lanes clobbered by stop()'s final cleanup.
        self._lifecycle = threading.Lock()
        self._stop = threading.Event()
        self._stop.set()  # not started yet
        self._ids = itertools.count()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._responses = 0
        self._batches = 0
        self._batched_rows = 0
        self._padded_rows = 0
        self._errors = 0
        self._cancelled = 0
        self._retries = 0
        self._padded_steps = 0

    # -- resilience ----------------------------------------------------------
    def breaker(self, endpoint: str = DEFAULT_ENDPOINT) -> CircuitBreaker | None:
        """The endpoint's circuit breaker (``None`` when not configured)."""
        if self._breaker_policy is None:
            return None
        with self._lock:
            breaker = self._breakers.get(endpoint)
            if breaker is None:
                breaker = CircuitBreaker(self._breaker_policy)
                self._breakers[endpoint] = breaker
            return breaker

    @staticmethod
    def _record_outcome(breaker: CircuitBreaker, future: Future) -> None:
        # Done callback: feed the request outcome to the breaker. A
        # client cancel is neither success nor failure — no sample.
        if future.cancelled():
            return
        breaker.record(future.exception() is None)

    # -- lifecycle -----------------------------------------------------------
    @property
    def running(self) -> bool:
        return not self._stop.is_set()

    def start(self) -> "InferenceServer":
        """Spin up the worker pool; idempotent. Returns self.

        Blocks while a concurrent ``stop()`` is mid-drain, so a restart
        always begins from a fully torn-down server.
        """
        with self._lifecycle:
            with self._lock:
                if self.running:
                    return self
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-serving",
                )
                self._stop.clear()
        return self

    def stop(self) -> None:
        """Drain queued requests, finish in-flight batches, release threads.

        Every request accepted before ``stop()`` is still served: lanes
        drain their queues before exiting, then the worker pool shuts
        down after the last batch completes.
        """
        with self._lifecycle:
            with self._lock:
                if not self.running:
                    return
                self._stop.set()
                lanes = list(self._lanes.values())
                executor = self._executor
            for lane in lanes:
                lane.batcher.put(_WAKE)
            for lane in lanes:
                lane.thread.join()
            if executor is not None:
                executor.shutdown(wait=True)
            with self._lock:
                self._lanes.clear()
                self._executor = None

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request path --------------------------------------------------------
    def submit(self, x, endpoint: str = DEFAULT_ENDPOINT) -> Future:
        """Enqueue one sample; returns a Future of
        :class:`InferenceResponse`.

        ``x`` is a single sample (no batch axis) matching the endpoint's
        ``input_sample_shape``; shape problems raise here, at submit
        time, so a malformed request can never poison the micro-batch it
        would have joined. With a breaker configured, an open circuit
        fast-rejects here with :class:`~repro.errors.CircuitOpenError`
        — synchronously, never after queueing.
        """
        net, _ = self.registry.snapshot(endpoint)
        x = np.asarray(x, dtype=np.float64)
        check_sample_shape(
            x.shape, getattr(net, "input_sample_shape", None)
        )
        breaker = self.breaker(endpoint)
        if breaker is not None:
            breaker.admit()
        request = InferenceRequest(
            request_id=next(self._ids), endpoint=endpoint, x=x,
            enqueued_at=time.monotonic(),
        )
        future: Future = Future()
        if breaker is not None:
            future.add_done_callback(
                lambda f, b=breaker: self._record_outcome(b, f)
            )
        # Check-and-enqueue atomically w.r.t. stop(): once the item is in
        # a lane queue, stop() is guaranteed to drain it.
        with self._lock:
            if not self.running:
                raise ServerClosedError(
                    "InferenceServer is not running; call start() or use "
                    "it as a context manager"
                )
            self._lane(endpoint).batcher.put((request, future))
        with self._stats_lock:
            self._requests += 1
        return future

    def infer(self, x, endpoint: str = DEFAULT_ENDPOINT,
              timeout: float | None = None) -> np.ndarray:
        """Synchronous single-sample convenience: submit and wait."""
        return self.submit(x, endpoint).result(timeout).y

    def submit_many(self, samples,
                    endpoint: str = DEFAULT_ENDPOINT) -> list[Future]:
        """Enqueue a burst of samples; returns their futures in order."""
        return [self.submit(x, endpoint) for x in samples]

    def infer_many(self, samples, endpoint: str = DEFAULT_ENDPOINT,
                   timeout: float | None = None) -> list[np.ndarray]:
        """Submit a burst of samples, return their outputs in order.

        ``timeout`` bounds the whole burst (one shared deadline via
        :func:`resolve_many`), not each result individually.
        """
        futures = self.submit_many(samples, endpoint)
        return [r.y for r in resolve_many(futures, timeout)]

    # -- internals -----------------------------------------------------------
    def _lane(self, endpoint: str) -> _Lane:
        with self._lock:
            lane = self._lanes.get(endpoint)
            if lane is None:
                batcher = MicroBatcher(self.policy)
                thread = threading.Thread(
                    target=self._lane_loop, args=(endpoint, batcher),
                    name=f"repro-serving-lane-{endpoint}", daemon=True,
                )
                lane = _Lane(batcher, thread)
                self._lanes[endpoint] = lane
                thread.start()
            return lane

    def _lane_loop(self, endpoint: str, batcher: MicroBatcher) -> None:
        while True:
            if self._stop.is_set() and batcher.pending() == 0:
                return
            batch = batcher.next_batch(timeout=0.05)
            if not batch:
                continue
            closed = time.monotonic()
            items = [item for item in batch if item is not _WAKE]
            if not items:
                continue
            # stop() nulls the executor only after joining this thread,
            # so it is always live here; batches submitted while draining
            # still run before shutdown(wait=True) returns.
            self._executor.submit(self._run_batch, endpoint, items, closed)

    def _run_batch(self, endpoint: str, items: list, closed: float) -> None:
        # ``closed`` is the lane's batch-close instant: measuring it here
        # (or per group) would fold executor-queue wait and earlier
        # sub-batches' forward time into queued_ms.
        # Endpoints with wildcard axes (CONV spatial dims) can legally mix
        # sample shapes inside one scheduling window; stack each concrete
        # shape as its own sub-batch so valid requests never fail each
        # other. Fixed-shape endpoints always form a single group.
        # Sequence endpoints (a declared ``time_axis``) group by **length
        # bucket** instead: the time axis of the key is the request's
        # length rounded up per ``bucket_multiple``, so ragged sequences
        # batch together and are padded within their bucket only.
        net, _ = self.registry.snapshot(endpoint)
        time_axis = getattr(net, "time_axis", None)
        groups: dict[tuple, list] = {}
        for item in items:
            key = bucket_key(
                item[0].x.shape, time_axis, self.policy.bucket_multiple
            )
            groups.setdefault(key, []).append(item)
        for group in groups.values():
            self._run_group(endpoint, group, closed, time_axis)

    def _run_group(self, endpoint: str, items: list, closed: float,
                   time_axis: int | None = None) -> None:
        # Claim every future before doing work: a client that gave up may
        # have cancelled, and calling set_result on a cancelled future
        # raises InvalidStateError mid-scatter — stranding every later
        # request in the batch. Once a future is RUNNING, cancel() can no
        # longer win the race, so the scatter below is safe.
        live = [
            (request, future) for request, future in items
            if future.set_running_or_notify_cancel()
        ]
        if len(live) < len(items):
            with self._stats_lock:
                self._cancelled += len(items) - len(live)
        if not live:
            return
        requests = [request for request, _ in live]
        futures = [future for _, future in live]
        # The retry cutoff is the earliest member deadline: a policy must
        # never schedule work past *any* member's deadline. (The thread
        # server's submit() does not set deadlines today, so this is
        # normally None; retries are then bounded by max_attempts alone.)
        deadlines = [
            request.deadline for request in requests
            if request.deadline is not None
        ]
        deadline = min(deadlines) if deadlines else None
        attempt = 1
        while True:
            try:
                # One snapshot per batch (re-resolved per attempt, so a
                # retry lands on the freshest generation): the hot-swap
                # atomicity contract.
                net, generation = self.registry.snapshot(endpoint)
                if time_axis is not None:
                    x, rows, lengths = assemble_sequence_batch(
                        [request.x for request in requests], time_axis,
                        self.policy.bucket_multiple,
                        self.policy.pad_to_multiple,
                    )
                else:
                    x, rows = assemble_batch(
                        [request.x for request in requests],
                        self.policy.pad_to_multiple,
                    )
                    lengths = None
                y = np.asarray(net.inference_forward(x))[:rows]
                if y.shape[0] != len(requests):
                    # A model that collapses the batch axis would
                    # otherwise leave the excess futures unresolved
                    # forever (zip stops at the shorter side); fail the
                    # whole batch loudly.
                    raise RuntimeError(
                        f"endpoint {endpoint!r} returned {y.shape[0]} "
                        f"output rows for a batch of {len(requests)} "
                        "requests"
                    )
                break
            except BaseException as exc:
                at = None
                if self.retry is not None and self.retry.retryable(exc):
                    at = self.retry.next_attempt_at(
                        attempt + 1, time.monotonic(), deadline,
                        self._retry_rng,
                    )
                if at is None:
                    with self._stats_lock:
                        self._errors += len(futures)
                    for future in futures:
                        future.set_exception(exc)
                    return
                # Back off on this worker thread: compiled inference is
                # idempotent, so re-running the batch is safe, and
                # stop()'s executor drain naturally waits out the retry.
                time.sleep(max(0.0, at - time.monotonic()))
                attempt += 1
                with self._stats_lock:
                    self._retries += 1
        done = time.monotonic()
        for index, (row, (request, future)) in enumerate(zip(y, live)):
            out = row
            if (
                lengths is not None
                and out.ndim > time_axis
                and out.shape[time_axis] != lengths[index]
            ):
                # Slice the response back to the request's true length:
                # within-bucket zero padding is an internal batching
                # detail, never visible to the client. A network that
                # collapses the time axis (out.ndim <= time_axis) has
                # nothing to slice — the row already is per-request.
                slicer = [slice(None)] * out.ndim
                slicer[time_axis] = slice(0, lengths[index])
                out = out[tuple(slicer)]
            future.set_result(InferenceResponse(
                request_id=request.request_id,
                endpoint=endpoint,
                # Copy: a view would pin the whole (padded) batch output
                # in memory for as long as any client keeps its response.
                y=out.copy(),
                batch_size=rows,
                generation=generation,
                queued_ms=(closed - request.enqueued_at) * 1e3,
                latency_ms=(done - request.enqueued_at) * 1e3,
            ))
        with self._stats_lock:
            self._responses += rows
            self._batches += 1
            self._batched_rows += rows
            self._padded_rows += x.shape[0] - rows
            if lengths is not None:
                # Time-axis padding waste (rows x steps would conflate
                # the two axes; this counts padded steps only).
                self._padded_steps += sum(
                    x.shape[1 + time_axis] - length for length in lengths
                )

    def stats(self) -> dict[str, float]:
        """Serving counters (requests, batches, mean batch size, errors)."""
        with self._stats_lock:
            batches = self._batches
            return {
                "requests": self._requests,
                "responses": self._responses,
                "batches": batches,
                "errors": self._errors,
                "cancelled": self._cancelled,
                "retries": self._retries,
                "padded_rows": self._padded_rows,
                "padded_steps": self._padded_steps,
                "mean_batch_size": (
                    self._batched_rows / batches if batches else 0.0
                ),
            }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"InferenceServer({state}, endpoints={self.registry.endpoints()}, "
            f"max_batch={self.policy.max_batch}, "
            f"max_wait_ms={self.policy.max_wait_ms})"
        )
