"""Bit-exact weight-storage accounting (the arithmetic behind Fig 7).

The paper's storage claims compare:

- dense baseline: every weight in 32-bit floating point;
- CirCNN: defining vectors only, in 16-bit fixed point (§3.4: "16-bit
  weight quantization is adopted for model size reduction");
- pruning (Han et al.): surviving weights in 16 bits *plus an index per
  weight*, because the sparse structure is irregular (§3.4: "irregularity
  requires additional index per weight").

:func:`fc_only_storage_saving` reproduces the 400–4000+x FC-layer numbers
of Fig 7a; :func:`whole_model_storage_saving` the 30–50x whole-model
claim of §3.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.descriptors import CompressionPlan, ModelSpec


@dataclass(frozen=True)
class StorageReport:
    """Storage footprint of one weight representation."""

    label: str
    weight_params: int
    weight_bits: int
    index_bits_total: int = 0

    @property
    def total_bits(self) -> int:
        return self.weight_params * self.weight_bits + self.index_bits_total

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0

    @property
    def megabytes(self) -> float:
        return self.total_bytes / 2**20


def dense_storage(params: int, bits: int = 32,
                  label: str = "dense") -> StorageReport:
    """Uncompressed storage: ``params`` words of ``bits`` bits."""
    if params < 0:
        raise ConfigurationError(f"params must be >= 0, got {params}")
    return StorageReport(label=label, weight_params=params, weight_bits=bits)


def block_circulant_storage(model: ModelSpec, plan: CompressionPlan,
                            label: str = "block-circulant") -> StorageReport:
    """Storage of a model compressed under ``plan`` (defining vectors only,
    ``plan.weight_bits`` bits each, no indices — the structure is regular)."""
    return StorageReport(
        label=label,
        weight_params=plan.total_compressed_params(model),
        weight_bits=plan.weight_bits,
    )


def pruned_storage(dense_params: int, sparsity: float, weight_bits: int = 16,
                   index_bits: int = 4,
                   label: str = "pruned") -> StorageReport:
    """Storage of a magnitude-pruned model.

    ``sparsity`` is the fraction of weights removed. Surviving weights
    carry ``weight_bits`` each plus ``index_bits`` of relative-position
    index (4 bits is the Deep Compression encoding [35]).
    """
    if not 0.0 <= sparsity < 1.0:
        raise ConfigurationError(f"sparsity must be in [0, 1), got {sparsity}")
    nnz = round(dense_params * (1.0 - sparsity))
    return StorageReport(
        label=label,
        weight_params=nnz,
        weight_bits=weight_bits,
        index_bits_total=nnz * index_bits,
    )


def compression_ratio(baseline: StorageReport,
                      compressed: StorageReport) -> float:
    """Bit-level ratio ``baseline / compressed``."""
    if compressed.total_bits <= 0:
        raise ConfigurationError("compressed representation holds zero bits")
    return baseline.total_bits / compressed.total_bits


def fc_only_storage_saving(model: ModelSpec, plan: CompressionPlan,
                           baseline_bits: int = 32) -> float:
    """FC-layer storage saving — the quantity Fig 7a plots.

    Compares the FC layers' dense 32-bit storage against their compressed
    defining-vector storage at ``plan.weight_bits``.
    """
    dense_bits = model.fc_dense_params * baseline_bits
    compressed_params = sum(
        plan.compressed_params(layer) for layer in model.fc_layers
    )
    compressed_bits = compressed_params * plan.weight_bits
    if compressed_bits <= 0:
        raise ConfigurationError("plan compresses the FC layers to zero bits")
    return dense_bits / compressed_bits


def whole_model_storage_saving(model: ModelSpec, plan: CompressionPlan,
                               baseline_bits: int = 32) -> float:
    """Whole-model storage saving (all weight layers, §3.4 / Fig 7c)."""
    baseline = dense_storage(model.total_dense_params, baseline_bits)
    compressed = block_circulant_storage(model, plan)
    return compression_ratio(baseline, compressed)
