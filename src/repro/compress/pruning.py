"""Magnitude-based weight pruning — the Han et al. [34, 35] baseline.

The paper's critique of pruning (§1, §2.2, Fig 3) is that it yields an
*irregular* structure needing per-weight indices, adds a prune+retrain
stage to training, and offers only heuristic compression ratios. This
module implements the technique so those claims can be measured: masks
from global magnitude thresholding, mask-preserving fine-tuning, and
sparsity/storage reporting including index overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.storage import StorageReport, pruned_storage
from repro.errors import ConfigurationError
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.module import Module, Parameter
from repro.nn.network import Sequential


def magnitude_mask(weights: np.ndarray, sparsity: float) -> np.ndarray:
    """Boolean mask keeping the largest-magnitude ``1 - sparsity`` fraction.

    Ties at the threshold are broken arbitrarily but deterministically
    (argsort order), so exactly ``round(size * sparsity)`` entries drop.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ConfigurationError(f"sparsity must be in [0, 1), got {sparsity}")
    flat = np.abs(np.asarray(weights)).ravel()
    drop = round(flat.size * sparsity)
    mask = np.ones(flat.size, dtype=bool)
    if drop > 0:
        mask[np.argsort(flat, kind="stable")[:drop]] = False
    return mask.reshape(np.shape(weights))


def _prunable_parameters(network: Sequential | Module) -> list[Parameter]:
    """Weight (not bias) parameters of Dense/Conv2D layers."""
    layers = network.layers if isinstance(network, Sequential) else [network]
    return [
        layer.weight
        for layer in layers
        if isinstance(layer, (Dense, Conv2D))
    ]


def prune_network(network: Sequential | Module,
                  sparsity: float) -> dict[int, np.ndarray]:
    """Zero the smallest weights of every Dense/Conv2D layer in place.

    Returns ``{id(parameter): mask}`` so callers can keep the masks applied
    during fine-tuning (see :class:`MagnitudePruner`).
    """
    masks: dict[int, np.ndarray] = {}
    for param in _prunable_parameters(network):
        mask = magnitude_mask(param.value, sparsity)
        # Pure assignment: valid even on parameters frozen for serving.
        param.value = param.value * mask
        masks[id(param)] = mask
    return masks


@dataclass
class SparsityReport:
    """Aggregate sparsity over the pruned parameters."""

    total_params: int
    nonzero_params: int

    @property
    def sparsity(self) -> float:
        if self.total_params == 0:
            return 0.0
        return 1.0 - self.nonzero_params / self.total_params

    @property
    def parameter_reduction(self) -> float:
        """Raw parameter-count ratio (ignores index overhead)."""
        if self.nonzero_params == 0:
            return float("inf")
        return self.total_params / self.nonzero_params


class MagnitudePruner:
    """Prune-then-finetune workflow on a network.

    Typical use (mirrors [34]'s train -> prune -> retrain pipeline)::

        pruner = MagnitudePruner(network, sparsity=0.9)
        pruner.prune()
        for each fine-tuning step:
            ... backward + optimizer.step() ...
            pruner.apply_masks()      # keep pruned weights at zero

    The extra loop is exactly the "increased training complexity" the
    paper holds against pruning.
    """

    def __init__(self, network: Sequential | Module, sparsity: float):
        if not 0.0 <= sparsity < 1.0:
            raise ConfigurationError(f"sparsity must be in [0, 1), got {sparsity}")
        self.network = network
        self.sparsity = sparsity
        self._masks: list[tuple[Parameter, np.ndarray]] = []

    def prune(self) -> None:
        """Compute and apply magnitude masks."""
        self._masks = []
        for param in _prunable_parameters(self.network):
            mask = magnitude_mask(param.value, self.sparsity)
            param.value = param.value * mask
            self._masks.append((param, mask))

    def apply_masks(self) -> None:
        """Re-zero pruned positions (call after every optimiser step)."""
        for param, mask in self._masks:
            param.value = param.value * mask

    def report(self) -> SparsityReport:
        """Measured sparsity across the pruned parameters."""
        params = _prunable_parameters(self.network)
        total = sum(p.size for p in params)
        nonzero = sum(int(np.count_nonzero(p.value)) for p in params)
        return SparsityReport(total_params=total, nonzero_params=nonzero)

    def storage(self, weight_bits: int = 16,
                index_bits: int = 4) -> StorageReport:
        """Bit-level footprint including the per-weight index overhead."""
        report = self.report()
        return pruned_storage(
            report.total_params, report.sparsity, weight_bits, index_bits
        )
