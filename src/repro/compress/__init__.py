"""Compression baselines and storage accounting (paper §2.2–2.4, Fig 7).

- :mod:`repro.compress.storage` — bit-level storage accounting for dense,
  block-circulant, and pruned representations (including the per-weight
  index overhead that makes pruning's effective ratio worse, §3.4).
- :mod:`repro.compress.pruning` — magnitude-based weight pruning in the
  style of Han et al. [34, 35], the paper's main comparison point.
- :mod:`repro.compress.svd` — low-rank (SVD) approximation, the paper's
  "systematic methods" baseline [48–50].
- :mod:`repro.compress.circulant_projection` — the single large circulant
  matrix of Cheng et al. [54] (paper Fig 4a), whose zero-padding waste
  motivated block-circulant matrices.
"""

from repro.compress.storage import (
    StorageReport,
    block_circulant_storage,
    compression_ratio,
    dense_storage,
    fc_only_storage_saving,
    pruned_storage,
    whole_model_storage_saving,
)
from repro.compress.pruning import (
    MagnitudePruner,
    magnitude_mask,
    prune_network,
)
from repro.compress.svd import (
    LowRankDense,
    low_rank_factors,
    low_rank_params,
    low_rank_reconstruction_error,
)
from repro.compress.circulant_projection import (
    SingleCirculantDense,
    single_circulant_padded_size,
    single_circulant_storage_waste,
)

__all__ = [
    "StorageReport",
    "dense_storage",
    "block_circulant_storage",
    "pruned_storage",
    "compression_ratio",
    "fc_only_storage_saving",
    "whole_model_storage_saving",
    "magnitude_mask",
    "prune_network",
    "MagnitudePruner",
    "low_rank_factors",
    "low_rank_params",
    "low_rank_reconstruction_error",
    "LowRankDense",
    "SingleCirculantDense",
    "single_circulant_padded_size",
    "single_circulant_storage_waste",
]
