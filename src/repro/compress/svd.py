"""Low-rank (SVD) weight approximation — the "systematic methods" baseline.

The paper cites SVD-style restructuring [48–50] as systematic but
accuracy-costly ("5%-10% degradation at 10x compression"). This module
provides the factorisation, its parameter accounting, and a trainable
factored layer so the trade-off can be measured on the same tasks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.initializers import zeros
from repro.nn.module import Module
from repro.utils.rng import make_rng


def low_rank_factors(weight: np.ndarray,
                     rank: int) -> tuple[np.ndarray, np.ndarray]:
    """Best rank-``r`` factorisation ``W ≈ U @ V`` (Eckart–Young optimal).

    ``U`` is ``(m, r)`` and ``V`` is ``(r, n)``; singular values are split
    evenly (sqrt) between the factors.
    """
    weight = np.asarray(weight, dtype=np.float64)
    if weight.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {weight.shape}")
    if not 1 <= rank <= min(weight.shape):
        raise ConfigurationError(
            f"rank must be in [1, {min(weight.shape)}], got {rank}"
        )
    u, s, vt = np.linalg.svd(weight, full_matrices=False)
    root = np.sqrt(s[:rank])
    return u[:, :rank] * root, (vt[:rank].T * root).T


def low_rank_params(m: int, n: int, rank: int) -> int:
    """Stored parameters of a rank-``r`` factorisation: ``r (m + n)``."""
    return rank * (m + n)


def low_rank_reconstruction_error(weight: np.ndarray, rank: int) -> float:
    """Relative Frobenius error of the best rank-``r`` approximation."""
    weight = np.asarray(weight, dtype=np.float64)
    u, v = low_rank_factors(weight, rank)
    denom = float(np.linalg.norm(weight))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(weight - u @ v)) / denom


class LowRankDense(Module):
    """FC layer factored as ``y = (x @ V.T) @ U.T + b`` with rank ``r``.

    Trainable; used as a baseline against
    :class:`~repro.nn.BlockCirculantDense` at matched parameter budgets.
    """

    def __init__(self, in_features: int, out_features: int, rank: int,
                 bias: bool = True, seed=None):
        super().__init__()
        if not 1 <= rank <= min(in_features, out_features):
            raise ConfigurationError(
                f"rank must be in [1, {min(in_features, out_features)}], got {rank}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.rank = rank
        rng = make_rng(seed)
        scale_v = np.sqrt(2.0 / in_features)
        scale_u = np.sqrt(2.0 / rank)
        self.v = self.add_parameter(
            "v", rng.normal(0.0, scale_v, size=(rank, in_features))
        )
        self.u = self.add_parameter(
            "u", rng.normal(0.0, scale_u, size=(out_features, rank))
        )
        self.bias = (
            self.add_parameter("bias", zeros((out_features,))) if bias else None
        )
        self._input: np.ndarray | None = None
        self._hidden: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"LowRankDense expects (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        self._hidden = x @ self.v.value.T
        out = self._hidden @ self.u.value.T
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None or self._hidden is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        self.u.grad += grad_output.T @ self._hidden
        grad_hidden = grad_output @ self.u.value
        self.v.grad += grad_hidden.T @ self._input
        return grad_hidden @ self.v.value

    def __repr__(self) -> str:
        return (
            f"LowRankDense({self.in_features} -> {self.out_features}, "
            f"rank={self.rank})"
        )
