"""Single-circulant FC layer — the Cheng et al. [54] baseline (Fig 4a).

The prior work closest to CirCNN represents a whole FC layer by *one*
square circulant matrix, zero-padding to ``max(m, n)`` when the input and
output widths differ. The paper's critique (§2.3–2.4, Fig 4): the padding
wastes storage and computation and offers no block-size accuracy knob.
This module implements that baseline — trainable, via the same FFT kernels
— plus the waste accounting the comparison needs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.fftcore.backend import get_backend
from repro.nn.initializers import zeros
from repro.nn.module import Module
from repro.utils.rng import make_rng


def single_circulant_padded_size(in_features: int, out_features: int) -> int:
    """Padded square size of the [54] representation: ``max(m, n)``."""
    return max(in_features, out_features)


def single_circulant_storage_waste(in_features: int,
                                   out_features: int) -> float:
    """Fraction of stored parameters that only exist because of padding.

    A block-circulant layer with ``k = min(m, n)`` (the finest grid that
    avoids padding on the smaller axis, assuming divisibility) would store
    ``max(m, n)`` useful parameters too, but [54] additionally *computes*
    over the padded region; the wasted fraction of its size-``s`` spectrum
    work relative to the useful ``min(m, n)`` rows is ``1 - min/max``.
    """
    small = min(in_features, out_features)
    large = max(in_features, out_features)
    return 1.0 - small / large


class SingleCirculantDense(Module):
    """FC layer as one circulant matrix over the padded square (``s = max``).

    Forward: zero-pad the input to ``s``, circular-convolve with the single
    defining vector, truncate to ``out_features``. Gradients follow the
    same cross-correlation identities as the block-circulant kernels.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed=None, backend=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.size = single_circulant_padded_size(in_features, out_features)
        self.backend = backend
        rng = make_rng(seed)
        self.weight = self.add_parameter(
            "weight",
            rng.normal(0.0, np.sqrt(2.0 / in_features), size=(self.size,)),
        )
        self.bias = (
            self.add_parameter("bias", zeros((out_features,))) if bias else None
        )
        self._padded_input: np.ndarray | None = None

    @property
    def dense_parameters(self) -> int:
        """Parameters of the equivalent unstructured layer."""
        return self.in_features * self.out_features

    @property
    def padded_parameters(self) -> int:
        """Stored parameters including padding: ``max(m, n)``."""
        return self.size

    def _pad(self, x: np.ndarray, width: int) -> np.ndarray:
        if x.shape[-1] == width:
            return x
        padded = np.zeros(x.shape[:-1] + (width,), dtype=np.float64)
        padded[..., : x.shape[-1]] = x
        return padded

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"SingleCirculantDense expects (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        be = get_backend(self.backend)
        self._padded_input = self._pad(x, self.size)
        wf = be.rfft(self.weight.value)
        xf = be.rfft(self._padded_input)
        out = be.irfft(wf * xf, n=self.size)[:, : self.out_features]
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._padded_input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape[1] != self.out_features:
            raise ShapeError(
                f"grad must be (batch, {self.out_features}), "
                f"got {grad_output.shape}"
            )
        be = get_backend(self.backend)
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        grad_padded = self._pad(grad_output, self.size)
        gf = be.rfft(grad_padded)
        xf = be.rfft(self._padded_input)
        wf = be.rfft(self.weight.value)
        self.weight.grad += be.irfft(
            np.einsum("bf,bf->f", gf, np.conj(xf)), n=self.size
        )
        grad_input = be.irfft(np.conj(wf) * gf, n=self.size)
        return grad_input[:, : self.in_features]

    def __repr__(self) -> str:
        return (
            f"SingleCirculantDense({self.in_features} -> {self.out_features}, "
            f"padded={self.size})"
        )
