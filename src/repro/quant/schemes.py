"""Per-tensor quantisation schemes and error metrics.

The paper fixes the word length (16 bits; 4 bits in the near-threshold
study) and lets the binary point follow the tensor's dynamic range. That is
what :func:`fit_format` does: given a tensor and a word length it returns
the :class:`~repro.quant.fixed_point.FixedPointFormat` with the most
fractional bits that still covers the tensor's maximum magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.quant.fixed_point import FixedPointFormat


def fit_format(x: np.ndarray, total_bits: int) -> FixedPointFormat:
    """Choose the Q-format covering the dynamic range of ``x``.

    The integer part gets ``ceil(log2(max|x|))`` bits (plus sign); all
    remaining bits are fractional. An all-zero tensor gets the maximum
    fractional precision.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ConfigurationError("cannot fit a format to an empty tensor")
    peak = float(np.max(np.abs(x)))
    if peak == 0.0:
        int_bits = 0
    else:
        # Smallest b with 2^b > peak, i.e. the peak fits below the
        # saturation point.
        int_bits = max(0, math.ceil(math.log2(peak + 1e-300)))
        while (2 ** (total_bits - 1) - 1) * 2.0 ** -(total_bits - 1 - int_bits) < peak:
            int_bits += 1
    frac_bits = total_bits - 1 - int_bits
    return FixedPointFormat(total_bits=total_bits, frac_bits=frac_bits)


def quantize_tensor(x: np.ndarray, total_bits: int) -> np.ndarray:
    """Fake-quantise ``x`` with a per-tensor range-fitted format."""
    return fit_format(x, total_bits).quantize(x)


def quantize_per_sample(x: np.ndarray, total_bits: int) -> np.ndarray:
    """Fake-quantise each batch row with its own range-fitted format.

    Bit-identical to ``np.stack([quantize_tensor(row, total_bits) for row
    in x])`` but vectorised: per-row peaks, per-row binary points, one
    broadcast round/clip. Serving uses this for activation streams so a
    sample's quantisation never depends on which other samples the
    scheduler co-batched with it.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim < 2:
        raise ConfigurationError(
            f"quantize_per_sample expects a batched array, got shape {x.shape}"
        )
    peaks = np.max(np.abs(x), axis=tuple(range(1, x.ndim)))
    int_bits = np.zeros(x.shape[0], dtype=np.int64)
    nz = peaks > 0.0
    int_bits[nz] = np.maximum(
        0, np.ceil(np.log2(peaks[nz] + 1e-300))
    ).astype(np.int64)
    hi = 2 ** (total_bits - 1) - 1
    # Same saturation correction as fit_format, run across all rows at
    # once (converges in at most a couple of passes).
    while True:
        saturation = hi * 2.0 ** -(total_bits - 1 - int_bits)
        bump = nz & (saturation < peaks)
        if not bump.any():
            break
        int_bits[bump] += 1
    frac_bits = total_bits - 1 - int_bits
    resolution = 2.0 ** -frac_bits.reshape((-1,) + (1,) * (x.ndim - 1))
    lo = -(2 ** (total_bits - 1))
    return np.clip(np.rint(x / resolution), lo, hi) * resolution


def quantization_snr_db(x: np.ndarray, total_bits: int) -> float:
    """Signal-to-quantisation-noise ratio in dB for a range-fitted format.

    Roughly ``6.02 * bits`` dB for well-scaled tensors; used by tests to
    confirm 16-bit quantisation is benign while 4-bit is destructive (the
    paper reports < 20% AlexNet accuracy at 4 bits).
    """
    x = np.asarray(x, dtype=np.float64)
    err = quantize_tensor(x, total_bits) - x
    signal = float(np.mean(x**2))
    noise = float(np.mean(err**2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * math.log10(signal / noise)


@dataclass(frozen=True)
class QuantizationReport:
    """Summary of quantising one tensor: format, SNR and worst-case error."""

    format: FixedPointFormat
    snr_db: float
    max_abs_error: float

    @classmethod
    def for_tensor(cls, x: np.ndarray, total_bits: int) -> "QuantizationReport":
        """Quantise ``x`` with a range-fitted format and report the damage."""
        fmt = fit_format(x, total_bits)
        err = fmt.quantization_error(x)
        x = np.asarray(x, dtype=np.float64)
        signal = float(np.mean(x**2))
        noise = float(np.mean(err**2))
        if noise == 0.0:
            snr = float("inf")
        elif signal == 0.0:
            snr = float("-inf")
        else:
            snr = 10.0 * math.log10(signal / noise)
        return cls(format=fmt, snr_db=snr, max_abs_error=float(np.max(np.abs(err))))
