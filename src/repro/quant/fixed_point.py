"""Signed fixed-point (Q-format) arithmetic simulation.

A :class:`FixedPointFormat` with ``total_bits = t`` and ``frac_bits = f``
represents values ``i * 2^-f`` for integers ``i`` in
``[-2^(t-1), 2^(t-1) - 1]``. Quantisation rounds to the nearest code and
saturates at the representable range — the behaviour of the paper's 16-bit
datapath (§4.2: "We use 16-bit fixed point numbers for input and weight
representations").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed two's-complement fixed-point format Q(t-f-1).f.

    Attributes
    ----------
    total_bits:
        Word length including the sign bit (e.g. 16 for the paper's
        datapath, 4 for the near-threshold mode).
    frac_bits:
        Bits to the right of the binary point. May be negative (coarse
        formats for large dynamic ranges) or exceed ``total_bits - 1``.
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self):
        if self.total_bits < 2:
            raise ConfigurationError(
                f"total_bits must be >= 2 (sign + magnitude), got {self.total_bits}"
            )

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit: ``2^-frac_bits``."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value: ``(2^(t-1) - 1) * 2^-f``."""
        return (2 ** (self.total_bits - 1) - 1) * self.resolution

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value: ``-2^(t-1) * 2^-f``."""
        return -(2 ** (self.total_bits - 1)) * self.resolution

    @property
    def num_codes(self) -> int:
        """Number of representable codes: ``2^total_bits``."""
        return 2**self.total_bits

    def quantize_to_int(self, x: np.ndarray) -> np.ndarray:
        """Map real values to integer codes (round-to-nearest, saturating)."""
        x = np.asarray(x, dtype=np.float64)
        codes = np.rint(x / self.resolution)
        lo = -(2 ** (self.total_bits - 1))
        hi = 2 ** (self.total_bits - 1) - 1
        return np.clip(codes, lo, hi).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Map integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.resolution

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantise: round-trip real values through the format.

        This is the standard software simulation of fixed-point hardware:
        the result is a float array whose values all lie on the format's
        grid, so downstream float arithmetic sees exactly the quantised
        numbers.
        """
        return self.dequantize(self.quantize_to_int(x))

    def quantization_error(self, x: np.ndarray) -> np.ndarray:
        """Element-wise error ``quantize(x) - x``."""
        return self.quantize(x) - np.asarray(x, dtype=np.float64)

    def __str__(self) -> str:
        return f"Q{self.total_bits - 1 - self.frac_bits}.{self.frac_bits}"
