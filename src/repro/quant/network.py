"""Whole-network fixed-point inference (paper §4.2 and Fig 15's 4-bit note).

The hardware quantises *both* inputs/activations and weights to the
datapath width ("We use 16-bit fixed point numbers for input and weight
representations"). This module simulates that end to end:

- :func:`quantize_network_weights` rounds every parameter of a trained
  network onto a range-fitted fixed-point grid, in place;
- :class:`ActivationQuantizer` is a layer that re-quantises the data
  stream between layers (insert after each compute layer to model the
  datapath word length);
- :func:`quantized_view` builds a quantised *copy pipeline* of a trained
  Sequential without touching the original;
- :func:`accuracy_vs_bits` measures the accuracy-vs-word-length curve —
  the experiment behind the paper's observation that 16-bit is accurate
  while 4-bit collapses (<20% top-1 for AlexNet, §5.2).

Quantised serving
-----------------
``quantized_view(net, 16, 16).compile_inference()`` is the fixed-point
serving mode: the view's block-circulant layers join one
:class:`~repro.circulant.spectral_cache.SpectralWeightCache`, so each
weight spectrum is computed **once from the fake-quantised defining
vectors** and reused on every request. Re-quantising mid-serving
(:func:`quantize_network_weights` on the view, e.g. to drop to the 4-bit
near-threshold mode) reassigns every ``Parameter.value``, which bumps the
version counters and lazily invalidates the cached spectra — no explicit
cache management needed. See ``docs/spectral_engine.md``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.quant.schemes import quantize_per_sample, quantize_tensor


def quantize_network_weights(network: Sequential | Module,
                             total_bits: int) -> None:
    """Quantise every parameter of ``network`` in place.

    Each tensor gets its own range-fitted format (per-tensor scaling),
    matching the per-layer scaling hardware implementations use.
    """
    for param in network.parameters():
        param.value = quantize_tensor(param.value, total_bits)
    # Record the format so serving metadata (registry dashboards, the
    # artifact store's manifest) can report what precision is being served.
    network.weight_quant_bits = total_bits


class ActivationQuantizer(Module):
    """Quantise the activation stream to the datapath word length.

    The Q-format is fitted **per sample** (each batch row gets its own
    binary point): a sample's quantised activations depend only on that
    sample, never on which other requests the serving scheduler happened
    to co-batch with it — so served outputs are independent of batch
    composition. Identity in the backward direction (straight-through
    estimator), so a quantised pipeline can still be fine-tuned if
    desired.
    """

    # Elementwise: lets Sequential.input_sample_shape see through to the
    # first real layer, so quantised views keep their serving contract.
    shape_transparent = True

    def __init__(self, total_bits: int):
        super().__init__()
        self.total_bits = total_bits

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            return x.copy()
        if x.ndim <= 1:
            return quantize_tensor(x, self.total_bits)
        return quantize_per_sample(x, self.total_bits)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output)

    def __repr__(self) -> str:
        return f"ActivationQuantizer(bits={self.total_bits})"


def _detach_spectral_state(module: Module) -> None:
    """Drop spectral-cache state deep-copied from a compiled original.

    ``copy.deepcopy`` clones any attached
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` along
    with the layers, but the clone's entries are keyed by the *original*
    parameters' ids — dead weight at best, an id-reuse hazard at worst.
    A quantised view starts uncompiled; callers opt into serving with
    ``view.compile_inference()``.
    """
    if hasattr(module, "_spectral_cache"):
        del module._spectral_cache
    if getattr(module, "spectral_cache", None) is not None:
        module.spectral_cache = None
    # Recurse through the generic child protocol — nested Sequentials
    # *and* non-container children (the recurrent layers' gate
    # projections each carry their own spectral_cache slot).
    for _, child in module.named_children():
        _detach_spectral_state(child)


def quantized_view(network: Sequential, weight_bits: int,
                   activation_bits: int | None = None) -> Sequential:
    """A quantised deep copy of a trained network.

    Weights are rounded to ``weight_bits``; when ``activation_bits`` is
    given, an :class:`ActivationQuantizer` follows every original layer so
    the inter-layer data stream carries the datapath precision too.
    The original network is left untouched (including any spectral cache
    it was compiled with — the view carries none).

    For fixed-point serving, chain ``.compile_inference()``: the view
    freezes in eval mode and every block-circulant layer's spectrum is
    computed once from the quantised defining vectors (see the module
    docstring).

    This is the uniform special case of :func:`repro.plan.planned_view` —
    every layer gets the same word length, no backend changes. Per-layer
    word lengths and backend selection go through an
    :class:`~repro.plan.ExecutionPlan` directly.
    """
    # Lazy import: repro.plan imports this module's quantiser machinery.
    from repro.plan import ExecutionPlan, planned_view

    plan = ExecutionPlan.uniform(
        sum(1 for _ in network.planned_layers()),
        bits=weight_bits,
        activation_bits=activation_bits,
    )
    return planned_view(network, plan, compile=False)


def quantization_format(network) -> dict | None:
    """The fixed-point format a network pipeline serves, or ``None``.

    Inspects the markers the quantisation entry points leave behind:
    ``weight_quant_bits`` (set by :func:`quantize_network_weights` /
    :func:`quantized_view`) and the word length of the first
    :class:`ActivationQuantizer` in the pipeline. A float network — never
    quantised, no quantiser layers — returns ``None``. The artifact store
    records this in its manifest so a loaded endpoint knows what
    precision it is serving.
    """
    weight_bits = getattr(network, "weight_quant_bits", None)
    activation_bits = None
    for layer in getattr(network, "layers", ()):
        if isinstance(layer, ActivationQuantizer):
            activation_bits = layer.total_bits
            break
    if weight_bits is None and activation_bits is None:
        return None
    return {"weight_bits": weight_bits, "activation_bits": activation_bits}


def network_accuracy(network: Sequential, x: np.ndarray,
                     y: np.ndarray, *, on_empty: str = "nan") -> float:
    """Plain arg-max classification accuracy in eval mode.

    An empty batch has no defined accuracy (``mean`` over zero samples
    divides by zero): by default the result is ``float("nan")``; pass
    ``on_empty="raise"`` to get a :class:`~repro.errors.ConfigurationError`
    instead — useful when an empty evaluation set indicates a wiring bug.
    """
    if on_empty not in ("nan", "raise"):
        raise ConfigurationError(
            f"on_empty must be 'nan' or 'raise', got {on_empty!r}"
        )
    x = np.asarray(x)
    if x.shape[0] == 0:
        if on_empty == "raise":
            raise ConfigurationError(
                "network_accuracy received an empty batch; accuracy over "
                "zero samples is undefined"
            )
        return float("nan")
    # Restore the prior mode rather than forcing train(): the network may
    # be a compiled serving view (accuracy probe around a requantise), and
    # flipping it to training mode would break the reentrancy contract.
    was_training = network.training
    network.eval()
    try:
        logits = network(x)
    finally:
        if was_training:
            network.train()
    return float(np.mean(np.argmax(logits, axis=1) == y))


def accuracy_vs_bits(network: Sequential, x: np.ndarray, y: np.ndarray,
                     bit_widths=(16, 12, 8, 6, 4),
                     quantize_activations: bool = True,
                     on_empty: str = "nan") -> dict[int, float]:
    """Accuracy of the quantised network at each word length.

    Returns ``{bits: accuracy}``; the float64 baseline is available from
    :func:`network_accuracy` on the original network. ``on_empty``
    (``"nan"`` or ``"raise"``) is forwarded to :func:`network_accuracy`
    for zero-length evaluation sets.
    """
    results: dict[int, float] = {}
    for bits in bit_widths:
        view = quantized_view(
            network, bits, bits if quantize_activations else None
        )
        results[bits] = network_accuracy(view, x, y, on_empty=on_empty)
    return results


def requantize_endpoint(registry, endpoint: str, source: Sequential,
                        weight_bits: int,
                        activation_bits: int | None = None) -> Sequential:
    """Registry-driven requantise-and-swap for a served endpoint.

    Builds a fresh :func:`quantized_view` of ``source`` at the new word
    length, compiles it (spectra computed once from the fake-quantised
    weights), and atomically swaps it into
    ``registry[endpoint]`` — in-flight batches finish on the old view,
    new batches see the new one, never a mix. The old view (and its
    cached spectra, held only weakly) becomes collectable as soon as the
    last in-flight batch drops it. Returns the new compiled view.

    ``registry`` is a :class:`repro.serving.ModelRegistry` (duck-typed:
    anything with a ``swap(name, network)`` method works). When the
    registry exposes ``apply_plan`` (the generalised re-plan action,
    :meth:`repro.serving.ModelRegistry.apply_plan`), the requantisation
    is routed through it — same atomic-swap semantics, plus the uniform
    plan is recorded on the endpoint and spectra of layers the new word
    length leaves bit-identical are seeded instead of recomputed.
    """
    from repro.plan import ExecutionPlan

    plan = ExecutionPlan.uniform(
        sum(1 for _ in source.planned_layers()),
        bits=weight_bits,
        activation_bits=activation_bits,
    )
    if hasattr(registry, "apply_plan"):
        return registry.apply_plan(endpoint, plan, source=source)
    from repro.plan import planned_view

    view = planned_view(source, plan)
    registry.swap(endpoint, view)
    return view
