"""Fixed-point quantisation (paper §4.2 and the Fig 15 4-bit mode).

CirCNN's hardware uses 16-bit fixed-point inputs and weights; the ASIC
study additionally evaluates an aggressive 4-bit near-threshold mode. This
package simulates those number formats in software:

- :class:`repro.quant.fixed_point.FixedPointFormat` — a signed Q-format
  with round-to-nearest and saturation;
- :mod:`repro.quant.schemes` — per-tensor formats (the exponent is chosen
  from the tensor's dynamic range), fake-quantisation helpers for whole
  models, and error metrics.
"""

from repro.quant.fixed_point import FixedPointFormat
from repro.quant.schemes import (
    QuantizationReport,
    fit_format,
    quantization_snr_db,
    quantize_per_sample,
    quantize_tensor,
)
from repro.quant.network import (
    ActivationQuantizer,
    accuracy_vs_bits,
    network_accuracy,
    quantization_format,
    quantize_network_weights,
    quantized_view,
    requantize_endpoint,
)

__all__ = [
    "FixedPointFormat",
    "QuantizationReport",
    "fit_format",
    "quantize_tensor",
    "quantize_per_sample",
    "quantization_snr_db",
    "ActivationQuantizer",
    "quantize_network_weights",
    "quantized_view",
    "network_accuracy",
    "accuracy_vs_bits",
    "quantization_format",
    "requantize_endpoint",
]
