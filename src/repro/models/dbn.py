"""Restricted Boltzmann Machines and Deep Belief Networks (paper §3.4).

The paper reports that CirCNN also compresses DBNs and observes "a 5x to
9x acceleration in training". A DBN is a greedily trained stack of RBMs;
this module implements both the dense baseline and the block-circulant
variant, sharing one contrastive-divergence (CD-1) loop.

For the block-circulant RBM, the CD weight update — the batch-averaged
outer product ``<h v^T>_data − <h v^T>_model`` — is projected onto the
circulant structure exactly the way Algorithm 2 projects FC-layer
gradients: every outer product becomes a circular cross-correlation in the
frequency domain, so a training step costs O(pq·k log k) instead of
O(n_h · n_v).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circulant.ops import (
    block_circulant_backward,
    block_circulant_forward,
    block_dims,
    partition_vector,
    unpartition_vector,
)
from repro.errors import ConfigurationError, ShapeError
from repro.fftcore.backend import get_backend
from repro.utils.rng import make_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class RBM:
    """A binary-unit RBM with either dense or block-circulant weights.

    Parameters
    ----------
    n_visible, n_hidden:
        Layer widths.
    block_size:
        ``None`` for a dense ``(n_hidden, n_visible)`` weight matrix, or a
        circulant block size ``k`` for the compressed variant.
    """

    def __init__(self, n_visible: int, n_hidden: int,
                 block_size: int | None = None, seed=None):
        if n_visible <= 0 or n_hidden <= 0:
            raise ConfigurationError("layer widths must be positive")
        self.n_visible = n_visible
        self.n_hidden = n_hidden
        self.block_size = block_size
        self.rng = make_rng(seed)
        scale = 0.1
        if block_size is None:
            self.weight = self.rng.normal(
                0.0, scale, size=(n_hidden, n_visible)
            )
            self.p = self.q = None
        else:
            self.p, self.q = block_dims(n_hidden, n_visible, block_size)
            self.weight = self.rng.normal(
                0.0, scale, size=(self.p, self.q, block_size)
            )
        self.bias_visible = np.zeros(n_visible)
        self.bias_hidden = np.zeros(n_hidden)

    # -- affine maps ----------------------------------------------------------
    @property
    def is_circulant(self) -> bool:
        return self.block_size is not None

    @property
    def num_weight_parameters(self) -> int:
        """Stored weight scalars (the §3.4 compression quantity)."""
        return int(self.weight.size)

    def _wv(self, v: np.ndarray) -> np.ndarray:
        """``W @ v`` for a batch of visible vectors."""
        if not self.is_circulant:
            return v @ self.weight.T
        blocks = partition_vector(v, self.block_size, self.q)
        out = block_circulant_forward(self.weight, blocks)
        return unpartition_vector(out, self.n_hidden)

    def _wt_h(self, h: np.ndarray) -> np.ndarray:
        """``W.T @ h`` for a batch of hidden vectors."""
        if not self.is_circulant:
            return h @ self.weight
        be = get_backend(None)
        h_blocks = partition_vector(h, self.block_size, self.p)
        wf = be.rfft(self.weight)
        hf = be.rfft(h_blocks)
        vf = np.einsum("pqf,bpf->bqf", np.conj(wf), hf)
        v_blocks = be.irfft(vf, n=self.block_size)
        return unpartition_vector(v_blocks, self.n_visible)

    def hidden_probs(self, v: np.ndarray) -> np.ndarray:
        """``P(h=1 | v)`` for a ``(batch, n_visible)`` array."""
        return _sigmoid(self._wv(v) + self.bias_hidden)

    def visible_probs(self, h: np.ndarray) -> np.ndarray:
        """``P(v=1 | h)`` for a ``(batch, n_hidden)`` array."""
        return _sigmoid(self._wt_h(h) + self.bias_visible)

    # -- training --------------------------------------------------------------
    def _weight_gradient(self, h: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Batch-summed ``h v^T`` projected onto the weight structure."""
        if not self.is_circulant:
            return h.T @ v
        v_blocks = partition_vector(v, self.block_size, self.q)
        h_blocks = partition_vector(h, self.block_size, self.p)
        grad_w, _ = block_circulant_backward(self.weight, v_blocks, h_blocks)
        return grad_w

    def cd1_step(self, v0: np.ndarray, lr: float = 0.05) -> float:
        """One CD-1 update on a batch; returns the reconstruction error.

        Positive phase uses the data; negative phase one Gibbs step with
        sampled hidden states, the standard Hinton recipe.
        """
        v0 = np.asarray(v0, dtype=np.float64)
        if v0.ndim != 2 or v0.shape[1] != self.n_visible:
            raise ShapeError(
                f"expected (batch, {self.n_visible}) batch, got {v0.shape}"
            )
        batch = v0.shape[0]
        h0_probs = self.hidden_probs(v0)
        h0_sample = (self.rng.random(h0_probs.shape) < h0_probs).astype(float)
        v1_probs = self.visible_probs(h0_sample)
        h1_probs = self.hidden_probs(v1_probs)
        positive = self._weight_gradient(h0_probs, v0)
        negative = self._weight_gradient(h1_probs, v1_probs)
        self.weight += lr * (positive - negative) / batch
        self.bias_visible += lr * np.mean(v0 - v1_probs, axis=0)
        self.bias_hidden += lr * np.mean(h0_probs - h1_probs, axis=0)
        return float(np.mean((v0 - v1_probs) ** 2))

    def reconstruction_error(self, v: np.ndarray) -> float:
        """Mean squared error of one deterministic reconstruction pass."""
        return float(np.mean((v - self.visible_probs(self.hidden_probs(v))) ** 2))


@dataclass
class DBNTrainingLog:
    """Per-layer, per-epoch reconstruction errors of greedy pretraining."""

    layer_errors: list[list[float]]


class DBN:
    """A greedily pretrained stack of RBMs (dense or block-circulant)."""

    def __init__(self, layer_widths: list[int],
                 block_size: int | None = None, seed=None):
        if len(layer_widths) < 2:
            raise ConfigurationError("DBN needs at least two layer widths")
        rng = make_rng(seed)
        self.rbms = [
            RBM(
                layer_widths[i], layer_widths[i + 1], block_size,
                seed=rng.integers(0, 2**31),
            )
            for i in range(len(layer_widths) - 1)
        ]

    @property
    def num_weight_parameters(self) -> int:
        return sum(rbm.num_weight_parameters for rbm in self.rbms)

    def pretrain(self, data: np.ndarray, epochs: int = 3,
                 batch_size: int = 32, lr: float = 0.05,
                 seed=None) -> DBNTrainingLog:
        """Greedy layer-wise CD-1 pretraining (the §3.4 training workload)."""
        rng = make_rng(seed)
        log = DBNTrainingLog(layer_errors=[])
        current = np.asarray(data, dtype=np.float64)
        for rbm in self.rbms:
            errors = []
            for _ in range(epochs):
                order = rng.permutation(len(current))
                epoch_error = 0.0
                for start in range(0, len(current), batch_size):
                    batch = current[order[start : start + batch_size]]
                    epoch_error += rbm.cd1_step(batch, lr) * len(batch)
                errors.append(epoch_error / len(current))
            log.layer_errors.append(errors)
            current = rbm.hidden_probs(current)
        return log

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Propagate data through every RBM's hidden activation."""
        current = np.asarray(data, dtype=np.float64)
        for rbm in self.rbms:
            current = rbm.hidden_probs(current)
        return current
