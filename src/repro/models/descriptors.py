"""Shape-level model descriptors.

The paper's storage (Fig 7) and hardware (Figs 13–15) results depend only
on layer *shapes* — parameter counts, MACs, FFT sizes — not on trained
weights. These descriptors capture exactly that, so a full-size AlexNet can
be analysed and mapped onto the architecture simulator without ever
allocating its 61 M parameters.

A :class:`CompressionPlan` assigns a circulant block size to each layer
(1 = uncompressed), which is the paper's per-layer accuracy/compression
knob (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circulant.ops import block_dims
from repro.errors import ConfigurationError
from repro.nn.im2col import conv_output_size


@dataclass(frozen=True)
class ConvSpec:
    """Shape of one convolutional layer (paper Eq. 6 symbols).

    ``in_hw`` is the spatial input size this layer sees in the network.
    """

    name: str
    in_channels: int
    out_channels: int
    field: int
    in_hw: tuple[int, int]
    stride: int = 1
    padding: int = 0

    @property
    def out_hw(self) -> tuple[int, int]:
        return (
            conv_output_size(self.in_hw[0], self.field, self.stride, self.padding),
            conv_output_size(self.in_hw[1], self.field, self.stride, self.padding),
        )

    @property
    def positions(self) -> int:
        """Output spatial positions (W-r+1)(H-r+1) in the paper's notation."""
        out_h, out_w = self.out_hw
        return out_h * out_w

    @property
    def dense_params(self) -> int:
        """Unstructured filter parameters: ``P·C·r²``."""
        return self.out_channels * self.in_channels * self.field**2

    @property
    def macs(self) -> int:
        """Multiply–accumulates of the dense layer per input image."""
        return self.positions * self.dense_params

    @property
    def kind(self) -> str:
        return "conv"


@dataclass(frozen=True)
class DenseSpec:
    """Shape of one fully-connected layer (paper Eq. 1 symbols)."""

    name: str
    in_features: int
    out_features: int

    @property
    def dense_params(self) -> int:
        """Unstructured weight parameters: ``m·n``."""
        return self.out_features * self.in_features

    @property
    def macs(self) -> int:
        """Multiply–accumulates of the dense layer per input image."""
        return self.dense_params

    @property
    def kind(self) -> str:
        return "fc"


@dataclass(frozen=True)
class PoolSpec:
    """Shape of one pooling layer (O(n) comparator work)."""

    name: str
    channels: int
    field: int
    in_hw: tuple[int, int]
    stride: int | None = None

    @property
    def effective_stride(self) -> int:
        return self.field if self.stride is None else self.stride

    @property
    def out_hw(self) -> tuple[int, int]:
        stride = self.effective_stride
        return (
            conv_output_size(self.in_hw[0], self.field, stride, 0),
            conv_output_size(self.in_hw[1], self.field, stride, 0),
        )

    @property
    def dense_params(self) -> int:
        return 0

    @property
    def macs(self) -> int:
        return 0

    @property
    def comparisons(self) -> int:
        """Comparator operations per image."""
        out_h, out_w = self.out_hw
        return self.channels * out_h * out_w * (self.field**2 - 1)

    @property
    def kind(self) -> str:
        return "pool"


LayerSpec = ConvSpec | DenseSpec | PoolSpec


@dataclass(frozen=True)
class ModelSpec:
    """An ordered stack of layer shapes with summary accounting."""

    name: str
    layers: tuple[LayerSpec, ...]
    input_shape: tuple[int, int, int]

    def layer(self, name: str) -> LayerSpec:
        """Look up a layer by name."""
        for spec in self.layers:
            if spec.name == name:
                return spec
        raise ConfigurationError(f"{self.name} has no layer named {name!r}")

    @property
    def conv_layers(self) -> tuple[ConvSpec, ...]:
        return tuple(s for s in self.layers if isinstance(s, ConvSpec))

    @property
    def fc_layers(self) -> tuple[DenseSpec, ...]:
        return tuple(s for s in self.layers if isinstance(s, DenseSpec))

    @property
    def total_dense_params(self) -> int:
        """Weight parameters of the uncompressed model."""
        return sum(s.dense_params for s in self.layers)

    @property
    def fc_dense_params(self) -> int:
        return sum(s.dense_params for s in self.fc_layers)

    @property
    def conv_dense_params(self) -> int:
        return sum(s.dense_params for s in self.conv_layers)

    @property
    def total_macs(self) -> int:
        """Per-image MACs of the uncompressed model (the "equivalent ops"
        numerator of §5.1's GOPS accounting, divided by two)."""
        return sum(s.macs for s in self.layers)


@dataclass(frozen=True)
class CompressionPlan:
    """Block-size assignment per layer (the Fig 7 compression knob).

    ``block_sizes`` maps layer name -> circulant block size ``k``; layers
    absent from the map stay uncompressed (k = 1). ``weight_bits`` is the
    stored word length (the paper uses 16-bit fixed point; dense baselines
    use 32-bit float).
    """

    block_sizes: dict[str, int] = field(default_factory=dict)
    weight_bits: int = 16

    def block_size(self, layer: LayerSpec) -> int:
        """Block size assigned to ``layer`` (1 if not compressed)."""
        k = self.block_sizes.get(layer.name, 1)
        if k < 1:
            raise ConfigurationError(
                f"block size for {layer.name!r} must be >= 1, got {k}"
            )
        return k

    def compressed_params(self, layer: LayerSpec) -> int:
        """Stored parameters of ``layer`` under this plan.

        FC: ``p·q·k`` defining-vector entries. CONV: ``r²·pp·qc·k``.
        Pool layers store nothing. Padding (non-divisible shapes) is
        included, exactly as :class:`repro.nn.BlockCirculantDense` stores it.
        """
        k = self.block_size(layer)
        if isinstance(layer, DenseSpec):
            p, q = block_dims(layer.out_features, layer.in_features, k)
            return p * q * k
        if isinstance(layer, ConvSpec):
            pp, qc = block_dims(layer.out_channels, layer.in_channels, k)
            return layer.field**2 * pp * qc * k
        return 0

    def total_compressed_params(self, model: ModelSpec) -> int:
        return sum(self.compressed_params(layer) for layer in model.layers)
