"""AlexNet — the paper's ImageNet workload (Figs 7, 13, 15; §5.3).

The full-size network exists here only as a :class:`ModelSpec` (its 62 M
parameters are never allocated); storage, complexity and hardware results
derive from the shapes. A scaled-down trainable ``alexnet_mini`` exercises
the same CONV->POOL->FC topology on 32x32 synthetic data.

Shapes follow the ungrouped single-tower AlexNet (Krizhevsky et al. 2012
without the two-GPU filter groups), the variant used by the acceleration
literature the paper compares against.
"""

from __future__ import annotations

from repro.models.descriptors import (
    CompressionPlan,
    ConvSpec,
    DenseSpec,
    ModelSpec,
    PoolSpec,
)
from repro.nn import (
    BlockCirculantConv2D,
    BlockCirculantDense,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)


def alexnet_spec() -> ModelSpec:
    """Shape descriptor of AlexNet for 3x227x227 inputs.

    FC layers hold 58.6 M of the 62.3 M weights — the "FC is the most
    storage-intensive layer" premise of §2.1.
    """
    return ModelSpec(
        name="alexnet",
        input_shape=(3, 227, 227),
        layers=(
            ConvSpec("conv1", 3, 96, 11, in_hw=(227, 227), stride=4),
            PoolSpec("pool1", 96, 3, in_hw=(55, 55), stride=2),
            ConvSpec("conv2", 96, 256, 5, in_hw=(27, 27), padding=2),
            PoolSpec("pool2", 256, 3, in_hw=(27, 27), stride=2),
            ConvSpec("conv3", 256, 384, 3, in_hw=(13, 13), padding=1),
            ConvSpec("conv4", 384, 384, 3, in_hw=(13, 13), padding=1),
            ConvSpec("conv5", 384, 256, 3, in_hw=(13, 13), padding=1),
            PoolSpec("pool3", 256, 3, in_hw=(13, 13), stride=2),
            DenseSpec("fc6", 9216, 4096),
            DenseSpec("fc7", 4096, 4096),
            DenseSpec("fc8", 4096, 1000),
        ),
    )


def default_alexnet_fc_plan(fc_block: int = 1024,
                            weight_bits: int = 16) -> CompressionPlan:
    """FC-only compression (the Fig 7a / §4.4 configuration).

    Block size 1024 divides fc6 (9216x4096) and fc7 (4096x4096) exactly;
    fc8's 1000-way output is padded to 1024. The softmax classifier layer
    itself is excluded from compression claims in the paper, so fc8 keeps a
    smaller block to preserve accuracy; the plan mirrors that by assigning
    fc8 block 512.
    """
    return CompressionPlan(
        block_sizes={"fc6": fc_block, "fc7": fc_block, "fc8": 512},
        weight_bits=weight_bits,
    )


def default_alexnet_full_plan(fc_block: int = 1024, conv_block: int = 32,
                              weight_bits: int = 16) -> CompressionPlan:
    """FC + CONV compression (the Fig 7c configuration).

    CONV block sizes respect the channel counts (conv1's 3 input channels
    cannot fold, later layers use ``conv_block``); the paper tunes block
    size per layer to keep accuracy degradation within 1-2%.
    """
    return CompressionPlan(
        block_sizes={
            "conv1": 1,
            "conv2": conv_block,
            "conv3": conv_block,
            "conv4": conv_block,
            "conv5": conv_block,
            "fc6": fc_block,
            "fc7": fc_block,
            "fc8": 512,
        },
        weight_bits=weight_bits,
    )


def alexnet_mini_spec() -> ModelSpec:
    """Shape descriptor of the scaled-down trainable AlexNet variant."""
    return ModelSpec(
        name="alexnet_mini",
        input_shape=(3, 32, 32),
        layers=(
            ConvSpec("conv1", 3, 16, 5, in_hw=(32, 32), padding=2),
            PoolSpec("pool1", 16, 2, in_hw=(32, 32)),
            ConvSpec("conv2", 16, 32, 3, in_hw=(16, 16), padding=1),
            PoolSpec("pool2", 32, 2, in_hw=(16, 16)),
            DenseSpec("fc1", 2048, 256),
            DenseSpec("fc2", 256, 10),
        ),
    )


def build_alexnet_mini(plan: CompressionPlan | None = None,
                       num_classes: int = 10, seed=0) -> Sequential:
    """Trainable mini-AlexNet (3x32x32 inputs) with optional compression."""
    spec = alexnet_mini_spec()

    def k(name: str) -> int:
        return plan.block_size(spec.layer(name)) if plan is not None else 1

    base = 0 if seed is None else int(seed) * 100
    layers = []
    conv1_k = k("conv1")
    if conv1_k > 1:
        layers.append(
            BlockCirculantConv2D(3, 16, 5, conv1_k, padding=2, seed=base + 1)
        )
    else:
        layers.append(Conv2D(3, 16, 5, padding=2, seed=base + 1))
    layers += [ReLU(), MaxPool2D(2)]
    conv2_k = k("conv2")
    if conv2_k > 1:
        layers.append(
            BlockCirculantConv2D(16, 32, 3, conv2_k, padding=1, seed=base + 2)
        )
    else:
        layers.append(Conv2D(16, 32, 3, padding=1, seed=base + 2))
    layers += [ReLU(), MaxPool2D(2), Flatten()]
    fc1_k = k("fc1")
    if fc1_k > 1:
        layers.append(BlockCirculantDense(2048, 256, fc1_k, seed=base + 3))
    else:
        layers.append(Dense(2048, 256, seed=base + 3))
    layers.append(ReLU())
    fc2_k = k("fc2")
    if fc2_k > 1:
        layers.append(BlockCirculantDense(256, num_classes, fc2_k, seed=base + 4))
    else:
        layers.append(Dense(256, num_classes, seed=base + 4))
    return Sequential(*layers)
