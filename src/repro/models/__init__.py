"""Model zoo: the networks of the paper's evaluation.

Shape descriptors (:class:`~repro.models.descriptors.ModelSpec`) drive all
storage and hardware accounting; the ``build_*`` functions construct
trainable NumPy networks for the accuracy experiments.
"""

from repro.models.descriptors import (
    CompressionPlan,
    ConvSpec,
    DenseSpec,
    LayerSpec,
    ModelSpec,
    PoolSpec,
)
from repro.models.lenet import (
    build_lenet5,
    default_lenet5_caffe_plan,
    default_lenet5_plan,
    lenet5_caffe_spec,
    lenet5_spec,
)
from repro.models.alexnet import (
    alexnet_mini_spec,
    alexnet_spec,
    build_alexnet_mini,
    default_alexnet_fc_plan,
    default_alexnet_full_plan,
)
from repro.models.mlp import (
    build_mlp,
    cifar10_convnet_spec,
    default_fig14_plans,
    mnist_mlp_spec,
    svhn_convnet_spec,
)
from repro.models.dbn import DBN, RBM

__all__ = [
    "CompressionPlan",
    "ConvSpec",
    "DenseSpec",
    "PoolSpec",
    "LayerSpec",
    "ModelSpec",
    "lenet5_spec",
    "lenet5_caffe_spec",
    "build_lenet5",
    "default_lenet5_plan",
    "default_lenet5_caffe_plan",
    "alexnet_spec",
    "alexnet_mini_spec",
    "build_alexnet_mini",
    "default_alexnet_fc_plan",
    "default_alexnet_full_plan",
    "build_mlp",
    "mnist_mlp_spec",
    "cifar10_convnet_spec",
    "svhn_convnet_spec",
    "default_fig14_plans",
    "DBN",
    "RBM",
]
