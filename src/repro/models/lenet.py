"""LeNet-5 — the paper's MNIST workload (Figs 7, 14; §5.3).

Two artefacts: the exact shape descriptor (for storage and hardware
accounting) and a trainable builder that produces either the dense baseline
or the block-circulant version with a per-layer block-size plan.
"""

from __future__ import annotations

from repro.models.descriptors import (
    CompressionPlan,
    ConvSpec,
    DenseSpec,
    ModelSpec,
    PoolSpec,
)
from repro.nn import (
    BlockCirculantConv2D,
    BlockCirculantDense,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)


def lenet5_spec() -> ModelSpec:
    """Shape descriptor of LeNet-5 for 28x28 single-channel inputs.

    conv1 (1->6, 5x5, pad 2), pool, conv2 (6->16, 5x5), pool,
    fc1 400->120, fc2 120->84, fc3 84->10. 61,706 weights total, of which
    58,920 (95%) sit in the FC layers — the paper's motivation for
    compressing FC first.
    """
    return ModelSpec(
        name="lenet5",
        input_shape=(1, 28, 28),
        layers=(
            ConvSpec("conv1", 1, 6, 5, in_hw=(28, 28), padding=2),
            PoolSpec("pool1", 6, 2, in_hw=(28, 28)),
            ConvSpec("conv2", 6, 16, 5, in_hw=(14, 14)),
            PoolSpec("pool2", 16, 2, in_hw=(10, 10)),
            DenseSpec("fc1", 400, 120),
            DenseSpec("fc2", 120, 84),
            DenseSpec("fc3", 84, 10),
        ),
    )


def lenet5_caffe_spec() -> ModelSpec:
    """The Caffe LeNet variant used by the compression literature.

    conv1 (1->20, 5x5), pool, conv2 (20->50, 5x5), pool, fc1 800->500,
    fc2 500->10 — 430,500 weights. This is the "LeNet-5" that Han et
    al. [34] prune by 12x, i.e. the comparison point of Fig 7c, and its
    800x500 fc1 is what makes the 400x+ FC storage savings of Fig 7a
    arithmetically reachable on MNIST.
    """
    return ModelSpec(
        name="lenet5_caffe",
        input_shape=(1, 28, 28),
        layers=(
            ConvSpec("conv1", 1, 20, 5, in_hw=(28, 28)),
            PoolSpec("pool1", 20, 2, in_hw=(24, 24)),
            ConvSpec("conv2", 20, 50, 5, in_hw=(12, 12)),
            PoolSpec("pool2", 50, 2, in_hw=(8, 8)),
            DenseSpec("fc1", 800, 500),
            DenseSpec("fc2", 500, 10),
        ),
    )


def default_lenet5_caffe_plan(weight_bits: int = 16) -> CompressionPlan:
    """Fig 7 block plan for the Caffe LeNet: fold fc1 by its full output
    width (k = 500, one padded block row), conv2 by 10 across its 20x50
    channel grid, and keep the tiny classifier/conv1 uncompressed."""
    return CompressionPlan(
        block_sizes={"conv2": 10, "fc1": 500, "fc2": 10},
        weight_bits=weight_bits,
    )


def default_lenet5_plan(fc_block: int = 40, conv_block: int = 2,
                        weight_bits: int = 16) -> CompressionPlan:
    """The block-size plan used by the LeNet-5 experiments.

    FC blocks of 40 divide 400/120 exactly and compress the dominant fc1;
    the last classifier layer (fc3, 84->10) is left uncompressed following
    the paper's practice of excluding the softmax layer. Conv blocks are
    small because LeNet's channel counts are 6 and 16.
    """
    return CompressionPlan(
        block_sizes={
            "conv1": 1,  # 1 input channel: nothing to fold
            "conv2": conv_block,
            "fc1": fc_block,
            "fc2": min(fc_block, 12),
        },
        weight_bits=weight_bits,
    )


def build_lenet5(plan: CompressionPlan | None = None, num_classes: int = 10,
                 seed=0) -> Sequential:
    """Build a trainable LeNet-5.

    ``plan=None`` gives the dense baseline; otherwise every layer with an
    assigned block size > 1 becomes block-circulant. Layer shapes follow
    :func:`lenet5_spec` exactly.
    """
    spec = lenet5_spec()

    def k(name: str) -> int:
        return plan.block_size(spec.layer(name)) if plan is not None else 1

    def conv(name: str, cin: int, cout: int, field: int, padding: int,
             layer_seed: int):
        size = k(name)
        if size > 1:
            return BlockCirculantConv2D(
                cin, cout, field, block_size=size, padding=padding,
                seed=layer_seed,
            )
        return Conv2D(cin, cout, field, padding=padding, seed=layer_seed)

    def dense(name: str, nin: int, nout: int, layer_seed: int):
        size = k(name)
        if size > 1:
            return BlockCirculantDense(nin, nout, size, seed=layer_seed)
        return Dense(nin, nout, seed=layer_seed)

    base = 0 if seed is None else int(seed) * 100
    return Sequential(
        conv("conv1", 1, 6, 5, 2, base + 1),
        ReLU(),
        MaxPool2D(2),
        conv("conv2", 6, 16, 5, 0, base + 2),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        dense("fc1", 400, 120, base + 3),
        ReLU(),
        dense("fc2", 120, 84, base + 4),
        ReLU(),
        dense("fc3", 84, num_classes, base + 5),
    )
