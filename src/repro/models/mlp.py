"""Configurable MLP builders + the small convnets of the Fig 14 comparison.

The TrueNorth comparison (Fig 14) runs end-to-end networks on MNIST,
CIFAR-10 and SVHN. The paper notes its CIFAR-10 model "uses small-scale
FFTs, which limits the degree of improvements" — the specs below encode
that: the MNIST/SVHN models use comfortable FC block sizes while the
CIFAR-10 model is conv-heavy with small channel counts.
"""

from __future__ import annotations

from repro.models.descriptors import (
    CompressionPlan,
    ConvSpec,
    DenseSpec,
    ModelSpec,
    PoolSpec,
)
from repro.nn import (
    BlockCirculantDense,
    Dense,
    ReLU,
    Sequential,
)


def build_mlp(in_features: int, hidden: list[int], num_classes: int,
              block_size: int | None = None, seed=0) -> Sequential:
    """A ReLU MLP; ``block_size`` switches every hidden layer to
    block-circulant (the output layer stays dense, matching the paper's
    exclusion of the softmax layer from compression)."""
    net = Sequential()
    base = 0 if seed is None else int(seed) * 100
    previous = in_features
    for index, width in enumerate(hidden):
        if block_size is not None and block_size > 1:
            net.add(
                BlockCirculantDense(previous, width, block_size,
                                    seed=base + index)
            )
        else:
            net.add(Dense(previous, width, seed=base + index))
        net.add(ReLU())
        previous = width
    net.add(Dense(previous, num_classes, seed=base + len(hidden)))
    return net


def mnist_mlp_spec(hidden: int = 512) -> ModelSpec:
    """784-h-h-10 MLP shape used for MNIST throughput mapping."""
    return ModelSpec(
        name="mnist_mlp",
        input_shape=(1, 28, 28),
        layers=(
            DenseSpec("fc1", 784, hidden),
            DenseSpec("fc2", hidden, hidden),
            DenseSpec("fc3", hidden, 10),
        ),
    )


def cifar10_convnet_spec() -> ModelSpec:
    """Small conv-heavy CIFAR-10 network (Fig 14's CIFAR workload).

    Channel counts are modest, so circulant blocks — and therefore FFT
    sizes — stay small: the regime where the paper concedes TrueNorth wins
    on throughput.
    """
    return ModelSpec(
        name="cifar10_convnet",
        input_shape=(3, 32, 32),
        layers=(
            ConvSpec("conv1", 3, 32, 3, in_hw=(32, 32), padding=1),
            ConvSpec("conv2", 32, 32, 3, in_hw=(32, 32), padding=1),
            PoolSpec("pool1", 32, 2, in_hw=(32, 32)),
            ConvSpec("conv3", 32, 64, 3, in_hw=(16, 16), padding=1),
            ConvSpec("conv4", 64, 64, 3, in_hw=(16, 16), padding=1),
            PoolSpec("pool2", 64, 2, in_hw=(16, 16)),
            ConvSpec("conv5", 64, 128, 3, in_hw=(8, 8), padding=1),
            ConvSpec("conv6", 128, 128, 3, in_hw=(8, 8), padding=1),
            PoolSpec("pool3", 128, 2, in_hw=(8, 8)),
            DenseSpec("fc1", 2048, 512),
            DenseSpec("fc2", 512, 10),
        ),
    )


def svhn_convnet_spec() -> ModelSpec:
    """Compact SVHN network (Fig 14's SVHN workload): one light conv stage
    feeding FC layers with large circulant-friendly widths."""
    return ModelSpec(
        name="svhn_convnet",
        input_shape=(3, 32, 32),
        layers=(
            ConvSpec("conv1", 3, 16, 5, in_hw=(32, 32), padding=2, stride=2),
            PoolSpec("pool1", 16, 2, in_hw=(16, 16)),
            DenseSpec("fc1", 1024, 512),
            DenseSpec("fc2", 512, 10),
        ),
    )


def default_fig14_plans() -> dict[str, CompressionPlan]:
    """Block-size plans used when mapping the Fig 14 models onto hardware."""
    return {
        "mnist_mlp": CompressionPlan(
            block_sizes={"fc1": 128, "fc2": 128, "fc3": 2}
        ),
        "cifar10_convnet": CompressionPlan(
            block_sizes={
                "conv1": 1, "conv2": 4, "conv3": 4, "conv4": 4,
                "conv5": 4, "conv6": 4, "fc1": 64, "fc2": 2,
            }
        ),
        "svhn_convnet": CompressionPlan(
            block_sizes={"conv1": 1, "fc1": 256, "fc2": 2}
        ),
    }
