"""Universal-approximation error-bound demonstration (paper §3.3).

The paper proves block-circulant networks are universal approximators with
an O(1/n) error bound in the layer width ``n``. A constructive proof is
out of scope for code, but the *consequence* is measurable: the achievable
approximation error of a width-``n`` block-circulant layer on a fixed
smooth target should decay roughly like ``1/n``.

To keep the measurement deterministic and optimisation-noise-free we use
the random-feature construction that underlies such bounds: a frozen
random block-circulant hidden layer ``relu(W x + b)`` followed by a
ridge-regression-fitted linear readout (fitting the readout exactly is a
lower bound on what full training could achieve at that width).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circulant.ops import (
    block_circulant_forward,
    block_dims,
    partition_vector,
    unpartition_vector,
)
from repro.errors import ConfigurationError
from repro.utils.rng import make_rng


def _target_function(x: np.ndarray) -> np.ndarray:
    """A fixed smooth scalar target on the unit cube (mixture of bumps)."""
    return (
        np.sin(3.0 * x[:, 0])
        + 0.5 * np.cos(5.0 * x[:, 1] + x[:, 0])
        + 0.3 * np.exp(-4.0 * np.sum((x - 0.5) ** 2, axis=1))
    )


def _random_feature_error(width: int, block_size: int, x: np.ndarray,
                          y: np.ndarray, x_test: np.ndarray,
                          y_test: np.ndarray, seed) -> float:
    """Test RMSE of a width-``width`` circulant random-feature model."""
    rng = make_rng(seed)
    dims = x.shape[1]
    p, q = block_dims(width, dims, block_size)
    w = rng.normal(0.0, 1.0, size=(p, q, block_size))
    bias = rng.uniform(-np.pi, np.pi, size=width)

    def features(data: np.ndarray) -> np.ndarray:
        blocks = partition_vector(data, block_size, q)
        hidden = unpartition_vector(
            block_circulant_forward(w, blocks), width
        )
        return np.maximum(hidden + bias, 0.0)

    phi = features(x)
    # Ridge regression readout; the ridge scales with the feature energy
    # so wide models do not overfit the finite training sample (which
    # would mask the width-driven error decay being measured).
    gram = phi.T @ phi
    ridge = 1e-3 * np.trace(gram) / width + 1e-10
    gram = gram + ridge * np.eye(width)
    readout = np.linalg.solve(gram, phi.T @ y)
    prediction = features(x_test) @ readout
    return float(np.sqrt(np.mean((prediction - y_test) ** 2)))


def approximation_error_curve(widths: list[int], block_size: int = 8,
                              num_samples: int = 2048, dims: int = 8,
                              num_seeds: int = 3,
                              seed=0) -> list[tuple[int, float]]:
    """Measured approximation error at each width (averaged over seeds).

    Returns ``[(width, rmse), ...]`` sorted by width. Tests assert the
    curve is (weakly) decreasing and consistent with an inverse-width law,
    the §3.3 claim.
    """
    if not widths:
        raise ConfigurationError("widths must be non-empty")
    rng = make_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(num_samples, dims))
    y = _target_function(x)
    x_test = rng.uniform(0.0, 1.0, size=(num_samples // 2, dims))
    y_test = _target_function(x_test)
    curve = []
    for width in sorted(widths):
        errors = [
            _random_feature_error(
                width, block_size, x, y, x_test, y_test,
                rng.integers(0, 2**31),
            )
            for _ in range(num_seeds)
        ]
        curve.append((width, float(np.mean(errors))))
    return curve


@dataclass(frozen=True)
class InverseWidthFit:
    """Least-squares fit of ``error ≈ c / n^alpha`` on a log-log scale."""

    alpha: float
    log_c: float


def fit_inverse_width_law(curve: list[tuple[int, float]]) -> InverseWidthFit:
    """Fit the decay exponent of an approximation-error curve.

    ``alpha`` near (or above) 1 is consistent with the paper's O(1/n)
    bound; ``alpha`` near 0 would falsify it.
    """
    if len(curve) < 2:
        raise ConfigurationError("need at least two (width, error) points")
    widths = np.array([w for w, _ in curve], dtype=float)
    errors = np.array([max(e, 1e-12) for _, e in curve], dtype=float)
    slope, intercept = np.polyfit(np.log(widths), np.log(errors), 1)
    return InverseWidthFit(alpha=float(-slope), log_c=float(intercept))
