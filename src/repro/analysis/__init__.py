"""Complexity accounting and theory demonstrations (paper §3.3–3.4)."""

from repro.analysis.complexity import (
    LayerWork,
    block_circulant_conv_work,
    block_circulant_fc_work,
    dense_fc_ops,
    fc_compute_speedup,
    model_work,
    pool_work,
    training_step_ops,
)
from repro.analysis.approximation import (
    approximation_error_curve,
    fit_inverse_width_law,
)

__all__ = [
    "LayerWork",
    "dense_fc_ops",
    "block_circulant_fc_work",
    "block_circulant_conv_work",
    "pool_work",
    "model_work",
    "fc_compute_speedup",
    "training_step_ops",
    "approximation_error_curve",
    "fit_inverse_width_law",
]
