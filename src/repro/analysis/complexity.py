"""Exact operation counts: dense vs block-circulant layers.

This module turns layer shapes into *work items* — FFT transforms,
frequency-domain multiplies/accumulates, scalar ops, and memory words —
that (a) verify the paper's O(n²) -> O(n log n) complexity claims
numerically and (b) feed the architecture simulator, which converts work
into cycles and energy.

Scheduling conventions (documented because they matter to the counts):

- Weights are stored pre-transformed (``FFT(w_ij)``), as the paper's Fig 5
  notes ("w_ij or FFT(w_ij) is stored"), so inference performs no weight
  FFTs.
- Per-block products are accumulated *in the frequency domain* (one IFFT
  per output block, not one per block pair). This is the standard
  optimisation and strictly dominates Algorithm 1's literal per-pair IFFT;
  the asymptotic class is unchanged.
- Real-input symmetry halves FFT butterflies and spectrum width
  (:mod:`repro.fftcore.ops_count`); spectra carry ``k/2 + 1`` complex bins.
- The basic computing block is radix-2, so a block size that is not a
  power of two is zero-padded to the next power of two for *compute*
  purposes (storage still counts the ``k`` stored defining-vector
  entries): an FC layer with k = 40 runs size-64 transforms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circulant.ops import block_dims
from repro.errors import ConfigurationError
from repro.fftcore.ops_count import (
    COMPLEX_MULT_REAL_ADDS,
    COMPLEX_MULT_REAL_MULTS,
    real_fft_butterflies,
    real_fft_ops,
)
from repro.models.descriptors import (
    CompressionPlan,
    ConvSpec,
    DenseSpec,
    ModelSpec,
    PoolSpec,
)
from repro.utils.validation import next_power_of_two


@dataclass(frozen=True)
class LayerWork:
    """Hardware-relevant work of one layer for one input image.

    Attributes
    ----------
    name, kind:
        Layer identity (``kind`` in {"fc", "conv", "pool"}).
    fft_size:
        Circulant block size ``k`` (0 when the layer does no FFT work).
    num_fft:
        Real-input FFT/IFFT transforms of size ``fft_size`` executed.
    cmult:
        Complex multiplies in the frequency domain (element-wise products).
    cadd:
        Complex additions (frequency-domain accumulation across blocks).
    scalar_ops:
        Plain scalar operations on the peripheral block: bias adds, ReLU /
        pooling comparisons, and — for uncompressed (k = 1) layers — the
        dense MAC work itself.
    weight_words:
        Weight words read from on-chip RAM (frequency-domain storage:
        2 reals per retained bin).
    activation_words:
        Activation words streamed in + out.
    dense_macs:
        MACs of the *uncompressed* layer — numerator of the paper's
        "equivalent GOPS" metric (§5.1).
    """

    name: str
    kind: str
    fft_size: int
    num_fft: int
    cmult: int
    cadd: int
    scalar_ops: int
    weight_words: int
    activation_words: int
    dense_macs: int

    @property
    def butterflies(self) -> int:
        """Total FFT butterflies (real-input counting)."""
        if self.fft_size <= 1:
            return 0
        return self.num_fft * real_fft_butterflies(self.fft_size)

    @property
    def fft_real_ops(self) -> int:
        """Scalar multiply/add operations inside the FFTs."""
        if self.fft_size <= 1:
            return 0
        return self.num_fft * real_fft_ops(self.fft_size).total_real_ops

    @property
    def peripheral_real_ops(self) -> int:
        """Scalar ops on the peripheral block (cmult + cadd + scalar)."""
        return (
            self.cmult * (COMPLEX_MULT_REAL_MULTS + COMPLEX_MULT_REAL_ADDS)
            + self.cadd * 2
            + self.scalar_ops
        )

    @property
    def total_real_ops(self) -> int:
        """All scalar arithmetic of the compressed layer."""
        return self.fft_real_ops + self.peripheral_real_ops


def _bins(k: int) -> int:
    """Retained half-spectrum bins of a size-``k`` real FFT."""
    return k // 2 + 1


def dense_fc_ops(m: int, n: int) -> int:
    """Scalar ops of a dense FC product: ``2 m n`` (multiply + add)."""
    return 2 * m * n


def block_circulant_fc_work(spec: DenseSpec, k: int,
                            activation: bool = True) -> LayerWork:
    """Work of one block-circulant FC layer (paper §3.1 / Algorithm 1).

    ``k = 1`` degenerates to the dense layer executed as scalar MACs on
    the peripheral block (no FFT structure to exploit).
    """
    m, n = spec.out_features, spec.in_features
    act = m if activation else 0
    if k <= 1:
        return LayerWork(
            name=spec.name, kind="fc", fft_size=0, num_fft=0, cmult=0,
            cadd=0, scalar_ops=dense_fc_ops(m, n) + m + act,
            weight_words=m * n, activation_words=m + n, dense_macs=spec.macs,
        )
    p, q = block_dims(m, n, k)
    fft_k = next_power_of_two(k)  # radix-2 engine pads non-pow2 blocks
    bins = _bins(fft_k)
    return LayerWork(
        name=spec.name,
        kind="fc",
        fft_size=fft_k,
        num_fft=q + p,  # q input FFTs + p output IFFTs
        cmult=p * q * bins,
        cadd=p * (q - 1) * bins,
        scalar_ops=m + act,  # bias + ReLU comparators
        weight_words=p * q * 2 * bins,
        activation_words=m + n,
        dense_macs=spec.macs,
    )


def block_circulant_conv_work(spec: ConvSpec, k: int,
                              activation: bool = True) -> LayerWork:
    """Work of one block-circulant CONV layer (paper §3.2).

    The im2col product runs per output position: ``r²·qc`` input-block
    FFTs, ``r²·pp·qc`` spectrum products accumulated into ``pp`` output
    blocks, and ``pp`` IFFTs. ``k = 1`` degenerates to dense MACs.
    """
    positions = spec.positions
    out_elems = positions * spec.out_channels
    act = out_elems if activation else 0
    if k <= 1:
        return LayerWork(
            name=spec.name, kind="conv", fft_size=0, num_fft=0, cmult=0,
            cadd=0, scalar_ops=2 * spec.macs + out_elems + act,
            weight_words=spec.dense_params,
            activation_words=_conv_activation_words(spec),
            dense_macs=spec.macs,
        )
    pp, qc = block_dims(spec.out_channels, spec.in_channels, k)
    fft_k = next_power_of_two(k)  # radix-2 engine pads non-pow2 blocks
    bins = _bins(fft_k)
    r2 = spec.field**2
    return LayerWork(
        name=spec.name,
        kind="conv",
        fft_size=fft_k,
        num_fft=positions * (r2 * qc + pp),
        cmult=positions * r2 * pp * qc * bins,
        cadd=positions * pp * (r2 * qc - 1) * bins,
        scalar_ops=out_elems + act,
        weight_words=r2 * pp * qc * 2 * bins,
        activation_words=_conv_activation_words(spec),
        dense_macs=spec.macs,
    )


def _conv_activation_words(spec: ConvSpec) -> int:
    in_h, in_w = spec.in_hw
    out_h, out_w = spec.out_hw
    return (
        spec.in_channels * in_h * in_w
        + spec.out_channels * out_h * out_w
    )


def pool_work(spec: PoolSpec) -> LayerWork:
    """Comparator work of a pooling layer (peripheral block, O(n))."""
    out_h, out_w = spec.out_hw
    in_h, in_w = spec.in_hw
    return LayerWork(
        name=spec.name, kind="pool", fft_size=0, num_fft=0, cmult=0, cadd=0,
        scalar_ops=spec.comparisons, weight_words=0,
        activation_words=spec.channels * (in_h * in_w + out_h * out_w),
        dense_macs=0,
    )


def model_work(model: ModelSpec, plan: CompressionPlan) -> list[LayerWork]:
    """Per-layer work items for a whole model under a compression plan."""
    work: list[LayerWork] = []
    for layer in model.layers:
        if isinstance(layer, DenseSpec):
            work.append(block_circulant_fc_work(layer, plan.block_size(layer)))
        elif isinstance(layer, ConvSpec):
            work.append(
                block_circulant_conv_work(layer, plan.block_size(layer))
            )
        elif isinstance(layer, PoolSpec):
            work.append(pool_work(layer))
        else:
            raise ConfigurationError(f"unknown layer spec {layer!r}")
    return work


def fc_compute_speedup(m: int, n: int, k: int) -> float:
    """Dense-vs-compressed scalar-op ratio for one FC layer.

    The paper's O(n²)/O(n log n): grows with k roughly as ``k / log k``
    once FFT costs dominate.
    """
    compressed = block_circulant_fc_work(
        DenseSpec("tmp", n, m), k, activation=False
    )
    return dense_fc_ops(m, n) / compressed.total_real_ops


def training_step_ops(m: int, n: int, k: int, batch: int = 1) -> dict[str, int]:
    """Scalar ops of one FC training step (forward + both gradients).

    Dense: forward ``2mn`` + grad_w ``2mn`` + grad_x ``2mn`` per sample.
    Block-circulant (Algorithm 2): three frequency-domain products sharing
    the input/grad spectra; per sample, 3 FFT/IFFT groups + 3 pq spectrum
    products. Used for the §3.4 DBN training-acceleration experiment.
    """
    dense = 3 * dense_fc_ops(m, n) * batch
    if k <= 1:
        return {"dense": dense, "block_circulant": dense}
    p, q = block_dims(m, n, k)
    bins = _bins(k)
    fft_cost = real_fft_ops(k).total_real_ops
    # Forward: q + p transforms; backward: p grad FFTs + (q + p*q... )
    # Count the canonical schedule: fwd (q in-FFT, p out-IFFT), bwd
    # (p grad-FFT, q grad_x-IFFT, pq grad_w-IFFT is avoided by freq-domain
    # accumulation into pq spectra then pq IFFTs once per batch).
    per_sample_ffts = (q + p) + (p + q)
    cmults = 3 * p * q * bins
    cadds = (p * (q - 1) + q * (p - 1)) * bins
    per_sample = per_sample_ffts * fft_cost + cmults * 6 + cadds * 2
    per_batch = p * q * fft_cost  # grad_w spectra -> defining vectors
    return {
        "dense": dense,
        "block_circulant": per_sample * batch + per_batch,
    }
