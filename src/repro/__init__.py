"""CirCNN reproduction — block-circulant DNNs and the CirCNN architecture.

A full-stack reproduction of *CirCNN: Accelerating and Compressing Deep
Neural Networks Using Block-Circulant Weight Matrices* (Ding et al.,
MICRO-50, 2017):

- ``repro.fftcore`` — from-scratch radix-2 / real-input FFT kernels, the
  recursive plan of Fig 9, and exact op counters.
- ``repro.circulant`` — circulant and block-circulant matrices with the
  FFT-domain forward/backward kernels of Algorithms 1-2.
- ``repro.nn`` — a NumPy NN framework with drop-in block-circulant FC and
  CONV layers.
- ``repro.models`` / ``repro.datasets`` — the paper's workloads (LeNet-5,
  AlexNet, DBNs) and synthetic stand-ins for its datasets.
- ``repro.compress`` — pruning / SVD / single-circulant baselines and
  bit-exact storage accounting.
- ``repro.quant`` — 16-bit and 4-bit fixed-point simulation.
- ``repro.arch`` — the CirCNN hardware engine model (basic computing
  block, peripheral block, memory subsystem, Algorithm 3 optimiser,
  FPGA/ASIC/embedded platforms).
- ``repro.experiments`` — one harness per paper figure, with paper-vs-
  measured tables and acceptance bands.

Quickstart::

    from repro.nn import BlockCirculantDense, Sequential, ReLU
    layer = BlockCirculantDense(1024, 512, block_size=64)

    from repro.experiments import run_experiment
    print(run_experiment("fig13").render())
"""

from repro.errors import (
    BackendError,
    ConfigurationError,
    ConvergenceError,
    NotPowerOfTwoError,
    ReproError,
    ShapeError,
    StoreError,
    StoreIntegrityError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ShapeError",
    "NotPowerOfTwoError",
    "ConfigurationError",
    "ConvergenceError",
    "BackendError",
    "StoreError",
    "StoreIntegrityError",
]
