"""Exception hierarchy for the CirCNN reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape or size."""


class NotPowerOfTwoError(ShapeError):
    """A transform size is not a power of two.

    The radix-2 FFT kernel (and the CirCNN basic computing block it models)
    only supports power-of-two sizes; see ``repro.fftcore``.
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration object (architecture spec, layer spec, ...) is invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure (training, design search) failed to converge."""


class BackendError(ReproError, ValueError):
    """An unknown or unavailable compute backend was requested."""


class PlanError(ConfigurationError):
    """An execution plan is invalid or could not be produced.

    Raised by :mod:`repro.plan` when a plan does not match the network it
    is applied to (wrong layer count, backend on a non-spectral layer,
    block-size mismatch) and by the autotuner when no candidate plan
    passes its bit-compatibility tolerance.
    """


class ServingError(ReproError, RuntimeError):
    """A serving-runtime request could not be served (see :mod:`repro.serving`).

    The common base of the runtime's *typed request outcomes* — admission
    rejection, deadline expiry, worker loss. Catching ``ServingError``
    around a ``Future.result()`` handles every way the serving layer can
    fail a request without touching model-level errors (``ShapeError``
    etc.), which indicate a malformed request rather than an overloaded
    or degraded server.
    """


class QueueFullError(ServingError):
    """Admission control rejected a request because the endpoint is full.

    The load-shedding fast path: raised synchronously at ``submit()``
    time — never after queueing — when an endpoint's bounded queue
    already holds ``queue_depth`` outstanding requests. Callers should
    back off or retry elsewhere; the server sheds instead of building an
    unbounded backlog whose every entry would miss its deadline anyway.
    """


class DeadlineExceededError(ServingError):
    """A request's deadline passed before a worker produced its result.

    Deadlines propagate with the request: the scheduler drops
    already-expired entries at batch formation and workers re-check
    before running a batch, so a hopeless request costs no forward pass.
    """


class WorkerCrashedError(ServingError):
    """A serving worker process died with this request in flight.

    Raised on every future assigned to the dead worker. The supervisor
    respawns a replacement from the shared-memory endpoint images (no
    FFT, no recompile), so subsequent requests succeed; in-flight ones
    fail fast with this error instead of hanging on a result that will
    never arrive.
    """


class WorkerWedgedError(WorkerCrashedError):
    """The wedge watchdog killed a worker stuck inside a batch.

    A *wedged* worker — parked in a forward that never returns — is
    worse than a crashed one: it holds its in-flight requests hostage
    until their deadlines burn. The watchdog (``wedge_timeout_s``)
    SIGKILLs any worker whose running batch exceeds the bound and fails
    its in-flight batches with this error. Subclasses
    :class:`WorkerCrashedError` because recovery is identical (the
    worker is lost and respawned; inference is idempotent, so a
    :class:`~repro.serving.resilience.RetryPolicy` may resubmit), while
    the type records that the loss was a deliberate watchdog kill.
    """


class CircuitOpenError(ServingError):
    """Admission rejected a request because the endpoint's circuit is open.

    Same contract as :class:`QueueFullError`: raised synchronously at
    ``submit()`` time, never after queueing. A
    :class:`~repro.serving.resilience.CircuitBreaker` opens when the
    endpoint's rolling-window error/expiry rate crosses its threshold,
    sheds traffic for a cooldown, then lets half-open probe requests
    through to decide whether to close again.
    """


class ServerClosedError(ServingError, ConfigurationError):
    """The serving runtime is stopped (or stopping) and cannot accept work.

    Raised by ``submit()`` on a server that is not running, and by
    retries that land after ``stop()`` began. Subclasses both
    :class:`ServingError` (it is a request outcome the serving layer
    produced) and :class:`ConfigurationError` (historically this path
    raised ``ConfigurationError``; existing handlers keep working).
    """


class StoreError(ReproError, ValueError):
    """A model-artifact store operation failed (see :mod:`repro.store`).

    Covers malformed or truncated manifests, unknown codecs, unsupported
    layer types, and artifacts written by an incompatible format version.
    """


class StoreIntegrityError(StoreError):
    """Stored artifact bytes fail their integrity check.

    Raised when a chunk's checksum no longer matches its recorded value
    (bit rot, truncated write, concurrent overwrite) or when an artifact's
    content hash does not match its manifest.
    """
