"""Exception hierarchy for the CirCNN reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape or size."""


class NotPowerOfTwoError(ShapeError):
    """A transform size is not a power of two.

    The radix-2 FFT kernel (and the CirCNN basic computing block it models)
    only supports power-of-two sizes; see ``repro.fftcore``.
    """


class ConfigurationError(ReproError, ValueError):
    """A configuration object (architecture spec, layer spec, ...) is invalid."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative procedure (training, design search) failed to converge."""


class BackendError(ReproError, ValueError):
    """An unknown or unavailable compute backend was requested."""


class StoreError(ReproError, ValueError):
    """A model-artifact store operation failed (see :mod:`repro.store`).

    Covers malformed or truncated manifests, unknown codecs, unsupported
    layer types, and artifacts written by an incompatible format version.
    """


class StoreIntegrityError(StoreError):
    """Stored artifact bytes fail their integrity check.

    Raised when a chunk's checksum no longer matches its recorded value
    (bit rot, truncated write, concurrent overwrite) or when an artifact's
    content hash does not match its manifest.
    """
