"""Block-circulant recurrent layers — LSTM and GRU gate matrices on the
CirCNN fast path.

The FFT→GEMM→iFFT structure of Algorithms 1–2 is not feedforward-specific:
"Efficient Recurrent Neural Networks using Structured Matrices in FPGAs"
(Li et al., see PAPERS.md) applies the same block-circulant compression to
every LSTM/GRU gate matrix. These layers do exactly that, on top of the
time-stepped execution contract of
:class:`~repro.nn.module.StatefulModule`:

- Each gate projection is a full :class:`~repro.nn.BlockCirculantDense`
  **child module** (LSTM: ``xi xf xg xo`` input-to-hidden with bias,
  ``hi hf hg ho`` hidden-to-hidden without; GRU: ``xr xz xn`` /
  ``hr hz hn``). Children surface through
  :meth:`~repro.nn.module.Module.named_children`, so ``planned_layers()``
  yields one entry *per gate* — :class:`repro.plan.ExecutionPlan`,
  ``planned_view``, the artifact store and ``ModelRegistry.apply_plan``
  all work on recurrent networks unchanged, with per-gate backends and
  word lengths.
- The layer itself owns the sequence loop so the FFT economics beat a
  per-step, per-gate implementation: every **weight spectrum is computed
  (or cache-served) once per sequence** and reused across all timesteps —
  a bigger reuse win than the feedforward 5→3 FFT ratio, since a
  sequence of length ``T`` touches each gate matrix ``T`` times. The
  input-to-hidden projections for *all* timesteps run as one batched
  ``rfft`` + one :func:`~repro.circulant.ops.spectral_contract` per gate
  (time folded into the batch axis, t-major), and each recurrent step
  transforms the hidden state once, sharing that spectrum across the
  four (three) hidden gates. Compiled forward cost over ``T`` steps:
  ``1 + T`` forward FFTs and ``G·(1 + T)`` inverse FFTs for ``G``
  x-gates — asserted exactly with ``CountingFFTBackend`` in the tests.

Training extends the spectral tape to **BPTT**: the recording forward
keeps the per-timestep input and hidden spectra (weight spectra shared,
as always), the backward walk transforms each step's pre-activation
gradients once while accumulating the hidden-state gradient in the
frequency domain (one inverse FFT per step), and the weight gradients
are *deferred* — all ``T`` timesteps contract in one
:func:`~repro.circulant.ops.block_circulant_backward` call per gate with
``cached_spectrum`` / ``cached_input_spectrum`` / ``cached_grad_spectrum``
all supplied, so those calls perform zero forward FFTs.

State is threaded per call (``init_state`` → ``*_with_state`` →
``(y, state)``), never stored on ``self``, so ``inference_forward``
stays reentrant under the serving runtimes; see ``docs/recurrent.md``.
"""

from __future__ import annotations

import numpy as np

from repro.circulant.ops import (
    block_circulant_backward,
    partition_vector,
    spectral_contract,
    unpartition_vector,
    weight_spectrum,
)
from repro.circulant.spectral_cache import SpectralWeightCache
from repro.errors import ConfigurationError, ShapeError
from repro.fftcore.backend import get_backend
from repro.nn.block_circulant_dense import BlockCirculantDense
from repro.nn.module import StatefulModule
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_positive


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Split by sign so exp never sees a large positive argument.
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class _BlockCirculantRecurrent(StatefulModule):
    """Shared scaffolding of the LSTM and GRU layers.

    Subclasses declare their gate rosters (``X_GATES`` input-to-hidden,
    ``H_GATES`` hidden-to-hidden, positionally paired) and the tape keys
    (``_X_KEYS`` / ``_H_KEYS``) naming which stacked pre-activation
    gradient drives each gate's deferred weight gradient.
    """

    X_GATES: tuple[str, ...] = ()
    H_GATES: tuple[str, ...] = ()
    _X_KEYS: tuple[str, ...] = ()
    _H_KEYS: tuple[str, ...] = ()

    def __init__(self, in_features: int, hidden_size: int, block_size: int,
                 bias: bool = True, seed=None, backend=None,
                 init: str = "he"):
        super().__init__()
        ensure_positive(in_features, "in_features")
        ensure_positive(hidden_size, "hidden_size")
        ensure_positive(block_size, "block_size")
        get_backend(backend)
        self.in_features = in_features
        self.hidden_size = hidden_size
        self.block_size = block_size
        self.backend = backend
        rng = make_rng(seed)
        for name in self.X_GATES:
            gate = BlockCirculantDense(
                in_features, hidden_size, block_size, bias=bias,
                seed=int(rng.integers(0, 2**31 - 1)), backend=backend,
                init=init,
            )
            setattr(self, name, gate)
        for name in self.H_GATES:
            gate = BlockCirculantDense(
                hidden_size, hidden_size, block_size, bias=False,
                seed=int(rng.integers(0, 2**31 - 1)), backend=backend,
                init=init,
            )
            setattr(self, name, gate)
        self._tape: dict | None = None
        #: Set False on the *first* trainable layer of a network to skip
        #: the ∂L/∂x contraction in backward (nobody consumes it there).
        self.needs_input_grad: bool = True

    # -- structure ------------------------------------------------------------
    def named_children(self):
        """The gate projections, input-to-hidden first — the traversal
        order behind per-gate plan entries and spectrum capture."""
        for name in (*self.X_GATES, *self.H_GATES):
            yield name, getattr(self, name)

    @property
    def input_sample_shape(self) -> tuple[int | None, ...]:
        """Per-sample ``(T, features)`` with the time axis free — the
        variable-length contract :attr:`time_axis` names axis 0 of."""
        return (None, self.in_features)

    # -- spectral-engine plumbing ---------------------------------------------
    def compile_inference(self, cache: SpectralWeightCache | None = None):
        """Freeze for serving: eval mode + every gate spectrum warmed in
        one shared cache (see ``BlockCirculantDense.compile_inference``).
        Returns self."""
        cache = cache if cache is not None else SpectralWeightCache()
        self.eval()
        for _, gate in self.named_children():
            gate.compile_inference(cache)
        return self

    def attach_spectral_cache(
        self, cache: SpectralWeightCache | None = None
    ):
        """Share a weight-spectrum cache across the gates without
        freezing — the training-mode entry point. Returns self."""
        cache = cache if cache is not None else SpectralWeightCache()
        for _, gate in self.named_children():
            gate.attach_spectral_cache(cache)
        return self

    def _gate_spectra(self) -> dict[str, np.ndarray]:
        """One weight half-spectrum per gate, resolved **once per
        sequence** — served from each gate's attached
        :class:`SpectralWeightCache` when present (zero FFTs while the
        weights are unchanged), else transformed here exactly once and
        reused across every timestep of the call."""
        spectra = {}
        for name, gate in self.named_children():
            wf = gate._weight_spectrum()
            if wf is None:
                wf = weight_spectrum(gate.weight.value, gate.backend)
            spectra[name] = wf
        return spectra

    def _project_rows(self, rows: np.ndarray, names: tuple[str, ...],
                      spectra: dict[str, np.ndarray]):
        """Run several gate projections over one set of input rows,
        sharing the input FFT.

        The gates in ``names`` all consume the same ``rows`` (all
        x-gates, or all h-gates), so the rows are partitioned and
        transformed once per distinct FFT backend among them — one
        ``rfft`` in the homogeneous case — and each gate then costs only
        its spectral contraction and inverse transform. Returns
        ``(outs, blocks_by_backend, spectra_by_backend)`` so recording
        callers can keep what the BPTT tape needs.
        """
        outs: dict[str, np.ndarray] = {}
        blocks_out: dict[str, np.ndarray] = {}
        rf_out: dict[str, np.ndarray] = {}
        groups: dict[str, tuple] = {}
        for name in names:
            be = get_backend(getattr(self, name).backend)
            groups.setdefault(be.name, (be, []))[1].append(name)
        for be, members in groups.values():
            blocks = partition_vector(
                rows, self.block_size, getattr(self, members[0]).q
            )
            rf = be.rfft(blocks)
            blocks_out[be.name] = blocks
            rf_out[be.name] = rf
            for name in members:
                gate = getattr(self, name)
                out = unpartition_vector(
                    be.irfft(
                        spectral_contract(spectra[name], rf),
                        n=self.block_size,
                    ),
                    gate.out_features,
                )
                if gate.bias is not None:
                    out = out + gate.bias.value
                outs[name] = out
        return outs, blocks_out, rf_out

    def _common_backend(self):
        """The single FFT backend shared by every gate — required on the
        recording (training) path, where the BPTT tape stacks activation
        spectra across gates. Heterogeneous per-gate backends are a
        serving-path feature (``planned_view``); the pure forwards handle
        them by grouping."""
        names = {get_backend(g.backend).name for _, g in self.named_children()}
        if len(names) > 1:
            raise ConfigurationError(
                f"training a {type(self).__name__} requires all gates on "
                f"one FFT backend, got {sorted(names)}; per-gate backends "
                "are for planned serving views, not the BPTT path"
            )
        return get_backend(next(iter(self.named_children()))[1].backend)

    def _check_sequence(self, x: np.ndarray) -> None:
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ShapeError(
                f"{type(self).__name__} expects (batch, T, "
                f"{self.in_features}) sequences, got {x.shape}"
            )
        if x.shape[0] < 1 or x.shape[1] < 1:
            raise ShapeError(
                f"batch and sequence length must be >= 1, got {x.shape}"
            )

    def _batched_x_preacts(self, x: np.ndarray,
                           spectra: dict[str, np.ndarray]):
        """All input-to-hidden pre-activations at once: time folds into
        the batch axis **t-major**, so row ``t·B + b`` is timestep ``t``
        of sample ``b`` — the same stacking order the BPTT tape uses for
        its per-step spectra, which is what lets the deferred weight
        gradients contract the recorded input spectrum as-is."""
        batch, steps, _ = x.shape
        flat = x.transpose(1, 0, 2).reshape(steps * batch, self.in_features)
        outs, blocks, rf = self._project_rows(flat, self.X_GATES, spectra)
        ax = {
            name: outs[name].reshape(steps, batch, self.hidden_size)
            for name in self.X_GATES
        }
        return ax, blocks, rf

    # -- deferred BPTT gradient plumbing --------------------------------------
    def _apply_deferred_grads(self, tape: dict, da: dict[str, np.ndarray],
                              gf_stack: dict[str, np.ndarray]) -> None:
        """The deferred weight (and bias) gradients, one kernel call per
        gate over the whole sequence.

        Every spectrum the contraction needs is already on the tape —
        the gate's weight spectrum, the t-major stacked input/hidden
        spectra from the forward walk, and the stacked pre-activation
        gradient spectra from the backward walk — so each
        :func:`block_circulant_backward` call performs **zero** forward
        FFTs (just the inverse transform of its result).
        """
        batch, steps = tape["shape"]
        k = self.block_size
        for gates, keys, blocks_key, spec_key in (
            (self.X_GATES, self._X_KEYS, "x_blocks", "xf"),
            (self.H_GATES, self._H_KEYS, "h_blocks", "hf"),
        ):
            for name, key in zip(gates, keys):
                gate = getattr(self, name)
                flat = da[key].reshape(steps * batch, self.hidden_size)
                if gate.bias is not None:
                    gate.bias.grad += flat.sum(axis=0)
                grad_w, _ = block_circulant_backward(
                    gate.weight.value, tape[blocks_key],
                    partition_vector(flat, k, gate.p), gate.backend,
                    cached_spectrum=tape["spectra"][name],
                    cached_input_spectrum=tape[spec_key],
                    cached_grad_spectrum=gf_stack[key],
                    compute_input_grad=False,
                )
                gate.weight.grad += grad_w

    def _input_gradient(self, tape: dict,
                        gf_stack: dict[str, np.ndarray]) -> np.ndarray:
        """∂L/∂x for the whole sequence: the per-gate input-gradient
        contractions summed in the frequency domain, so the ``G`` gates
        cost one inverse FFT total."""
        batch, steps = tape["shape"]
        be = tape["backend"]
        acc = None
        for name, key in zip(self.X_GATES, self._X_KEYS):
            term = np.matmul(
                gf_stack[key].transpose(2, 0, 1),
                np.conj(tape["spectra"][name]).transpose(2, 0, 1),
            )
            acc = term if acc is None else acc + term
        dx = unpartition_vector(
            be.irfft(acc.transpose(1, 2, 0), n=self.block_size),
            self.in_features,
        )
        return dx.reshape(steps, batch, self.in_features).transpose(1, 0, 2)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.in_features} -> "
            f"{self.hidden_size}, k={self.block_size})"
        )


class BlockCirculantLSTM(_BlockCirculantRecurrent):
    """LSTM whose 8 gate matrices are block-circulant (grid of circulant
    blocks, defining vectors trained directly).

    Cell update per timestep (state ``(h, c)``)::

        i = σ(W_xi x + b_i + W_hi h)      f = σ(W_xf x + b_f + W_hf h)
        g = tanh(W_xg x + b_g + W_hg h)   o = σ(W_xo x + b_o + W_ho h)
        c' = f ∘ c + i ∘ g                h' = o ∘ tanh(c')

    Input ``(batch, T, in_features)``, output ``(batch, T, hidden_size)``
    (the full hidden sequence — the time axis is preserved, which is what
    lets the serving scheduler scatter length-bucketed ragged batches
    back to per-request true lengths).
    """

    X_GATES = ("xi", "xf", "xg", "xo")
    H_GATES = ("hi", "hf", "hg", "ho")
    _X_KEYS = ("i", "f", "g", "o")
    _H_KEYS = ("i", "f", "g", "o")

    def init_state(self, batch_size: int):
        h = np.zeros((batch_size, self.hidden_size))
        c = np.zeros((batch_size, self.hidden_size))
        return h, c

    def _check_state(self, state, batch: int):
        h, c = state
        h = np.asarray(h, dtype=np.float64)
        c = np.asarray(c, dtype=np.float64)
        expected = (batch, self.hidden_size)
        if h.shape != expected or c.shape != expected:
            raise ShapeError(
                f"LSTM state must be a pair of {expected} arrays, got "
                f"{h.shape} and {c.shape}"
            )
        return h, c

    def inference_forward_with_state(self, x: np.ndarray, state):
        x = np.asarray(x, dtype=np.float64)
        self._check_sequence(x)
        batch, steps, _ = x.shape
        h, c = self._check_state(state, batch)
        spectra = self._gate_spectra()
        ax, _, _ = self._batched_x_preacts(x, spectra)
        ys = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            ah, _, _ = self._project_rows(h, self.H_GATES, spectra)
            gi = _sigmoid(ax["xi"][t] + ah["hi"])
            gf = _sigmoid(ax["xf"][t] + ah["hf"])
            gg = np.tanh(ax["xg"][t] + ah["hg"])
            go = _sigmoid(ax["xo"][t] + ah["ho"])
            c = gf * c + gi * gg
            h = go * np.tanh(c)
            ys[:, t] = h
        return ys, (h, c)

    def forward_with_state(self, x: np.ndarray, state):
        x = np.asarray(x, dtype=np.float64)
        self._check_sequence(x)
        batch, steps, _ = x.shape
        h, c = self._check_state(state, batch)
        be = self._common_backend()
        spectra = self._gate_spectra()
        k = self.block_size
        q_h = self.hi.q
        ax, x_blocks, xf_rec = self._batched_x_preacts(x, spectra)
        h_blocks = np.empty((steps * batch, q_h, k))
        hf_stack = np.empty(
            (steps * batch, q_h, k // 2 + 1), dtype=np.complex128
        )
        acts = {
            key: np.empty((steps, batch, self.hidden_size))
            for key in ("i", "f", "g", "o", "cp", "tc")
        }
        ys = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            ah, hb, hf = self._project_rows(h, self.H_GATES, spectra)
            h_blocks[t * batch:(t + 1) * batch] = hb[be.name]
            hf_stack[t * batch:(t + 1) * batch] = hf[be.name]
            gi = _sigmoid(ax["xi"][t] + ah["hi"])
            gf = _sigmoid(ax["xf"][t] + ah["hf"])
            gg = np.tanh(ax["xg"][t] + ah["hg"])
            go = _sigmoid(ax["xo"][t] + ah["ho"])
            acts["cp"][t] = c
            c = gf * c + gi * gg
            tc = np.tanh(c)
            h = go * tc
            acts["i"][t] = gi
            acts["f"][t] = gf
            acts["g"][t] = gg
            acts["o"][t] = go
            acts["tc"][t] = tc
            ys[:, t] = h
        self._tape = {
            "backend": be, "spectra": spectra, "shape": (batch, steps),
            "x_blocks": x_blocks[be.name], "xf": xf_rec[be.name],
            "h_blocks": h_blocks, "hf": hf_stack, "acts": acts,
        }
        return ys, (h, c)

    def backward(self, grad_output: np.ndarray) -> np.ndarray | None:
        tape = self._tape
        if tape is None:
            raise RuntimeError("backward called before forward")
        batch, steps = tape["shape"]
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (batch, steps, self.hidden_size):
            raise ShapeError(
                f"grad must be ({batch}, {steps}, {self.hidden_size}), "
                f"got {grad_output.shape}"
            )
        be = tape["backend"]
        spectra = tape["spectra"]
        acts = tape["acts"]
        k = self.block_size
        p = self.xi.p
        bins = k // 2 + 1
        da = {
            key: np.empty((steps, batch, self.hidden_size))
            for key in self._X_KEYS
        }
        gf_stack = {
            key: np.empty((steps * batch, p, bins), dtype=np.complex128)
            for key in self._X_KEYS
        }
        conj_h = {
            name: np.conj(spectra[name]).transpose(2, 0, 1)
            for name in self.H_GATES
        }
        dh = np.zeros((batch, self.hidden_size))
        dc = np.zeros((batch, self.hidden_size))
        for t in range(steps - 1, -1, -1):
            dh = dh + grad_output[:, t]
            gi, gf = acts["i"][t], acts["f"][t]
            gg, go = acts["g"][t], acts["o"][t]
            tc, cp = acts["tc"][t], acts["cp"][t]
            do = dh * tc
            dc = dc + dh * go * (1.0 - tc * tc)
            da["i"][t] = dc * gg * gi * (1.0 - gi)
            da["f"][t] = dc * cp * gf * (1.0 - gf)
            da["g"][t] = dc * gi * (1.0 - gg * gg)
            da["o"][t] = do * go * (1.0 - go)
            # One rfft per gate over this step's pre-activation gradient,
            # recorded t-major for the deferred weight contraction; the
            # four hidden-gate input-gradient products sum in the
            # frequency domain so ∂L/∂h_{t-1} costs a single irfft.
            acc = None
            for key, name in zip(self._H_KEYS, self.H_GATES):
                spec = be.rfft(partition_vector(da[key][t], k, p))
                gf_stack[key][t * batch:(t + 1) * batch] = spec
                term = np.matmul(spec.transpose(2, 0, 1), conj_h[name])
                acc = term if acc is None else acc + term
            dh = unpartition_vector(
                be.irfft(acc.transpose(1, 2, 0), n=k), self.hidden_size
            )
            dc = dc * gf
        self._apply_deferred_grads(tape, da, gf_stack)
        self._tape = None
        if not self.needs_input_grad:
            return None
        return self._input_gradient(tape, gf_stack)


class BlockCirculantGRU(_BlockCirculantRecurrent):
    """GRU whose 6 gate matrices are block-circulant.

    Cell update per timestep (state ``h``)::

        r = σ(W_xr x + b_r + W_hr h)      z = σ(W_xz x + b_z + W_hz h)
        n = tanh(W_xn x + b_n + r ∘ (W_hn h))
        h' = (1 - z) ∘ n + z ∘ h

    Same sequence contract as :class:`BlockCirculantLSTM`; the candidate
    gate couples the reset gate *inside* tanh (the standard "v3"
    formulation), so its hidden projection and input projection carry
    different pre-activation gradients — the tape keeps both stacks.
    """

    X_GATES = ("xr", "xz", "xn")
    H_GATES = ("hr", "hz", "hn")
    _X_KEYS = ("r", "z", "nx")
    _H_KEYS = ("r", "z", "nh")

    def init_state(self, batch_size: int):
        return np.zeros((batch_size, self.hidden_size))

    def _check_state(self, state, batch: int):
        h = np.asarray(state, dtype=np.float64)
        if h.shape != (batch, self.hidden_size):
            raise ShapeError(
                f"GRU state must be ({batch}, {self.hidden_size}), "
                f"got {h.shape}"
            )
        return h

    def inference_forward_with_state(self, x: np.ndarray, state):
        x = np.asarray(x, dtype=np.float64)
        self._check_sequence(x)
        batch, steps, _ = x.shape
        h = self._check_state(state, batch)
        spectra = self._gate_spectra()
        ax, _, _ = self._batched_x_preacts(x, spectra)
        ys = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            ah, _, _ = self._project_rows(h, self.H_GATES, spectra)
            r = _sigmoid(ax["xr"][t] + ah["hr"])
            z = _sigmoid(ax["xz"][t] + ah["hz"])
            n = np.tanh(ax["xn"][t] + r * ah["hn"])
            h = (1.0 - z) * n + z * h
            ys[:, t] = h
        return ys, h

    def forward_with_state(self, x: np.ndarray, state):
        x = np.asarray(x, dtype=np.float64)
        self._check_sequence(x)
        batch, steps, _ = x.shape
        h = self._check_state(state, batch)
        be = self._common_backend()
        spectra = self._gate_spectra()
        k = self.block_size
        q_h = self.hr.q
        ax, x_blocks, xf_rec = self._batched_x_preacts(x, spectra)
        h_blocks = np.empty((steps * batch, q_h, k))
        hf_stack = np.empty(
            (steps * batch, q_h, k // 2 + 1), dtype=np.complex128
        )
        acts = {
            key: np.empty((steps, batch, self.hidden_size))
            for key in ("r", "z", "n", "u", "hp")
        }
        ys = np.empty((batch, steps, self.hidden_size))
        for t in range(steps):
            ah, hb, hf = self._project_rows(h, self.H_GATES, spectra)
            h_blocks[t * batch:(t + 1) * batch] = hb[be.name]
            hf_stack[t * batch:(t + 1) * batch] = hf[be.name]
            r = _sigmoid(ax["xr"][t] + ah["hr"])
            z = _sigmoid(ax["xz"][t] + ah["hz"])
            u = ah["hn"]
            n = np.tanh(ax["xn"][t] + r * u)
            acts["hp"][t] = h
            h = (1.0 - z) * n + z * h
            acts["r"][t] = r
            acts["z"][t] = z
            acts["n"][t] = n
            acts["u"][t] = u
            ys[:, t] = h
        self._tape = {
            "backend": be, "spectra": spectra, "shape": (batch, steps),
            "x_blocks": x_blocks[be.name], "xf": xf_rec[be.name],
            "h_blocks": h_blocks, "hf": hf_stack, "acts": acts,
        }
        return ys, h

    def backward(self, grad_output: np.ndarray) -> np.ndarray | None:
        tape = self._tape
        if tape is None:
            raise RuntimeError("backward called before forward")
        batch, steps = tape["shape"]
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (batch, steps, self.hidden_size):
            raise ShapeError(
                f"grad must be ({batch}, {steps}, {self.hidden_size}), "
                f"got {grad_output.shape}"
            )
        be = tape["backend"]
        spectra = tape["spectra"]
        acts = tape["acts"]
        k = self.block_size
        p = self.xr.p
        bins = k // 2 + 1
        keys = ("r", "z", "nx", "nh")
        da = {
            key: np.empty((steps, batch, self.hidden_size)) for key in keys
        }
        gf_stack = {
            key: np.empty((steps * batch, p, bins), dtype=np.complex128)
            for key in keys
        }
        conj_h = {
            name: np.conj(spectra[name]).transpose(2, 0, 1)
            for name in self.H_GATES
        }
        dh = np.zeros((batch, self.hidden_size))
        for t in range(steps - 1, -1, -1):
            dh = dh + grad_output[:, t]
            r, z = acts["r"][t], acts["z"][t]
            n, u, hp = acts["n"][t], acts["u"][t], acts["hp"][t]
            dz = dh * (hp - n)
            dan = dh * (1.0 - z) * (1.0 - n * n)
            da["r"][t] = dan * u * r * (1.0 - r)
            da["z"][t] = dz * z * (1.0 - z)
            da["nx"][t] = dan
            da["nh"][t] = dan * r
            dh_direct = dh * z
            acc = None
            for key in keys:
                spec = be.rfft(partition_vector(da[key][t], k, p))
                gf_stack[key][t * batch:(t + 1) * batch] = spec
                if key == "nx":
                    continue  # drives only the xn weight/input gradients
                name = dict(zip(self._H_KEYS, self.H_GATES))[key]
                term = np.matmul(spec.transpose(2, 0, 1), conj_h[name])
                acc = term if acc is None else acc + term
            dh = dh_direct + unpartition_vector(
                be.irfft(acc.transpose(1, 2, 0), n=k), self.hidden_size
            )
        self._apply_deferred_grads(tape, da, gf_stack)
        self._tape = None
        if not self.needs_input_grad:
            return None
        return self._input_gradient(tape, gf_stack)
