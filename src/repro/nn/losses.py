"""Loss functions with explicit gradients."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class SoftmaxCrossEntropyLoss:
    """Softmax + cross-entropy against integer class labels.

    ``forward(logits, labels)`` returns the mean loss;
    ``backward()`` returns ``∂loss/∂logits`` (the familiar
    ``(softmax - onehot) / batch``).
    """

    def __init__(self):
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be (batch, classes), got {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ShapeError(
                f"labels must be (batch,) = ({logits.shape[0]},), got {labels.shape}"
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        self._probs = exp / exp.sum(axis=1, keepdims=True)
        self._labels = labels
        picked = self._probs[np.arange(labels.size), labels]
        return float(-np.mean(np.log(picked + 1e-300)))

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(self._labels.size), self._labels] -= 1.0
        return grad / self._labels.size

    def predictions(self) -> np.ndarray:
        """Arg-max class of the last forward pass."""
        if self._probs is None:
            raise RuntimeError("predictions requested before forward")
        return np.argmax(self._probs, axis=1)


class MSELoss:
    """Mean squared error over all elements (regression / approximation)."""

    def __init__(self):
        self._diff: np.ndarray | None = None

    def forward(self, outputs: np.ndarray, targets: np.ndarray) -> float:
        outputs = np.asarray(outputs, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"shape mismatch: outputs {outputs.shape} vs targets {targets.shape}"
            )
        self._diff = outputs - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size
