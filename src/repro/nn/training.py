"""Mini-batch training loop.

The paper's accuracy study (Fig 7b) trains a dense and a block-circulant
version of each network with identical hyper-parameters and compares test
accuracy; :class:`Trainer` is the shared loop that makes those runs
comparable (same batching, same shuffling RNG, same schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer
from repro.utils.rng import make_rng


@dataclass
class TrainingHistory:
    """Per-epoch training curve."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy after the last epoch (nan if never measured)."""
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng=None, shuffle: bool = True):
    """Return an iterator of ``(x_batch, y_batch)`` slices covering the
    whole dataset. Invalid arguments raise *eagerly*, at the call, not on
    first iteration."""
    _ensure_batch_size(batch_size)
    if len(x) != len(y):
        raise ShapeError(f"x has {len(x)} rows but y has {len(y)}")
    return _iterate_minibatches(x, y, batch_size, rng, shuffle)


def _iterate_minibatches(x, y, batch_size, rng, shuffle):
    order = np.arange(len(x))
    if shuffle:
        make_rng(rng).shuffle(order)
    for start in range(0, len(x), batch_size):
        chosen = order[start : start + batch_size]
        yield x[chosen], y[chosen]


def _ensure_batch_size(batch_size: int) -> None:
    # range(0, n, batch_size) raises a bare ValueError for 0 and silently
    # yields nothing for negatives — an epoch that "succeeds" on zero
    # batches — so reject both up front.
    if batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}"
        )


class Trainer:
    """Drives epochs of forward/backward/step over a classification task."""

    def __init__(self, network: Sequential, optimizer: Optimizer,
                 loss: SoftmaxCrossEntropyLoss | None = None, seed=None):
        self.network = network
        self.optimizer = optimizer
        self.loss = loss if loss is not None else SoftmaxCrossEntropyLoss()
        self.rng = make_rng(seed)

    def train_epoch(self, x: np.ndarray, y: np.ndarray,
                    batch_size: int = 32) -> tuple[float, float]:
        """One pass over the data; returns (mean loss, accuracy).

        An empty dataset has no defined mean loss (``total / 0``), so it
        raises :class:`~repro.errors.ConfigurationError` — the same
        empty-batch policy as ``repro.quant.network_accuracy``. The
        network's prior train/eval mode is restored even if a forward
        raises mid-epoch.
        """
        if len(x) == 0:
            raise ConfigurationError(
                "train_epoch received an empty dataset; mean loss over "
                "zero samples is undefined"
            )
        was_training = self.network.training
        self.network.train()
        total_loss = 0.0
        correct = 0
        try:
            for bx, by in iterate_minibatches(x, y, batch_size, self.rng):
                logits = self.network(bx)
                batch_loss = self.loss.forward(logits, by)
                self.optimizer.zero_grad()
                self.network.backward(self.loss.backward())
                self.optimizer.step()
                total_loss += batch_loss * len(bx)
                correct += int(np.sum(self.loss.predictions() == by))
        finally:
            self.network.train(was_training)
        return total_loss / len(x), correct / len(x)

    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> float:
        """Classification accuracy in eval mode (dropout disabled).

        Empty evaluation sets raise
        :class:`~repro.errors.ConfigurationError` (accuracy over zero
        samples is undefined), and the network's prior train/eval mode is
        restored even if a forward raises mid-pass.
        """
        _ensure_batch_size(batch_size)
        if len(x) == 0:
            raise ConfigurationError(
                "evaluate received an empty dataset; accuracy over zero "
                "samples is undefined"
            )
        was_training = self.network.training
        self.network.eval()
        correct = 0
        try:
            for start in range(0, len(x), batch_size):
                logits = self.network(x[start : start + batch_size])
                predictions = np.argmax(logits, axis=1)
                correct += int(
                    np.sum(predictions == y[start : start + batch_size])
                )
        finally:
            self.network.train(was_training)
        return correct / len(x)

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int,
            batch_size: int = 32, x_val: np.ndarray | None = None,
            y_val: np.ndarray | None = None, schedule=None,
            early_stopping=None, verbose: bool = False) -> TrainingHistory:
        """Train for up to ``epochs`` passes; returns the history.

        ``schedule`` is an optional :class:`repro.nn.schedules.StepDecay`
        (or anything with ``apply(optimizer, epoch)``); ``early_stopping``
        an optional :class:`repro.nn.schedules.EarlyStopping`, which
        requires validation data and ends training when triggered.
        """
        history = TrainingHistory()
        for epoch in range(epochs):
            loss, accuracy = self.train_epoch(x, y, batch_size)
            history.train_loss.append(loss)
            history.train_accuracy.append(accuracy)
            if x_val is not None and y_val is not None:
                history.val_accuracy.append(self.evaluate(x_val, y_val))
            if verbose:
                val = (
                    f" val_acc={history.val_accuracy[-1]:.3f}"
                    if history.val_accuracy
                    else ""
                )
                print(
                    f"epoch {epoch + 1}/{epochs}: loss={loss:.4f} "
                    f"acc={accuracy:.3f}{val}"
                )
            if schedule is not None:
                schedule.apply(self.optimizer, epoch + 1)
            if early_stopping is not None and history.val_accuracy:
                if early_stopping.update(history.val_accuracy[-1]):
                    break
        return history
