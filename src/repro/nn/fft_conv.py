"""FFT-based spatial convolution — the LeCun et al. baseline (paper §2.3).

The paper contrasts CirCNN with Mathieu/Henaff/LeCun's FFT convolution
[52]: transform each feature map and each filter with a 2-D FFT, multiply
spectra, and inverse-transform. That method accelerates *large* filters by
filter reuse but "cannot achieve either asymptotic speedup in big-O
notation or weight compressions (in fact additional storage space is
needed)" — the weights stay unstructured and the padded spectra are larger
than the filters.

:class:`FFTConv2D` implements the baseline faithfully (linear convolution
via zero-padded circular convolution, numerically identical to
:class:`repro.nn.Conv2D`), and
:func:`fft_conv_extra_storage_factor` quantifies the §2.3 storage-increase
remark. The complexity comparison against block-circulant CONV lives in
:func:`repro.analysis.complexity.fft_conv_ops`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module
from repro.utils.validation import next_power_of_two


def _fft_sizes(height: int, width: int, field: int) -> tuple[int, int]:
    """Padded 2-D FFT sizes for linear convolution of image and filter."""
    return (
        next_power_of_two(height + field - 1),
        next_power_of_two(width + field - 1),
    )


def fft_conv_extra_storage_factor(height: int, width: int,
                                  field: int) -> float:
    """Spectrum words per filter relative to the filter's own weights.

    The §2.3 criticism quantified: storing ``FFT2(filter)`` at the padded
    image size takes ``fh * (fw/2 + 1) * 2`` reals against ``r^2``
    weights — a large *increase* for the small filters of modern CNNs.
    """
    fft_h, fft_w = _fft_sizes(height, width, field)
    spectrum_words = fft_h * (fft_w // 2 + 1) * 2
    return spectrum_words / float(field * field)


class FFTConv2D(Module):
    """Unstructured convolution evaluated through 2-D FFTs (LeCun [52]).

    Valid-mode convolution with optional zero padding, numerically equal
    to :class:`repro.nn.Conv2D` (stride 1 only — the FFT method has no
    cheap strided form, one of its practical limitations).
    """

    def __init__(self, in_channels: int, out_channels: int, field: int,
                 padding: int = 0, bias: bool = True, seed=None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.field = field
        self.padding = padding
        fan_in = in_channels * field * field
        self.weight = self.add_parameter(
            "weight",
            he_normal((out_channels, in_channels, field, field), fan_in, seed),
        )
        self.bias = (
            self.add_parameter("bias", zeros((out_channels,))) if bias else None
        )
        self._input_padded: np.ndarray | None = None
        self._fft_hw: tuple[int, int] | None = None
        self._out_hw: tuple[int, int] | None = None

    # -- helpers --------------------------------------------------------------
    def _pad_input(self, x: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return x
        pad = self.padding
        return np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    @staticmethod
    def _corr_spectrum(weight: np.ndarray, fft_hw: tuple[int, int]) -> np.ndarray:
        """2-D spectrum of the *flipped* filters (correlation, not conv)."""
        flipped = weight[:, :, ::-1, ::-1]
        return np.fft.rfft2(flipped, s=fft_hw)

    # -- compute --------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"FFTConv2D expects (batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        padded = self._pad_input(x)
        batch, _, height, width = padded.shape
        if height < self.field or width < self.field:
            raise ShapeError(
                f"padded input {height}x{width} smaller than the "
                f"{self.field}x{self.field} filter"
            )
        fft_hw = _fft_sizes(height, width, self.field)
        out_h = height - self.field + 1
        out_w = width - self.field + 1
        self._input_padded = padded
        self._fft_hw = fft_hw
        self._out_hw = (out_h, out_w)
        xf = np.fft.rfft2(padded, s=fft_hw)                 # (B, C, FH, FWb)
        wf = self._corr_spectrum(self.weight.value, fft_hw)  # (P, C, FH, FWb)
        yf = np.einsum("bcij,pcij->bpij", xf, wf)
        full = np.fft.irfft2(yf, s=fft_hw)
        # Correlation output of interest starts at the filter offset.
        start = self.field - 1
        out = full[:, :, start : start + out_h, start : start + out_w]
        if self.bias is not None:
            out = out + self.bias.value[np.newaxis, :, np.newaxis, np.newaxis]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_padded is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, _, height, width = self._input_padded.shape
        out_h, out_w = self._out_hw
        expected = (batch, self.out_channels, out_h, out_w)
        if grad_output.shape != expected:
            raise ShapeError(
                f"grad must have shape {expected}, got {grad_output.shape}"
            )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        fft_hw = self._fft_hw
        # Position the output gradient where the outputs came from.
        grad_full = np.zeros((batch, self.out_channels) + fft_hw)
        start = self.field - 1
        grad_full[:, :, start : start + out_h, start : start + out_w] = (
            grad_output
        )
        gf = np.fft.rfft2(grad_full, s=fft_hw)
        xf = np.fft.rfft2(self._input_padded, s=fft_hw)
        # dL/dW: correlation of input with output gradient.
        wf_grad = np.einsum("bpij,bcij->pcij", gf, np.conj(xf))
        grad_w_full = np.fft.irfft2(wf_grad, s=fft_hw)
        grad_w = grad_w_full[:, :, : self.field, : self.field][:, :, ::-1, ::-1]
        self.weight.grad += grad_w
        # dL/dx: convolution of output gradient with the filters.
        wf = self._corr_spectrum(self.weight.value, fft_hw)
        xf_grad = np.einsum("bpij,pcij->bcij", gf, np.conj(wf))
        grad_padded = np.fft.irfft2(xf_grad, s=fft_hw)[
            :, :, :height, :width
        ]
        if self.padding > 0:
            pad = self.padding
            return grad_padded[:, :, pad:-pad, pad:-pad]
        return grad_padded

    def __repr__(self) -> str:
        return (
            f"FFTConv2D({self.in_channels} -> {self.out_channels}, "
            f"r={self.field}, pad={self.padding})"
        )
