"""Unstructured 2-D convolution layer (paper Eq. 2 / Eq. 6 baseline).

Implemented as im2col + matrix multiply, exactly the Caffe-style
reformulation the paper describes in §3.2 (Fig 6), so the block-circulant
variant differs only in how the ``(C·r², P)`` filter matrix is represented.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module


class Conv2D(Module):
    """NCHW convolution with square kernels.

    Parameters
    ----------
    in_channels, out_channels:
        ``C`` and ``P`` in the paper's Eq. (6).
    field:
        Kernel size ``r``.
    stride, padding:
        Usual hyper-parameters (zero padding).
    """

    def __init__(self, in_channels: int, out_channels: int, field: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 seed=None, init: str = "he"):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.field = field
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, field, field)
        if init == "he":
            fan_in = in_channels * field * field
            weight = he_normal(shape, fan_in, seed)
        elif init == "zeros":
            # Placeholder for values assigned right after construction
            # (deserialisation, the artifact store): skips the random draw.
            weight = zeros(shape)
        else:
            raise ConfigurationError(
                f"init must be 'he' or 'zeros', got {init!r}"
            )
        self.weight = self.add_parameter("weight", weight)
        self.bias = (
            self.add_parameter("bias", zeros((out_channels,))) if bias else None
        )
        self._cols: np.ndarray | None = None
        self._input_shape: tuple[int, int, int, int] | None = None

    @property
    def input_sample_shape(self) -> tuple[int | None, ...]:
        """Per-sample input shape (spatial dims free), for batch assembly."""
        return (self.in_channels, None, None)

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for a given input size."""
        return (
            conv_output_size(height, self.field, self.stride, self.padding),
            conv_output_size(width, self.field, self.stride, self.padding),
        )

    def _run_forward(self, x: np.ndarray, record: bool) -> np.ndarray:
        """Shared forward pipeline; ``record`` caches state for backward."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2D expects (batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        batch = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        cols = im2col(x, self.field, self.stride, self.padding)
        # (B, N, C, r, r) -> (B, N, C*r*r)
        cols = cols.reshape(batch, out_h * out_w, -1)
        if record:
            self._input_shape = x.shape
            self._cols = cols
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.bias is not None:
            out = out + self.bias.value
        return out.transpose(0, 2, 1).reshape(
            batch, self.out_channels, out_h, out_w
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_forward(x, record=True)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: identical pipeline, no state writes."""
        return self._run_forward(x, record=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, _, out_h, out_w = grad_output.shape
        # (B, P, OH, OW) -> (B, N, P)
        grad_flat = grad_output.reshape(
            batch, self.out_channels, out_h * out_w
        ).transpose(0, 2, 1)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=(0, 1))
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        grad_w = np.einsum("bnp,bnc->pc", grad_flat, self._cols)
        self.weight.grad += grad_w.reshape(self.weight.value.shape)
        grad_cols = grad_flat @ w_mat
        grad_cols = grad_cols.reshape(
            batch, out_h * out_w, self.in_channels, self.field, self.field
        )
        return col2im(
            grad_cols, self._input_shape, self.field, self.stride, self.padding
        )

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels} -> {self.out_channels}, "
            f"r={self.field}, stride={self.stride}, pad={self.padding})"
        )
