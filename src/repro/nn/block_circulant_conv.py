"""Block-circulant 2-D convolution — paper §3.2 (Eq. 6–7).

The paper generalises block-circulant structure to the rank-4 CONV weight
tensor ``F ∈ R^{r×r×C×P}``: after the im2col reformulation ``Y = X F``
(Fig 6), the reshaping identity of Eq. (7) makes the ``(C·r²) × P`` filter
matrix block-circulant *along the channel dimensions*. Equivalently: at
each of the ``r²`` spatial offsets, the ``P × C`` cross-channel weight
matrix is block-circulant with ``k × k`` circulant blocks.

This layer stores exactly those defining vectors — shape
``(r², ceil(P/k), ceil(C/k), k)`` — and evaluates the product per spatial
offset in the FFT domain, i.e. the same
"FFT → element-wise multiply → IFFT" pipeline the FC layer uses, which is
what lets the CirCNN architecture run both layer types on one computing
block.
"""

from __future__ import annotations

import numpy as np

from repro.circulant.ops import (
    SpectralTape,
    block_circulant_conv_backward,
    block_circulant_conv_forward,
    block_dims,
)
from repro.circulant.spectral_cache import SpectralWeightCache
from repro.errors import ConfigurationError, ShapeError
from repro.fftcore.backend import get_backend
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.initializers import zeros
from repro.nn.module import Module
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_positive


class BlockCirculantConv2D(Module):
    """NCHW convolution with cross-channel block-circulant filters.

    Drop-in replacement for :class:`repro.nn.Conv2D` with an extra
    ``block_size`` knob: ``block_size = 1`` stores the full ``r²·C·P``
    parameters (no compression), larger blocks divide the cross-channel
    parameter count by ``k``.
    """

    def __init__(self, in_channels: int, out_channels: int, field: int,
                 block_size: int, stride: int = 1, padding: int = 0,
                 bias: bool = True, seed=None, backend=None,
                 init: str = "he"):
        super().__init__()
        ensure_positive(block_size, "block_size")
        # Fail at construction, not first forward: raises BackendError with
        # the known-backend list for typos like backend="fftw".
        get_backend(backend)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.field = field
        self.stride = stride
        self.padding = padding
        self.block_size = block_size
        self.backend = backend
        self.pp, self.qc = block_dims(out_channels, in_channels, block_size)
        shape = (field * field, self.pp, self.qc, block_size)
        if init == "he":
            rng = make_rng(seed)
            fan_in = in_channels * field * field
            scale = np.sqrt(2.0 / fan_in)
            weight = rng.normal(0.0, scale, size=shape)
        elif init == "zeros":
            # Placeholder for values assigned right after construction
            # (deserialisation, the artifact store): skips the random
            # draw, which dominates rebuild time for serving-sized layers.
            weight = zeros(shape)
        else:
            raise ConfigurationError(
                f"init must be 'he' or 'zeros', got {init!r}"
            )
        self.weight = self.add_parameter("weight", weight)
        self.bias = (
            self.add_parameter("bias", zeros((out_channels,))) if bias else None
        )
        self._tape: SpectralTape | None = None
        self._geometry: tuple[int, int, int] | None = None
        self._input_shape: tuple[int, int, int, int] | None = None
        self.spectral_cache: SpectralWeightCache | None = None
        #: Set False on the *first* trainable layer of a network to skip
        #: the patch-gradient product and col2im in backward — the
        #: largest GEMM and inverse FFT of the conv backward pass, whose
        #: result nobody consumes there; ``backward`` then returns None.
        self.needs_input_grad: bool = True

    # -- metadata -----------------------------------------------------------
    @property
    def input_sample_shape(self) -> tuple[int | None, ...]:
        """Per-sample input shape (spatial dims free), for batch assembly."""
        return (self.in_channels, None, None)

    @property
    def dense_parameters(self) -> int:
        """Filter parameters of the equivalent unstructured CONV layer."""
        return self.out_channels * self.in_channels * self.field**2

    @property
    def compression_ratio(self) -> float:
        """Filter-parameter reduction vs. unstructured convolution (≈ k)."""
        return self.dense_parameters / self.weight.size

    def to_dense_filters(self) -> np.ndarray:
        """Expand to an unstructured ``(P, C, r, r)`` filter bank.

        For tests: the expansion must make this layer agree with
        :class:`~repro.nn.Conv2D` exactly.
        """
        k = self.block_size
        i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        # (r2, pp, qc, k, k) circulant blocks, then lay out channel grids.
        blocks = self.weight.value[:, :, :, (i - j) % k]
        dense = blocks.transpose(0, 1, 3, 2, 4).reshape(
            self.field**2, self.pp * k, self.qc * k
        )
        dense = dense[:, : self.out_channels, : self.in_channels]
        filters = dense.reshape(
            self.field, self.field, self.out_channels, self.in_channels
        )
        return filters.transpose(2, 3, 0, 1)

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for a given input size."""
        return (
            conv_output_size(height, self.field, self.stride, self.padding),
            conv_output_size(width, self.field, self.stride, self.padding),
        )

    # -- compute --------------------------------------------------------------
    def compile_inference(self, cache: SpectralWeightCache | None = None):
        """Freeze for serving: eval mode + warmed ``(r², p, q)`` spectrum.

        Same contract as :meth:`BlockCirculantDense.compile_inference` —
        the cache invalidates itself on weight updates, so compiling never
        risks stale outputs, and the parameter arrays are frozen so element
        writes that would bypass the version counter raise immediately.
        Returns self.
        """
        self.eval()
        self.spectral_cache = cache if cache is not None else SpectralWeightCache()
        self.spectral_cache.spectrum(self.weight, self.backend)
        self.weight.freeze()
        if self.bias is not None:
            self.bias.freeze()
        return self

    def attach_spectral_cache(
        self, cache: SpectralWeightCache | None = None
    ) -> "BlockCirculantConv2D":
        """Attach a weight-spectrum cache without freezing or eval mode.

        Training-mode counterpart of :meth:`compile_inference` — same
        contract as :meth:`BlockCirculantDense.attach_spectral_cache`:
        the ``(r², p, q)`` spectrum is version-checked per lookup, so
        unchanged weights skip the ``r²·p·q`` weight FFTs while optimiser
        steps invalidate as usual. As there, training mode does not
        freeze the array, so in-place element writes must be followed by
        ``mark_updated()`` (pure ``.value`` assignments need nothing).
        Returns self.
        """
        self.spectral_cache = cache if cache is not None else SpectralWeightCache()
        return self

    def _weight_spectrum(self, be=None) -> np.ndarray | None:
        """Cached ``rfft(weight)`` when a spectral cache is attached.

        In training mode the lookup is version-checked per step; the
        serving-path freeze is only maintained in eval mode.
        """
        if self.spectral_cache is None:
            return None
        spectrum = self.spectral_cache.spectrum(
            self.weight, be if be is not None else self.backend
        )
        if not self.training and not self.weight.frozen:
            # A legitimate update thawed the array; the cache just
            # refreshed from it, so re-freeze to keep the
            # element-writes-raise guarantee for as long as we serve.
            self.weight.freeze()
        return spectrum

    def _partition_patches(self, patches: np.ndarray) -> np.ndarray:
        """(BN, r², C) -> zero-padded channel blocks (BN, r², qc, k)."""
        flat, r2, channels = patches.shape
        k = self.block_size
        if channels < self.qc * k:
            padded = np.zeros((flat, r2, self.qc * k), dtype=np.float64)
            padded[:, :, :channels] = patches
            patches = padded
        return patches.reshape(flat, r2, self.qc, k)

    def _run_forward(self, x: np.ndarray, record: bool) -> np.ndarray:
        """Shared forward pipeline; ``record`` caches state for backward."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"BlockCirculantConv2D expects (batch, {self.in_channels}, "
                f"H, W), got {x.shape}"
            )
        be = get_backend(self.backend)
        batch = x.shape[0]
        out_h, out_w = self.output_shape(x.shape[2], x.shape[3])
        positions = out_h * out_w
        cols = im2col(x, self.field, self.stride, self.padding)
        # (B, N, C, r, r) -> (B*N, r², C): group by spatial offset, then
        # partition the channel axis into circulant blocks.
        patches = cols.transpose(0, 1, 3, 4, 2).reshape(
            batch * positions, self.field**2, self.in_channels
        )
        patch_blocks = self._partition_patches(patches)
        k = self.block_size
        # Same contraction kernel as BlockCirculantDense: one complex BLAS
        # GEMM per frequency bin, weight FFT skipped when a cached
        # spectrum is being served. A recording forward keeps the
        # SpectralTape so backward reuses the weight and patch spectra.
        if record:
            self._input_shape = x.shape
            self._geometry = (batch, out_h, out_w)
            y_blocks, self._tape = block_circulant_conv_forward(
                self.weight.value, patch_blocks, be,
                cached_spectrum=self._weight_spectrum(be), record=True,
            )
        else:
            y_blocks = block_circulant_conv_forward(
                self.weight.value, patch_blocks, be,
                cached_spectrum=self._weight_spectrum(be),
            )
        out = y_blocks.reshape(batch * positions, self.pp * k)
        out = out[:, : self.out_channels]
        if self.bias is not None:
            out = out + self.bias.value
        return (
            out.reshape(batch, positions, self.out_channels)
            .transpose(0, 2, 1)
            .reshape(batch, self.out_channels, out_h, out_w)
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_forward(x, record=True)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: identical pipeline, no state writes."""
        return self._run_forward(x, record=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray | None:
        if self._tape is None or self._geometry is None:
            raise RuntimeError("backward called before forward")
        be = get_backend(self.backend)
        batch, out_h, out_w = self._geometry
        positions = out_h * out_w
        grad_output = np.asarray(grad_output, dtype=np.float64)
        expected = (batch, self.out_channels, out_h, out_w)
        if grad_output.shape != expected:
            raise ShapeError(
                f"grad must have shape {expected}, got {grad_output.shape}"
            )
        k = self.block_size
        grad_flat = grad_output.reshape(
            batch, self.out_channels, positions
        ).transpose(0, 2, 1).reshape(batch * positions, self.out_channels)
        if self.bias is not None:
            self.bias.grad += grad_flat.sum(axis=0)
        if self.out_channels < self.pp * k:
            padded = np.zeros(
                (batch * positions, self.pp * k), dtype=np.float64
            )
            padded[:, : self.out_channels] = grad_flat
            grad_flat = padded
        grad_blocks = grad_flat.reshape(batch * positions, self.pp, k)
        # Replay the tape: the weight and patch spectra were recorded by
        # forward, so rfft(grad) is the step's only new FFT, and both
        # gradient contractions run as the same frequency-major
        # per-frequency GEMMs as the forward spectral_contract.
        grad_w, grad_pblocks = block_circulant_conv_backward(
            self.weight.value, self._tape.blocks, grad_blocks, be,
            cached_spectrum=self._tape.weight_spectrum,
            cached_patch_spectrum=self._tape.input_spectrum,
            compute_patch_grad=self.needs_input_grad,
        )
        # The tape (patch blocks + batch-sized complex spectrum) is
        # consumed; release it rather than pinning tens of MB across the
        # optimiser step and beyond.
        self._tape = None
        self.weight.grad += grad_w
        if grad_pblocks is None:
            return None
        grad_patches = grad_pblocks.reshape(
            batch * positions, self.field**2, self.qc * k
        )[:, :, : self.in_channels]
        grad_cols = grad_patches.reshape(
            batch, positions, self.field, self.field, self.in_channels
        ).transpose(0, 1, 4, 2, 3)
        return col2im(
            grad_cols, self._input_shape, self.field, self.stride, self.padding
        )

    def __repr__(self) -> str:
        return (
            f"BlockCirculantConv2D({self.in_channels} -> {self.out_channels}, "
            f"r={self.field}, k={self.block_size})"
        )
