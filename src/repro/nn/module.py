"""Module and Parameter — the base of the explicit-backward NN framework."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    The tensor is *versioned*: every assignment to ``value`` bumps a
    monotonically increasing ``version`` counter. Derived-quantity caches
    — e.g. the FFT-domain
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` — compare
    this counter to decide whether their cached view is still valid.
    Updates should be spelled as *pure* assignments
    (``param.value = param.value - lr * grad``): an augmented assignment
    (``param.value -= ...``) also bumps the counter, but evaluates
    ndarray ``__isub__`` on the current array first, which raises
    ``ValueError`` once :meth:`freeze` has made it read-only.

    Element-wise writes that never reassign the attribute
    (``param.value[0] = x``, ``param.value.fill(0)``) bypass the counter;
    code that mutates the array in place must call :meth:`mark_updated`.
    Serving code closes that hole the hard way: :meth:`freeze` marks the
    array read-only so a stray element write raises immediately instead
    of silently serving a stale derived cache. Assigning ``value`` (or
    calling :meth:`mark_updated`) restores writeability.
    """

    def __init__(self, value: np.ndarray):
        self._version = 0
        self.value = np.asarray(value, dtype=np.float64)
        # np.zeros, not np.zeros_like: the calloc-backed allocation defers
        # page zeroing until the first backward touches the buffer, which
        # keeps construction O(1) in parameter bytes — the artifact store's
        # cold-start path builds serving-sized layers it will never train.
        self.grad = np.zeros(self._value.shape, dtype=np.float64)

    @property
    def value(self) -> np.ndarray:
        return self._value

    @value.setter
    def value(self, new_value: np.ndarray) -> None:
        arr = np.asarray(new_value, dtype=np.float64)
        if not arr.flags.writeable:
            # A fresh assignment always yields a writable tensor: adopting
            # a read-only source (e.g. the previously frozen array) would
            # leave the parameter permanently un-trainable.
            arr = arr.copy()
        self._value = arr
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every assignment to ``value``."""
        return self._version

    @property
    def frozen(self) -> bool:
        """True when the underlying array is read-only (see :meth:`freeze`)."""
        return not self._value.flags.writeable

    def adopt_frozen(self, value: np.ndarray) -> None:
        """Adopt ``value`` read-only, without copying, and bump the version.

        The serving-load counterpart of the ``value`` setter: the setter
        deliberately *copies* read-only sources so a trained parameter
        never becomes permanently unwritable, but a network loaded from
        the model-artifact store (:mod:`repro.store`) wants the opposite —
        its arrays may be memory-mapped straight from disk, must never be
        written, and copying them would defeat the instant cold start.
        ``adopt_frozen`` takes a read-only view of ``value`` (dtype must
        already be float64 — mapping rules out a converting copy) and
        leaves the parameter frozen, exactly as after
        ``compile_inference()``; assigning ``value`` later thaws it into
        a writable copy as usual.
        """
        arr = np.asarray(value)
        if arr.dtype != np.float64:
            raise TypeError(
                f"adopt_frozen requires a float64 array, got {arr.dtype} "
                "(a converting copy would defeat zero-copy adoption; "
                "assign .value instead)"
            )
        arr = arr.view()
        arr.setflags(write=False)
        self._value = arr
        self._version += 1

    def freeze(self) -> None:
        """Mark the array read-only so in-place writes raise immediately.

        ``compile_inference()`` freezes every block-circulant parameter it
        caches a spectrum for: an element write such as ``param.value[0] = x``
        bypasses the version counter, so without the freeze it would serve
        a stale spectrum forever. Assigning ``value`` or calling
        :meth:`mark_updated` thaws the parameter again.
        """
        self._value.setflags(write=False)

    def mark_updated(self) -> None:
        """Bump ``version`` after an in-place element write to ``value``.

        Also restores writeability after :meth:`freeze`, so intentional
        in-place mutation of a compiled network is spelled
        ``mark_updated(); value[...] = x; mark_updated()`` — on a
        *quiesced* network only: a concurrent served forward both reads
        the array mid-mutation and re-freezes it (raising from the
        element write). Live updates must use pure ``value`` assignment
        or a registry hot swap instead.
        """
        if not self._value.flags.writeable:
            try:
                self._value.setflags(write=True)
            except ValueError:
                # A view of read-only memory we do not own: copy instead.
                self._value = self._value.copy()
        self._version += 1

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class for layers: explicit ``forward`` / ``backward`` pair.

    Contract
    --------
    - ``forward(x)`` computes the output and caches whatever ``backward``
      needs on ``self``.
    - ``backward(grad_output)`` *accumulates* gradients into each
      parameter's ``.grad`` and returns the gradient with respect to the
      layer input. It must be called after the matching ``forward``.
      Layers supporting a ``needs_input_grad=False`` first-layer skip
      (the block-circulant layers) return ``None`` instead of the input
      gradient when that flag is cleared; ``Sequential.backward`` stops
      there rather than passing ``None`` upstream.
    - ``training`` toggles train/eval behaviour (dropout etc.).
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self.training = True

    # -- parameter registry -------------------------------------------------
    def add_parameter(self, name: str, value: np.ndarray) -> Parameter:
        """Register a trainable tensor under ``name`` and return it."""
        param = Parameter(value)
        self._parameters[name] = param
        return param

    # -- child-module traversal ----------------------------------------------
    def named_children(self):
        """Yield ``(name, Module)`` pairs of *direct* child modules.

        The traversal protocol behind every structural surface of the
        library — :meth:`named_parameters`, :meth:`train`,
        ``Sequential.named_layers`` / ``planned_layers`` /
        ``spectral_layers`` all recurse through it. The base class is a
        leaf (no children); containers override it. Child names become
        path segments: a child registered as ``"xi"`` under the layer at
        ``layers.0`` owns parameters named ``layers.0.xi.<param>``.
        """
        return iter(())

    def named_sublayers(self, prefix: str = ""):
        """``(path, Module)`` for every descendant, depth-first.

        Paths join :meth:`named_children` names with ``.`` under
        ``prefix``, so they are prefixes of :meth:`named_parameters`
        names — the invariant the model-artifact store and the execution
        plan rely on to tie layers to their parameters.
        """
        for name, child in self.named_children():
            path = f"{prefix}.{name}" if prefix else name
            yield path, child
            yield from child.named_sublayers(path)

    def named_parameters(self):
        """Yield ``(name, Parameter)`` pairs — own first, then children's,
        child names prefixed per :meth:`named_children`."""
        yield from self._parameters.items()
        for child_name, child in self.named_children():
            for name, param in child.named_parameters():
                yield f"{child_name}.{name}", param

    def parameters(self) -> list[Parameter]:
        """All parameters of this module and its children."""
        params = list(self._parameters.values())
        for _, child in self.named_children():
            params.extend(child.parameters())
        return params

    def num_parameters(self) -> int:
        """Total trainable scalars — the storage quantity Fig 7 compares."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- modes ---------------------------------------------------------------
    def train(self, flag: bool = True) -> "Module":
        """Set training mode (affects e.g. dropout) on self and every
        child; returns self."""
        self.training = flag
        for _, child in self.named_children():
            child.train(flag)
        return self

    def eval(self) -> "Module":
        """Set inference mode; returns self."""
        return self.train(False)

    # -- compute -------------------------------------------------------------
    #: True for elementwise layers (activations, dropout) whose output
    #: shape always equals their input shape. ``Sequential.input_sample_shape``
    #: may scan *through* transparent layers to find the first shape
    #: contract, but must stop at anything else (Flatten, pooling) whose
    #: input shape differs from the downstream layer's.
    shape_transparent: bool = False

    #: True for layers whose forward carries state across timesteps (the
    #: :class:`StatefulModule` protocol). Stateless layers ignore it.
    stateful: bool = False

    #: Which *per-sample* axis of :attr:`input_sample_shape` is a
    #: variable-length time axis (``None`` for non-sequence layers).
    #: Recurrent layers set ``0``: a sample is ``(T, features)`` with
    #: ``T`` free, which is what lets the serving scheduler bucket ragged
    #: sequence requests by padded length.
    time_axis: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Stateless forward for concurrent serving.

        ``forward`` caches intermediates on ``self`` for ``backward``, so
        two threads sharing one layer can corrupt each other's outputs.
        Layers override this with a pure computation (no writes to
        ``self``) that is bit-identical to the eval-mode ``forward``; the
        base implementation falls back to ``forward`` and is therefore
        only safe single-threaded.
        """
        return self.forward(x)

    @property
    def input_sample_shape(self) -> tuple[int | None, ...] | None:
        """Per-sample input shape this layer accepts, for batch assembly.

        ``None`` axes are wildcards (e.g. spatial dims of a CONV layer);
        ``None`` overall means the layer has no fixed input contract.
        """
        return None

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StatefulModule(Module):
    """Protocol for layers whose forward carries state across timesteps.

    The stateless contract above hard-codes "one forward per sample";
    recurrence needs a forward that *threads state* instead. A stateful
    layer consumes a ``(batch, T, features)`` sequence (per-sample time
    axis 0, declared via :attr:`Module.time_axis`) and exposes:

    - :meth:`init_state` — the zero state for a batch;
    - :meth:`forward_with_state` / :meth:`inference_forward_with_state` —
      the full-sequence forwards, returning ``(y, final_state)``. State
      is **passed per call and returned, never stored on ``self``** —
      that is what keeps ``inference_forward`` reentrant under the
      serving runtime's concurrency contract, exactly like the stateless
      layers' no-writes rule;
    - :meth:`step` — one timestep for streaming consumers
      (``Sequential.step`` threads it through mixed stacks). Pure, like
      ``inference_forward``.

    ``forward(x)`` / ``inference_forward(x)`` remain the whole-sequence
    entry points (zero initial state), so a stateful layer still drops
    into ``Sequential`` and the serving runtimes unchanged — the batch
    contract is per-*sequence*, with state an internal loop variable.
    Training-path forwards record a BPTT tape on ``self`` exactly as the
    stateless layers record their spectral tape.
    """

    stateful: bool = True
    time_axis: int | None = 0

    def init_state(self, batch_size: int):
        """The zero recurrent state for ``batch_size`` independent rows."""
        raise NotImplementedError

    def forward_with_state(self, x: np.ndarray, state):
        """Recording full-sequence forward from ``state``; returns
        ``(y, final_state)``."""
        raise NotImplementedError

    def inference_forward_with_state(self, x: np.ndarray, state):
        """Pure full-sequence forward from ``state``; returns
        ``(y, final_state)``. Reentrant: no writes to ``self``."""
        raise NotImplementedError

    def step(self, x_t: np.ndarray, state):
        """One pure timestep: ``(batch, features)`` in, ``(y_t, state)`` out.

        Default implementation runs the layer's sequence path on a
        length-1 sequence — subclasses may override with a direct cell
        update, but must stay bit-compatible with the sequence forward.
        """
        y, state = self.inference_forward_with_state(x_t[:, None, :], state)
        return y[:, 0], state

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, _ = self.forward_with_state(
            x, self.init_state(np.asarray(x).shape[0])
        )
        return y

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        y, _ = self.inference_forward_with_state(
            x, self.init_state(np.asarray(x).shape[0])
        )
        return y
