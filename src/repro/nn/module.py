"""Module and Parameter — the base of the explicit-backward NN framework."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    The tensor is *versioned*: every assignment to ``value`` (including
    augmented assignments such as ``param.value -= lr * grad``, which
    Python rewrites as an assignment) bumps a monotonically increasing
    ``version`` counter. Derived-quantity caches — e.g. the FFT-domain
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` — compare
    this counter to decide whether their cached view is still valid.

    Element-wise writes that never reassign the attribute
    (``param.value[0] = x``, ``param.value.fill(0)``) bypass the counter;
    code that mutates the array in place must call :meth:`mark_updated`.
    """

    def __init__(self, value: np.ndarray):
        self._version = 0
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def value(self) -> np.ndarray:
        return self._value

    @value.setter
    def value(self, new_value: np.ndarray) -> None:
        self._value = np.asarray(new_value, dtype=np.float64)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every assignment to ``value``."""
        return self._version

    def mark_updated(self) -> None:
        """Bump ``version`` after an in-place element write to ``value``."""
        self._version += 1

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class for layers: explicit ``forward`` / ``backward`` pair.

    Contract
    --------
    - ``forward(x)`` computes the output and caches whatever ``backward``
      needs on ``self``.
    - ``backward(grad_output)`` *accumulates* gradients into each
      parameter's ``.grad`` and returns the gradient with respect to the
      layer input. It must be called after the matching ``forward``.
    - ``training`` toggles train/eval behaviour (dropout etc.).
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self.training = True

    # -- parameter registry -------------------------------------------------
    def add_parameter(self, name: str, value: np.ndarray) -> Parameter:
        """Register a trainable tensor under ``name`` and return it."""
        param = Parameter(value)
        self._parameters[name] = param
        return param

    def named_parameters(self):
        """Yield ``(name, Parameter)`` pairs of this module (not children)."""
        yield from self._parameters.items()

    def parameters(self) -> list[Parameter]:
        """All parameters of this module (subclasses with children extend)."""
        return list(self._parameters.values())

    def num_parameters(self) -> int:
        """Total trainable scalars — the storage quantity Fig 7 compares."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- modes ---------------------------------------------------------------
    def train(self, flag: bool = True) -> "Module":
        """Set training mode (affects e.g. dropout); returns self."""
        self.training = flag
        return self

    def eval(self) -> "Module":
        """Set inference mode; returns self."""
        return self.train(False)

    # -- compute -------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
