"""Module and Parameter — the base of the explicit-backward NN framework."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor together with its accumulated gradient.

    The tensor is *versioned*: every assignment to ``value`` bumps a
    monotonically increasing ``version`` counter. Derived-quantity caches
    — e.g. the FFT-domain
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` — compare
    this counter to decide whether their cached view is still valid.
    Updates should be spelled as *pure* assignments
    (``param.value = param.value - lr * grad``): an augmented assignment
    (``param.value -= ...``) also bumps the counter, but evaluates
    ndarray ``__isub__`` on the current array first, which raises
    ``ValueError`` once :meth:`freeze` has made it read-only.

    Element-wise writes that never reassign the attribute
    (``param.value[0] = x``, ``param.value.fill(0)``) bypass the counter;
    code that mutates the array in place must call :meth:`mark_updated`.
    Serving code closes that hole the hard way: :meth:`freeze` marks the
    array read-only so a stray element write raises immediately instead
    of silently serving a stale derived cache. Assigning ``value`` (or
    calling :meth:`mark_updated`) restores writeability.
    """

    def __init__(self, value: np.ndarray):
        self._version = 0
        self.value = np.asarray(value, dtype=np.float64)
        # np.zeros, not np.zeros_like: the calloc-backed allocation defers
        # page zeroing until the first backward touches the buffer, which
        # keeps construction O(1) in parameter bytes — the artifact store's
        # cold-start path builds serving-sized layers it will never train.
        self.grad = np.zeros(self._value.shape, dtype=np.float64)

    @property
    def value(self) -> np.ndarray:
        return self._value

    @value.setter
    def value(self, new_value: np.ndarray) -> None:
        arr = np.asarray(new_value, dtype=np.float64)
        if not arr.flags.writeable:
            # A fresh assignment always yields a writable tensor: adopting
            # a read-only source (e.g. the previously frozen array) would
            # leave the parameter permanently un-trainable.
            arr = arr.copy()
        self._value = arr
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every assignment to ``value``."""
        return self._version

    @property
    def frozen(self) -> bool:
        """True when the underlying array is read-only (see :meth:`freeze`)."""
        return not self._value.flags.writeable

    def adopt_frozen(self, value: np.ndarray) -> None:
        """Adopt ``value`` read-only, without copying, and bump the version.

        The serving-load counterpart of the ``value`` setter: the setter
        deliberately *copies* read-only sources so a trained parameter
        never becomes permanently unwritable, but a network loaded from
        the model-artifact store (:mod:`repro.store`) wants the opposite —
        its arrays may be memory-mapped straight from disk, must never be
        written, and copying them would defeat the instant cold start.
        ``adopt_frozen`` takes a read-only view of ``value`` (dtype must
        already be float64 — mapping rules out a converting copy) and
        leaves the parameter frozen, exactly as after
        ``compile_inference()``; assigning ``value`` later thaws it into
        a writable copy as usual.
        """
        arr = np.asarray(value)
        if arr.dtype != np.float64:
            raise TypeError(
                f"adopt_frozen requires a float64 array, got {arr.dtype} "
                "(a converting copy would defeat zero-copy adoption; "
                "assign .value instead)"
            )
        arr = arr.view()
        arr.setflags(write=False)
        self._value = arr
        self._version += 1

    def freeze(self) -> None:
        """Mark the array read-only so in-place writes raise immediately.

        ``compile_inference()`` freezes every block-circulant parameter it
        caches a spectrum for: an element write such as ``param.value[0] = x``
        bypasses the version counter, so without the freeze it would serve
        a stale spectrum forever. Assigning ``value`` or calling
        :meth:`mark_updated` thaws the parameter again.
        """
        self._value.setflags(write=False)

    def mark_updated(self) -> None:
        """Bump ``version`` after an in-place element write to ``value``.

        Also restores writeability after :meth:`freeze`, so intentional
        in-place mutation of a compiled network is spelled
        ``mark_updated(); value[...] = x; mark_updated()`` — on a
        *quiesced* network only: a concurrent served forward both reads
        the array mid-mutation and re-freezes it (raising from the
        element write). Live updates must use pure ``value`` assignment
        or a registry hot swap instead.
        """
        if not self._value.flags.writeable:
            try:
                self._value.setflags(write=True)
            except ValueError:
                # A view of read-only memory we do not own: copy instead.
                self._value = self._value.copy()
        self._version += 1

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.value.shape})"


class Module:
    """Base class for layers: explicit ``forward`` / ``backward`` pair.

    Contract
    --------
    - ``forward(x)`` computes the output and caches whatever ``backward``
      needs on ``self``.
    - ``backward(grad_output)`` *accumulates* gradients into each
      parameter's ``.grad`` and returns the gradient with respect to the
      layer input. It must be called after the matching ``forward``.
      Layers supporting a ``needs_input_grad=False`` first-layer skip
      (the block-circulant layers) return ``None`` instead of the input
      gradient when that flag is cleared; ``Sequential.backward`` stops
      there rather than passing ``None`` upstream.
    - ``training`` toggles train/eval behaviour (dropout etc.).
    """

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self.training = True

    # -- parameter registry -------------------------------------------------
    def add_parameter(self, name: str, value: np.ndarray) -> Parameter:
        """Register a trainable tensor under ``name`` and return it."""
        param = Parameter(value)
        self._parameters[name] = param
        return param

    def named_parameters(self):
        """Yield ``(name, Parameter)`` pairs of this module (not children)."""
        yield from self._parameters.items()

    def parameters(self) -> list[Parameter]:
        """All parameters of this module (subclasses with children extend)."""
        return list(self._parameters.values())

    def num_parameters(self) -> int:
        """Total trainable scalars — the storage quantity Fig 7 compares."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- modes ---------------------------------------------------------------
    def train(self, flag: bool = True) -> "Module":
        """Set training mode (affects e.g. dropout); returns self."""
        self.training = flag
        return self

    def eval(self) -> "Module":
        """Set inference mode; returns self."""
        return self.train(False)

    # -- compute -------------------------------------------------------------
    #: True for elementwise layers (activations, dropout) whose output
    #: shape always equals their input shape. ``Sequential.input_sample_shape``
    #: may scan *through* transparent layers to find the first shape
    #: contract, but must stop at anything else (Flatten, pooling) whose
    #: input shape differs from the downstream layer's.
    shape_transparent: bool = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Stateless forward for concurrent serving.

        ``forward`` caches intermediates on ``self`` for ``backward``, so
        two threads sharing one layer can corrupt each other's outputs.
        Layers override this with a pure computation (no writes to
        ``self``) that is bit-identical to the eval-mode ``forward``; the
        base implementation falls back to ``forward`` and is therefore
        only safe single-threaded.
        """
        return self.forward(x)

    @property
    def input_sample_shape(self) -> tuple[int | None, ...] | None:
        """Per-sample input shape this layer accepts, for batch assembly.

        ``None`` axes are wildcards (e.g. spatial dims of a CONV layer);
        ``None`` overall means the layer has no fixed input contract.
        """
        return None

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
