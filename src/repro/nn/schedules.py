"""Learning-rate schedules and early stopping for the Trainer.

Small, explicit implementations of the two training conveniences the
accuracy experiments benefit from: step decay (halve the rate every N
epochs) and patience-based early stopping on validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.nn.optim import Optimizer


@dataclass
class StepDecay:
    """Multiply the optimiser's learning rate by ``factor`` every
    ``every_epochs`` epochs."""

    every_epochs: int
    factor: float = 0.5
    min_lr: float = 1e-6

    def __post_init__(self):
        if self.every_epochs < 1:
            raise ConfigurationError("every_epochs must be >= 1")
        if not 0.0 < self.factor <= 1.0:
            raise ConfigurationError("factor must be in (0, 1]")

    def apply(self, optimizer: Optimizer, epoch: int) -> float:
        """Update ``optimizer.lr`` for a (1-based) finished epoch count.

        Returns the learning rate now in effect.
        """
        if epoch > 0 and epoch % self.every_epochs == 0:
            optimizer.lr = max(self.min_lr, optimizer.lr * self.factor)
        return optimizer.lr


@dataclass
class EarlyStopping:
    """Stop when validation accuracy has not improved for ``patience``
    epochs (by at least ``min_delta``)."""

    patience: int = 5
    min_delta: float = 0.0

    def __post_init__(self):
        if self.patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self._best = float("-inf")
        self._stale = 0

    def update(self, val_accuracy: float) -> bool:
        """Record one epoch's validation accuracy.

        Returns True when training should stop.
        """
        if val_accuracy > self._best + self.min_delta:
            self._best = val_accuracy
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience

    @property
    def best(self) -> float:
        """Best validation accuracy seen so far."""
        return self._best
