"""Saving and loading trained networks.

A trained compressed model is the unit a downstream user ships — the whole
point of CirCNN is that the file is small. Parameters are written to a
single ``.npz`` (one array per parameter, names preserved); the network
topology itself is code, so loading restores weights into a freshly built
network of the same architecture::

    save_parameters(net, "lenet_bc.npz")
    net2 = build_lenet5(plan, seed=0)
    load_parameters(net2, "lenet_bc.npz")
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module


def save_parameters(network: Module, path: str | os.PathLike) -> int:
    """Write every named parameter of ``network`` to ``path`` (.npz).

    Returns the number of parameter tensors written.
    """
    arrays = {name: param.value for name, param in network.named_parameters()}
    np.savez(path, **arrays)
    return len(arrays)


def load_parameters(network: Module, path: str | os.PathLike) -> int:
    """Restore parameters saved by :func:`save_parameters` into ``network``.

    The target network must expose exactly the same parameter names and
    shapes (i.e. be built with the same architecture and compression
    plan); mismatches raise :class:`~repro.errors.ShapeError` with the
    offending name.

    Loading into a **compiled** (frozen) network is defined as
    *thaw-and-reload*: each assignment to ``param.value`` replaces the
    frozen array with a fresh writable one and bumps the parameter
    version, so every cached spectrum in the attached
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` is
    invalidated and lazily recomputed on the next lookup, and the next
    served eval-mode forward re-freezes each weight array as its spectrum
    refreshes (bias arrays stay writable until the next
    ``compile_inference()``). No
    re-``compile_inference()`` is needed — but the first forward after
    the load pays the weight-FFT refresh, so live weight pushes on a
    serving endpoint should prefer a registry hot swap (see
    ``docs/spectral_engine.md``, "Reloading a compiled network").
    """
    with np.load(path) as data:
        stored = {name: data[name] for name in data.files}
    current = dict(network.named_parameters())
    missing = sorted(set(current) - set(stored))
    extra = sorted(set(stored) - set(current))
    if missing or extra:
        raise ShapeError(
            f"parameter name mismatch: missing {missing}, unexpected {extra}"
        )
    for name, param in current.items():
        value = stored[name]
        if value.shape != param.value.shape:
            raise ShapeError(
                f"shape mismatch for {name!r}: stored {value.shape}, "
                f"network {param.value.shape}"
            )
        param.value = value.astype(np.float64)
    return len(current)


def parameters_nbytes(network: Module, bits_per_param: int = 64) -> int:
    """Serialized weight size at a given word length (bits)."""
    total_params = sum(p.size for p in network.parameters())
    return total_params * bits_per_param // 8


def capture_compiled_state(network) -> dict:
    """Snapshot everything the artifact store persists about a network.

    For a network compiled with ``compile_inference()`` this returns,
    without recomputing any FFT (warm caches answer every lookup):

    - ``"signature"`` — :meth:`~repro.nn.network.Sequential.serving_signature`;
    - ``"parameters"`` — ``{name: Parameter}`` from
      :meth:`~repro.nn.network.Sequential.named_parameters`;
    - ``"spectra"`` — one record per spectral layer
      (:meth:`~repro.nn.network.Sequential.spectral_layers`):
      ``{"param": <parameter name>, "backend": <resolved backend name>,
      "spectrum": <frequency-major half-spectrum array>}``.

    Raises :class:`~repro.errors.ConfigurationError` when the network has
    no spectral cache attached — the store only persists *compiled*
    state, since its whole point is skipping ``compile_inference()`` on
    load.
    """
    from repro.errors import ConfigurationError
    from repro.fftcore.backend import get_backend

    cache = getattr(network, "spectral_cache", None)
    if cache is None:
        raise ConfigurationError(
            "capture_compiled_state needs a compiled network; call "
            "compile_inference() first so the weight spectra exist"
        )
    spectra = []
    for path, layer in network.spectral_layers():
        layer_cache = layer.spectral_cache
        if layer_cache is None:
            continue
        backend = get_backend(layer.backend)
        spectra.append({
            "param": f"{path}.weight",
            "backend": backend.name,
            "spectrum": layer_cache.spectrum(layer.weight, backend),
        })
    return {
        "signature": network.serving_signature(),
        "parameters": dict(network.named_parameters()),
        "spectra": spectra,
    }
