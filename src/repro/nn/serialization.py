"""Saving and loading trained networks.

A trained compressed model is the unit a downstream user ships — the whole
point of CirCNN is that the file is small. Parameters are written to a
single ``.npz`` (one array per parameter, names preserved); the network
topology itself is code, so loading restores weights into a freshly built
network of the same architecture::

    save_parameters(net, "lenet_bc.npz")
    net2 = build_lenet5(plan, seed=0)
    load_parameters(net2, "lenet_bc.npz")
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module


def save_parameters(network: Module, path: str | os.PathLike) -> int:
    """Write every named parameter of ``network`` to ``path`` (.npz).

    Returns the number of parameter tensors written.
    """
    arrays = {name: param.value for name, param in network.named_parameters()}
    np.savez(path, **arrays)
    return len(arrays)


def load_parameters(network: Module, path: str | os.PathLike) -> int:
    """Restore parameters saved by :func:`save_parameters` into ``network``.

    The target network must expose exactly the same parameter names and
    shapes (i.e. be built with the same architecture and compression
    plan); mismatches raise :class:`~repro.errors.ShapeError` with the
    offending name.
    """
    with np.load(path) as data:
        stored = {name: data[name] for name in data.files}
    current = dict(network.named_parameters())
    missing = sorted(set(current) - set(stored))
    extra = sorted(set(stored) - set(current))
    if missing or extra:
        raise ShapeError(
            f"parameter name mismatch: missing {missing}, unexpected {extra}"
        )
    for name, param in current.items():
        value = stored[name]
        if value.shape != param.value.shape:
            raise ShapeError(
                f"shape mismatch for {name!r}: stored {value.shape}, "
                f"network {param.value.shape}"
            )
        param.value = value.astype(np.float64)
    return len(current)


def parameters_nbytes(network: Module, bits_per_param: int = 64) -> int:
    """Serialized weight size at a given word length (bits)."""
    total_params = sum(p.size for p in network.parameters())
    return total_params * bits_per_param // 8
