"""Weight initialisers.

He-style scaling is used for ReLU networks; the block-circulant layers get
the same fan-in scaling because each expanded dense entry corresponds to
exactly one stored parameter, so the expanded matrix's entry variance
matches a dense layer initialised the same way.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def he_normal(shape: tuple[int, ...], fan_in: int, seed=None) -> np.ndarray:
    """Gaussian init with std ``sqrt(2 / fan_in)`` (He et al., for ReLU)."""
    rng = make_rng(seed)
    return rng.normal(0.0, np.sqrt(2.0 / max(1, fan_in)), size=shape)


def glorot_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   seed=None) -> np.ndarray:
    """Uniform init on ``[-L, L]`` with ``L = sqrt(6 / (fan_in + fan_out))``."""
    rng = make_rng(seed)
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero tensor (biases)."""
    return np.zeros(shape, dtype=np.float64)
