"""Sequential container — the cascaded-layer structure of paper Fig 2."""

from __future__ import annotations

import numpy as np

from repro.circulant.spectral_cache import SpectralWeightCache
from repro.errors import ConfigurationError
from repro.nn.module import Module


class Sequential(Module):
    """A feed-forward stack of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: list[Module] = list(layers)

    def add(self, layer: Module) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        return self

    def _run_forward(self, x: np.ndarray, record: bool, state=None):
        """The one forward pipeline behind every entry point.

        Chains the layers in order, picking each layer's recording
        (``forward``) or pure (``inference_forward``) path per ``record``.
        When ``state`` is given (a per-layer tuple from
        :meth:`init_state`), it is threaded *explicitly* through every
        stateful layer's ``*_with_state`` sequence forward — state lives
        in the caller's hands, never on ``self``, which is what keeps the
        serving path reentrant — and ``(y, new_state)`` is returned
        instead of ``y`` alone. Stateless layers pass their slot through
        untouched.
        """
        states = None if state is None else list(state)
        for index, layer in enumerate(self.layers):
            if states is not None and getattr(layer, "stateful", False):
                run = (layer.forward_with_state if record
                       else layer.inference_forward_with_state)
                x, states[index] = run(x, states[index])
            elif record:
                x = layer.forward(x)
            else:
                x = layer.inference_forward(x)
        if states is None:
            return x
        return x, tuple(states)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_forward(x, record=True)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: chains each layer's stateless path.

        Bit-identical to the eval-mode ``forward`` (every
        ``inference_forward`` runs the same computation, minus the writes
        that cache intermediates for ``backward``), and safe to call from
        many threads at once over a compiled network — the serving
        runtime's concurrency contract (see ``docs/serving_runtime.md``).
        Stateful layers start from their zero state per call, so a whole
        sequence is one request.
        """
        return self._run_forward(x, record=False)

    # -- recurrent state threading -------------------------------------------
    @property
    def stateful(self) -> bool:
        """True when any layer carries recurrent state (see
        :class:`~repro.nn.module.StatefulModule`)."""
        return any(getattr(layer, "stateful", False) for layer in self.layers)

    def init_state(self, batch_size: int) -> tuple:
        """Per-layer zero states: one slot per layer, ``None`` for
        stateless layers. The tuple threads through :meth:`step` /
        :meth:`forward_with_state` positionally."""
        return tuple(
            layer.init_state(batch_size)
            if getattr(layer, "stateful", False) else None
            for layer in self.layers
        )

    def forward_with_state(self, x: np.ndarray, state):
        """Recording sequence forward from explicit state; returns
        ``(y, new_state)``."""
        return self._run_forward(x, record=True, state=state)

    def inference_forward_with_state(self, x: np.ndarray, state):
        """Pure sequence forward from explicit state; returns
        ``(y, new_state)``. Reentrant — state is per call, not on
        ``self``."""
        return self._run_forward(x, record=False, state=state)

    def step(self, x_t: np.ndarray, state):
        """One pure streaming timestep through the whole stack.

        ``x_t`` is ``(batch, features)`` — no time axis; stateful layers
        advance via their :meth:`~repro.nn.module.StatefulModule.step`,
        stateless layers apply their ``inference_forward``. Returns
        ``(y_t, new_state)``.
        """
        states = list(state)
        for index, layer in enumerate(self.layers):
            if getattr(layer, "stateful", False):
                x_t, states[index] = layer.step(x_t, states[index])
            else:
                x_t = layer.inference_forward(x_t)
        return x_t, tuple(states)

    def backward(self, grad_output: np.ndarray) -> np.ndarray | None:
        for index, layer in enumerate(reversed(self.layers)):
            grad_output = layer.backward(grad_output)
            if grad_output is None:
                # A layer declared it needs no input gradient
                # (``needs_input_grad=False``, meant for the *first*
                # trainable layer). Stop instead of handing None to
                # earlier layers — but refuse to silently starve an
                # earlier trainable layer of its gradients.
                remaining = self.layers[: len(self.layers) - 1 - index]
                starved = [
                    earlier for earlier in remaining
                    if earlier.num_parameters() > 0
                ]
                if starved:
                    raise ConfigurationError(
                        f"{layer!r} returned no input gradient "
                        "(needs_input_grad=False) but earlier trainable "
                        f"layers {starved!r} still need theirs; only the "
                        "first trainable layer may skip its input "
                        "gradient"
                    )
                break
        return grad_output

    def named_children(self):
        """Direct children under their path-segment names
        (``layers.<index>``); see :meth:`Module.named_children`."""
        for index, layer in enumerate(self.layers):
            yield f"layers.{index}", layer

    def named_layers(self, prefix: str = "layers"):
        """Yield ``(path, layer)`` pairs, recursing into every container —
        nested Sequentials *and* layers with registered children (the
        recurrent layers' gate projections).

        Paths are prefixes of the :meth:`named_parameters` names — a layer
        at ``layers.3`` owns the parameter ``layers.3.weight``, a gate at
        ``layers.0.xi`` the parameter ``layers.0.xi.weight`` — which is
        what lets the model-artifact store (:mod:`repro.store`) tie each
        persisted spectrum back to the parameter it was computed from.
        """
        for index, layer in enumerate(self.layers):
            path = f"{prefix}.{index}"
            yield path, layer
            yield from layer.named_sublayers(path)

    @staticmethod
    def _is_container(layer: Module) -> bool:
        """True for layers that are traversed, not planned/captured
        themselves — anything with registered children."""
        return next(layer.named_children(), None) is not None

    def planned_layers(self, prefix: str = "layers"):
        """``(path, layer)`` for every layer an execution plan configures.

        The positional spine of :class:`repro.plan.ExecutionPlan`: every
        *parameterised leaf* layer, in :meth:`named_layers` order.
        Containers are traversed, not yielded — nested Sequentials, and
        recurrent layers, whose gate projections each get their **own**
        plan entry (per-gate backend and word length) — and
        parameter-free glue (ReLU, pooling, flatten, activation
        quantisers) is skipped, so the sequence is stable under the
        re-pathing that activation-quantiser interleaving causes, which
        is what lets a plan built from a float network apply to its
        quantised twin.
        """
        for path, layer in self.named_layers(prefix):
            if self._is_container(layer):
                continue
            if layer.num_parameters() > 0:
                yield path, layer

    def spectral_layers(self, prefix: str = "layers"):
        """``(path, layer)`` for every layer that consumes a weight spectrum.

        A spectral layer is one whose forward runs through the
        ``cached_spectrum=`` fast path — it owns a ``weight`` parameter
        *and* exposes a ``spectral_cache`` slot (the block-circulant FC
        and CONV layers, and each gate projection of the recurrent
        layers). Containers are traversed, not yielded. This is the
        capture surface for
        :func:`repro.nn.serialization.capture_compiled_state`.
        """
        for path, layer in self.named_layers(prefix):
            if self._is_container(layer):
                continue
            if hasattr(layer, "spectral_cache") and hasattr(layer, "weight"):
                yield path, layer

    def compile_inference(
        self, cache: SpectralWeightCache | None = None, *,
        plan=None,
    ) -> "Sequential":
        """Freeze the network for serving: the spectral inference engine.

        Switches every layer to eval mode and shares one
        :class:`SpectralWeightCache` across all block-circulant layers —
        FC (:class:`~repro.nn.BlockCirculantDense`) and CONV
        (:class:`~repro.nn.BlockCirculantConv2D`) alike, plus any nested
        ``Sequential`` and any other layer exposing ``compile_inference``
        — precomputing each weight spectrum so eval-mode forwards skip
        the weight FFT entirely. Safe to call more than once and safe to
        keep training afterwards: weight updates invalidate entries by
        parameter version, so training-mode forwards reuse a spectrum
        only while the weights are genuinely unchanged (see
        :meth:`attach_spectral_cache` for the training-first entry
        point). Quantised serving composes the same way:
        ``quantized_view(net, bits, bits).compile_inference()`` warms
        spectra from the fake-quantised weights (see
        ``docs/spectral_engine.md``). Returns self.

        ``plan`` — a :class:`repro.plan.ExecutionPlan` — is applied
        first, **destructively** (per-layer backends set, weights rounded
        to the planned word lengths; same caveat as
        :func:`repro.quant.quantize_network_weights`): spectra must warm
        from the planned weights on the planned backends. To keep the
        original float network, build a
        :func:`repro.plan.planned_view` instead.
        """
        if plan is not None:
            from repro.plan import apply_plan_inplace

            apply_plan_inplace(self, plan)
        self._spectral_cache = cache if cache is not None else SpectralWeightCache()
        self.eval()
        for layer in self.layers:
            compile_layer = getattr(layer, "compile_inference", None)
            if compile_layer is not None:
                compile_layer(self._spectral_cache)
        return self

    def attach_spectral_cache(
        self, cache: SpectralWeightCache | None = None
    ) -> "Sequential":
        """Share one weight-spectrum cache across layers *without* freezing.

        The training-mode entry point to the spectral engine
        (``docs/spectral_training.md``): unlike :meth:`compile_inference`
        it leaves every layer's mode and parameter writeability alone, so
        optimisers keep working. Each block-circulant layer's weight
        spectrum is then version-checked per lookup — reused across
        multi-forward gradient accumulation and eval-within-train
        validation passes, recomputed after every optimiser assignment.
        Returns self.
        """
        self._spectral_cache = cache if cache is not None else SpectralWeightCache()
        for layer in self.layers:
            attach = getattr(layer, "attach_spectral_cache", None)
            if attach is not None:
                attach(self._spectral_cache)
        return self

    @property
    def spectral_cache(self) -> SpectralWeightCache | None:
        """The shared weight-spectrum cache, once compiled (else None)."""
        return getattr(self, "_spectral_cache", None)

    @property
    def is_compiled(self) -> bool:
        """True once a spectral cache is attached (``compile_inference``
        or ``attach_spectral_cache``)."""
        return self.spectral_cache is not None

    @property
    def execution_plan(self):
        """The :class:`repro.plan.ExecutionPlan` last applied, or ``None``.

        Stamped by :func:`repro.plan.apply_plan_inplace` (and therefore
        by ``compile_inference(plan=...)``, :func:`repro.plan.planned_view`
        and :func:`repro.store.load_artifact`). A network configured only
        through constructors reads as ``None``; use
        ``ExecutionPlan.from_network(net)`` to derive its effective plan.
        """
        return getattr(self, "_execution_plan", None)

    @property
    def input_sample_shape(self) -> tuple[int | None, ...] | None:
        """Per-sample input shape of the first shape-aware layer.

        ``None`` axes are wildcards (e.g. the spatial dims of a CONV
        stack); ``None`` overall means no layer declares a contract. The
        serving scheduler uses this to validate requests before they are
        assembled into a batch. The scan looks through shape-transparent
        (elementwise) layers only: a shape-transforming layer without a
        contract of its own (e.g. ``Flatten``) ends the scan, because the
        downstream layer's input shape says nothing about the network's.
        """
        for layer in self.layers:
            shape = getattr(layer, "input_sample_shape", None)
            if shape is not None:
                return shape
            if not getattr(layer, "shape_transparent", False):
                return None
        return None

    @property
    def time_axis(self) -> int | None:
        """Which per-sample axis (if any) is a variable-length time axis.

        Scanned like :attr:`input_sample_shape`: the first stateful
        layer's declared :attr:`~repro.nn.module.Module.time_axis` wins,
        looking through shape-transparent layers only. ``None`` means the
        network is purely feed-forward — every ``None`` axis in the input
        shape is then an unordered wildcard (e.g. CONV spatial dims), not
        a paddable sequence, and the serving scheduler must not
        length-bucket it.
        """
        for layer in self.layers:
            axis = getattr(layer, "time_axis", None)
            if axis is not None:
                return axis
            if not getattr(layer, "shape_transparent", False):
                return None
        return None

    def serving_signature(self) -> dict:
        """Batch-shape metadata for serving runtimes.

        Everything a batching scheduler needs to admit requests: the
        per-sample input shape (``None`` axes free), whether the network
        is compiled (spectra warmed), the number of cached spectra, and —
        for recurrent networks — that the network carries state
        (``stateful``) and which input axis is the variable-length time
        axis (``time_axis``), the axis the scheduler may pad when
        length-bucketing ragged sequence requests.
        """
        cache = self.spectral_cache
        return {
            "input_sample_shape": self.input_sample_shape,
            "compiled": cache is not None,
            "cached_spectra": len(cache) if cache is not None else 0,
            "layers": len(self.layers),
            "stateful": self.stateful,
            "time_axis": self.time_axis,
        }

    def summary(self) -> str:
        """Human-readable per-layer listing with parameter counts."""
        lines = ["Sequential:"]
        for index, layer in enumerate(self.layers):
            lines.append(
                f"  [{index}] {layer!r}  params={layer.num_parameters()}"
            )
        lines.append(f"  total params: {self.num_parameters()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Sequential({len(self.layers)} layers)"
