"""Sequential container — the cascaded-layer structure of paper Fig 2."""

from __future__ import annotations

import numpy as np

from repro.circulant.spectral_cache import SpectralWeightCache
from repro.errors import ConfigurationError
from repro.nn.module import Module, Parameter


class Sequential(Module):
    """A feed-forward stack of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers: list[Module] = list(layers)

    def add(self, layer: Module) -> "Sequential":
        """Append a layer; returns self for chaining."""
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: chains each layer's stateless path.

        Bit-identical to the eval-mode ``forward`` (every
        ``inference_forward`` runs the same computation, minus the writes
        that cache intermediates for ``backward``), and safe to call from
        many threads at once over a compiled network — the serving
        runtime's concurrency contract (see ``docs/serving_runtime.md``).
        """
        for layer in self.layers:
            x = layer.inference_forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray | None:
        for index, layer in enumerate(reversed(self.layers)):
            grad_output = layer.backward(grad_output)
            if grad_output is None:
                # A layer declared it needs no input gradient
                # (``needs_input_grad=False``, meant for the *first*
                # trainable layer). Stop instead of handing None to
                # earlier layers — but refuse to silently starve an
                # earlier trainable layer of its gradients.
                remaining = self.layers[: len(self.layers) - 1 - index]
                starved = [
                    earlier for earlier in remaining
                    if earlier.num_parameters() > 0
                ]
                if starved:
                    raise ConfigurationError(
                        f"{layer!r} returned no input gradient "
                        "(needs_input_grad=False) but earlier trainable "
                        f"layers {starved!r} still need theirs; only the "
                        "first trainable layer may skip its input "
                        "gradient"
                    )
                break
        return grad_output

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def named_parameters(self):
        for index, layer in enumerate(self.layers):
            for name, param in layer.named_parameters():
                yield f"layers.{index}.{name}", param

    def named_layers(self, prefix: str = "layers"):
        """Yield ``(path, layer)`` pairs, recursing into nested Sequentials.

        Paths are prefixes of the :meth:`named_parameters` names — a layer
        at ``layers.3`` owns the parameter ``layers.3.weight`` — which is
        what lets the model-artifact store (:mod:`repro.store`) tie each
        persisted spectrum back to the parameter it was computed from.
        """
        for index, layer in enumerate(self.layers):
            path = f"{prefix}.{index}"
            yield path, layer
            if isinstance(layer, Sequential):
                yield from layer.named_layers(f"{path}.layers")

    def planned_layers(self, prefix: str = "layers"):
        """``(path, layer)`` for every layer an execution plan configures.

        The positional spine of :class:`repro.plan.ExecutionPlan`: every
        *parameterised* non-container layer, in :meth:`named_layers`
        order. Containers are traversed, and parameter-free glue (ReLU,
        pooling, flatten, activation quantisers) is skipped — so the
        sequence is stable under the re-pathing that
        activation-quantiser interleaving causes, which is what lets a
        plan built from a float network apply to its quantised twin.
        """
        for path, layer in self.named_layers(prefix):
            if isinstance(layer, Sequential):
                continue
            if layer.num_parameters() > 0:
                yield path, layer

    def spectral_layers(self, prefix: str = "layers"):
        """``(path, layer)`` for every layer that consumes a weight spectrum.

        A spectral layer is one whose forward runs through the
        ``cached_spectrum=`` fast path — it owns a ``weight`` parameter
        *and* exposes a ``spectral_cache`` slot (the block-circulant FC
        and CONV layers). Nested ``Sequential`` containers are traversed,
        not yielded. This is the capture surface for
        :func:`repro.nn.serialization.capture_compiled_state`.
        """
        for path, layer in self.named_layers(prefix):
            if isinstance(layer, Sequential):
                continue
            if hasattr(layer, "spectral_cache") and hasattr(layer, "weight"):
                yield path, layer

    def train(self, flag: bool = True) -> "Sequential":
        super().train(flag)
        for layer in self.layers:
            layer.train(flag)
        return self

    def compile_inference(
        self, cache: SpectralWeightCache | None = None, *,
        plan=None,
    ) -> "Sequential":
        """Freeze the network for serving: the spectral inference engine.

        Switches every layer to eval mode and shares one
        :class:`SpectralWeightCache` across all block-circulant layers —
        FC (:class:`~repro.nn.BlockCirculantDense`) and CONV
        (:class:`~repro.nn.BlockCirculantConv2D`) alike, plus any nested
        ``Sequential`` and any other layer exposing ``compile_inference``
        — precomputing each weight spectrum so eval-mode forwards skip
        the weight FFT entirely. Safe to call more than once and safe to
        keep training afterwards: weight updates invalidate entries by
        parameter version, so training-mode forwards reuse a spectrum
        only while the weights are genuinely unchanged (see
        :meth:`attach_spectral_cache` for the training-first entry
        point). Quantised serving composes the same way:
        ``quantized_view(net, bits, bits).compile_inference()`` warms
        spectra from the fake-quantised weights (see
        ``docs/spectral_engine.md``). Returns self.

        ``plan`` — a :class:`repro.plan.ExecutionPlan` — is applied
        first, **destructively** (per-layer backends set, weights rounded
        to the planned word lengths; same caveat as
        :func:`repro.quant.quantize_network_weights`): spectra must warm
        from the planned weights on the planned backends. To keep the
        original float network, build a
        :func:`repro.plan.planned_view` instead.
        """
        if plan is not None:
            from repro.plan import apply_plan_inplace

            apply_plan_inplace(self, plan)
        self._spectral_cache = cache if cache is not None else SpectralWeightCache()
        self.eval()
        for layer in self.layers:
            compile_layer = getattr(layer, "compile_inference", None)
            if compile_layer is not None:
                compile_layer(self._spectral_cache)
        return self

    def attach_spectral_cache(
        self, cache: SpectralWeightCache | None = None
    ) -> "Sequential":
        """Share one weight-spectrum cache across layers *without* freezing.

        The training-mode entry point to the spectral engine
        (``docs/spectral_training.md``): unlike :meth:`compile_inference`
        it leaves every layer's mode and parameter writeability alone, so
        optimisers keep working. Each block-circulant layer's weight
        spectrum is then version-checked per lookup — reused across
        multi-forward gradient accumulation and eval-within-train
        validation passes, recomputed after every optimiser assignment.
        Returns self.
        """
        self._spectral_cache = cache if cache is not None else SpectralWeightCache()
        for layer in self.layers:
            attach = getattr(layer, "attach_spectral_cache", None)
            if attach is not None:
                attach(self._spectral_cache)
        return self

    @property
    def spectral_cache(self) -> SpectralWeightCache | None:
        """The shared weight-spectrum cache, once compiled (else None)."""
        return getattr(self, "_spectral_cache", None)

    @property
    def is_compiled(self) -> bool:
        """True once a spectral cache is attached (``compile_inference``
        or ``attach_spectral_cache``)."""
        return self.spectral_cache is not None

    @property
    def execution_plan(self):
        """The :class:`repro.plan.ExecutionPlan` last applied, or ``None``.

        Stamped by :func:`repro.plan.apply_plan_inplace` (and therefore
        by ``compile_inference(plan=...)``, :func:`repro.plan.planned_view`
        and :func:`repro.store.load_artifact`). A network configured only
        through constructors reads as ``None``; use
        ``ExecutionPlan.from_network(net)`` to derive its effective plan.
        """
        return getattr(self, "_execution_plan", None)

    @property
    def input_sample_shape(self) -> tuple[int | None, ...] | None:
        """Per-sample input shape of the first shape-aware layer.

        ``None`` axes are wildcards (e.g. the spatial dims of a CONV
        stack); ``None`` overall means no layer declares a contract. The
        serving scheduler uses this to validate requests before they are
        assembled into a batch. The scan looks through shape-transparent
        (elementwise) layers only: a shape-transforming layer without a
        contract of its own (e.g. ``Flatten``) ends the scan, because the
        downstream layer's input shape says nothing about the network's.
        """
        for layer in self.layers:
            shape = getattr(layer, "input_sample_shape", None)
            if shape is not None:
                return shape
            if not getattr(layer, "shape_transparent", False):
                return None
        return None

    def serving_signature(self) -> dict:
        """Batch-shape metadata for serving runtimes.

        Everything a batching scheduler needs to admit requests: the
        per-sample input shape (``None`` axes free), whether the network
        is compiled (spectra warmed), and the number of cached spectra.
        """
        cache = self.spectral_cache
        return {
            "input_sample_shape": self.input_sample_shape,
            "compiled": cache is not None,
            "cached_spectra": len(cache) if cache is not None else 0,
            "layers": len(self.layers),
        }

    def summary(self) -> str:
        """Human-readable per-layer listing with parameter counts."""
        lines = ["Sequential:"]
        for index, layer in enumerate(self.layers):
            lines.append(
                f"  [{index}] {layer!r}  params={layer.num_parameters()}"
            )
        lines.append(f"  total params: {self.num_parameters()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Sequential({len(self.layers)} layers)"
