"""Shape adapters between CONV and FC stages."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all non-batch axes: ``(B, C, H, W) -> (B, C*H*W)``."""

    def __init__(self):
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: no input shape cached on ``self``."""
        x = np.asarray(x, dtype=np.float64)
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output).reshape(self._input_shape)
