"""Finite-difference gradient checking as a public API.

Every backward pass in this library was validated against central
differences during development; this module packages that machinery so
downstream users extending the layer zoo can validate their own modules
with one call::

    from repro.nn.gradcheck import check_module
    report = check_module(MyLayer(...), x)
    assert report.ok, report.describe()
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import make_rng


def numeric_gradient(loss_fn, array: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``loss_fn()`` w.r.t. ``array``.

    ``loss_fn`` takes no arguments and must read ``array`` (by reference)
    on each call; entries are perturbed one at a time and restored.
    """
    grad = np.zeros_like(array, dtype=np.float64)
    iterator = np.nditer(array, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        loss_plus = loss_fn()
        array[index] = original - eps
        loss_minus = loss_fn()
        array[index] = original
        grad[index] = (loss_plus - loss_minus) / (2.0 * eps)
    return grad


@dataclass
class GradCheckReport:
    """Outcome of checking one module's gradients."""

    max_input_error: float
    parameter_errors: dict[str, float] = field(default_factory=dict)
    tolerance: float = 1e-5
    #: False when the module returned ``None`` from ``backward``
    #: (``needs_input_grad=False``) — the input gradient is then skipped,
    #: not validated.
    input_grad_checked: bool = True

    @property
    def ok(self) -> bool:
        """True when every gradient matches within tolerance."""
        worst = max(
            [self.max_input_error, *self.parameter_errors.values()],
            default=0.0,
        )
        return worst <= self.tolerance

    def describe(self) -> str:
        lines = [
            f"gradient check ({'OK' if self.ok else 'FAILED'}, "
            f"tol={self.tolerance:g}):",
            (
                f"  input grad max error: {self.max_input_error:.3e}"
                if self.input_grad_checked
                else "  input grad: skipped (backward returned None)"
            ),
        ]
        for name, error in self.parameter_errors.items():
            lines.append(f"  {name} grad max error: {error:.3e}")
        return "\n".join(lines)


def check_module(module: Module, x: np.ndarray, seed=0,
                 eps: float = 1e-6,
                 tolerance: float = 1e-5, state=None) -> GradCheckReport:
    """Validate a module's backward pass against finite differences.

    Uses a random cotangent so all output positions are exercised. The
    module is evaluated in its current training mode; stochastic layers
    (dropout) should be put in ``eval()`` first or seeded so repeated
    forwards agree.

    Works on state-carrying modules and sequence-shaped inputs too: a
    :class:`~repro.nn.module.StatefulModule` (or a ``Sequential``
    containing one) is run through ``forward_with_state`` from ``state``
    — its :meth:`init_state` zeros when ``state`` is omitted — so the
    BPTT backward is validated against differences of the very same
    sequence forward, and ``x`` may carry any shape the module accepts
    (``(batch, T, features)`` for the recurrent layers). Gradients
    flowing *into* the initial state are not checked (the zero state has
    no parameters). A module that returns ``None`` from ``backward``
    (``needs_input_grad=False``) has its parameter gradients checked and
    the input gradient marked skipped in the report.
    """
    rng = make_rng(seed)
    x = np.asarray(x, dtype=np.float64)
    if state is None and getattr(module, "stateful", False):
        state = module.init_state(x.shape[0])

    def run() -> np.ndarray:
        if state is not None:
            y, _ = module.forward_with_state(x, state)
            return y
        return module.forward(x)

    output = run()
    cotangent = rng.normal(size=output.shape)

    def loss() -> float:
        return float(np.sum(run() * cotangent))

    module.zero_grad()
    run()
    grad_input = module.backward(cotangent)
    if grad_input is None:
        input_error, input_checked = 0.0, False
    else:
        input_error = float(
            np.max(np.abs(grad_input - numeric_gradient(loss, x, eps)))
        )
        input_checked = True
    parameter_errors: dict[str, float] = {}
    for name, param in module.named_parameters():
        numeric = numeric_gradient(loss, param.value, eps)
        parameter_errors[name] = float(np.max(np.abs(param.grad - numeric)))
    return GradCheckReport(
        max_input_error=input_error,
        parameter_errors=parameter_errors,
        tolerance=tolerance,
        input_grad_checked=input_checked,
    )
