"""im2col / col2im — the CONV-to-matrix reformulation of paper §3.2 (Fig 6).

The paper accelerates CONV layers by rewriting the tensor convolution of
Eq. (6) as the matrix product ``Y = X F`` (Caffe-style), where each row of
``X`` is one receptive-field patch. These helpers perform that rewrite and
its adjoint for NCHW tensors.

Patches are returned *structured* as ``(batch, positions, C, r, r)`` so the
block-circulant CONV layer can group the channel axis into circulant
blocks; plain CONV flattens the last three axes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def conv_output_size(size: int, field: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - field) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive conv output: size={size}, field={field}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(x: np.ndarray, field: int, stride: int = 1,
           padding: int = 0) -> np.ndarray:
    """Extract convolution patches from an NCHW tensor.

    Parameters
    ----------
    x:
        Input of shape ``(B, C, H, W)``.
    field:
        Square receptive-field size ``r``.
    stride, padding:
        Usual convolution hyper-parameters (zero padding).

    Returns
    -------
    Array of shape ``(B, OH*OW, C, r, r)``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ShapeError(f"expected NCHW input, got shape {x.shape}")
    batch, channels, height, width = x.shape
    out_h = conv_output_size(height, field, stride, padding)
    out_w = conv_output_size(width, field, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    cols = np.empty(
        (batch, channels, field, field, out_h, out_w), dtype=np.float64
    )
    for i in range(field):
        i_end = i + stride * out_h
        for j in range(field):
            j_end = j + stride * out_w
            cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
    # (B, C, r, r, OH, OW) -> (B, OH*OW, C, r, r)
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch, out_h * out_w, channels, field, field
    )


def col2im(cols: np.ndarray, input_shape: tuple[int, int, int, int],
           field: int, stride: int = 1, padding: int = 0) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to NCHW.

    ``cols`` has the ``(B, OH*OW, C, r, r)`` layout produced by
    :func:`im2col`; overlapping patch positions accumulate, which makes
    this exactly the transpose operator needed by convolution backward
    passes (verified against finite differences in the tests).
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, field, stride, padding)
    out_w = conv_output_size(width, field, stride, padding)
    cols = np.asarray(cols, dtype=np.float64)
    expected = (batch, out_h * out_w, channels, field, field)
    if cols.shape != expected:
        raise ShapeError(f"expected cols shape {expected}, got {cols.shape}")
    blocks = cols.reshape(
        batch, out_h, out_w, channels, field, field
    ).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding),
        dtype=np.float64,
    )
    for i in range(field):
        i_end = i + stride * out_h
        for j in range(field):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += blocks[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
