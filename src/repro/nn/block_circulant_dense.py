"""Block-circulant fully-connected layer — paper §3.1, Algorithms 1 and 2.

Drop-in replacement for :class:`repro.nn.Dense`: same ``(batch, n) ->
(batch, m)`` contract, but the weight matrix is a ``p × q`` grid of
``k × k`` circulant blocks stored as ``p*q*k`` parameters, and both the
forward product and the two backward products run through the FFT kernels
of :mod:`repro.circulant.ops` in O(pq·k log k) time.

The layer trains the defining vectors *directly* — the paper's key point
that no post-hoc conversion or retraining step exists ("CirCNN directly
trains the network assuming block-circulant structure").
"""

from __future__ import annotations

import numpy as np

from repro.circulant.ops import (
    SpectralTape,
    block_circulant_apply,
    block_circulant_backward,
    block_circulant_forward,
    block_dims,
    partition_vector,
    unpartition_vector,
)
from repro.circulant.spectral_cache import SpectralWeightCache
from repro.errors import ConfigurationError, ShapeError
from repro.fftcore.backend import get_backend
from repro.nn.initializers import zeros
from repro.nn.module import Module
from repro.utils.rng import make_rng
from repro.utils.validation import ensure_positive


class BlockCirculantDense(Module):
    """FC layer whose weight matrix is block-circulant with block size k."""

    def __init__(self, in_features: int, out_features: int, block_size: int,
                 bias: bool = True, seed=None, backend=None,
                 init: str = "he"):
        super().__init__()
        ensure_positive(block_size, "block_size")
        # Fail at construction, not first forward: raises BackendError with
        # the known-backend list for typos like backend="fftw".
        get_backend(backend)
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        self.backend = backend
        self.p, self.q = block_dims(out_features, in_features, block_size)
        shape = (self.p, self.q, block_size)
        if init == "he":
            rng = make_rng(seed)
            # He-style scaling: each expanded dense entry equals one stored
            # parameter, so std sqrt(2 / fan_in) matches the dense baseline.
            scale = np.sqrt(2.0 / in_features)
            weight = rng.normal(0.0, scale, size=shape)
        elif init == "zeros":
            # Placeholder for values assigned right after construction
            # (deserialisation, the artifact store): skips the random
            # draw, which dominates rebuild time for serving-sized layers.
            weight = zeros(shape)
        else:
            raise ConfigurationError(
                f"init must be 'he' or 'zeros', got {init!r}"
            )
        self.weight = self.add_parameter("weight", weight)
        self.bias = (
            self.add_parameter("bias", zeros((out_features,))) if bias else None
        )
        self._tape: SpectralTape | None = None
        self.spectral_cache: SpectralWeightCache | None = None
        #: Set False on the *first* trainable layer of a network to skip
        #: the ∂L/∂x product in backward (nobody consumes it there);
        #: ``backward`` then returns None instead of the input gradient.
        self.needs_input_grad: bool = True

    # -- metadata -----------------------------------------------------------
    @property
    def input_sample_shape(self) -> tuple[int, ...]:
        """Per-sample input shape, for serving batch assembly."""
        return (self.in_features,)

    @property
    def dense_parameters(self) -> int:
        """Parameter count of the equivalent unstructured layer (m*n)."""
        return self.in_features * self.out_features

    @property
    def compression_ratio(self) -> float:
        """Weight-parameter reduction vs. the dense layer (≈ k)."""
        return self.dense_parameters / self.weight.size

    def to_dense_matrix(self) -> np.ndarray:
        """Expand the logical ``m × n`` weight matrix (tests/demos only)."""
        from repro.circulant.ops import expand_to_dense

        return expand_to_dense(
            self.weight.value, self.out_features, self.in_features
        )

    # -- compute --------------------------------------------------------------
    def compile_inference(self, cache: SpectralWeightCache | None = None):
        """Freeze this layer for serving: eval mode + warmed weight spectrum.

        Attaches (or shares) a :class:`SpectralWeightCache` and computes the
        spectrum eagerly, so the first inference after compilation pays no
        weight-FFT cost. The cache stays correct if the weights change —
        the parameter version bump triggers a lazy recompute — so compiling
        is always safe, never a staleness hazard. The parameter arrays are
        additionally frozen (read-only), so an element write that would
        bypass the version counter (``weight.value[0] = x``) raises
        immediately instead of serving a stale spectrum; assigning
        ``.value`` or calling ``mark_updated()`` thaws them. Returns self.
        """
        self.eval()
        self.spectral_cache = cache if cache is not None else SpectralWeightCache()
        self.spectral_cache.spectrum(self.weight, self.backend)
        self.weight.freeze()
        if self.bias is not None:
            self.bias.freeze()
        return self

    def attach_spectral_cache(
        self, cache: SpectralWeightCache | None = None
    ) -> "BlockCirculantDense":
        """Attach a weight-spectrum cache without freezing or eval mode.

        The training-mode entry point to the spectral engine: unlike
        :meth:`compile_inference` this neither switches modes nor freezes
        the parameters, so the optimiser keeps working. The cached weight
        spectrum is version-checked on every lookup — unchanged weights
        (gradient accumulation over several forwards, eval-within-train
        validation passes) reuse it, and each optimiser step's ``.value``
        assignment invalidates it. Because the array is *not* frozen in
        training mode, in-place element writes (``weight.value[0] = x``)
        bypass the version counter and would serve a stale spectrum —
        spell updates as pure ``.value`` assignments or call
        ``mark_updated()`` after mutating in place. Returns self.
        """
        self.spectral_cache = cache if cache is not None else SpectralWeightCache()
        return self

    def _weight_spectrum(self) -> np.ndarray | None:
        """Cached ``rfft(weight)`` when a spectral cache is attached.

        In training mode the lookup is version-checked per step (stale
        after every optimiser assignment, reused across multi-forward
        accumulation and eval-within-train); the serving-path freeze is
        only maintained in eval mode.
        """
        if self.spectral_cache is None:
            return None
        spectrum = self.spectral_cache.spectrum(self.weight, self.backend)
        if not self.training and not self.weight.frozen:
            # A legitimate update (optimiser step, requantise) thawed the
            # array; the cache just refreshed from it, so re-freeze to keep
            # the element-writes-raise guarantee for as long as we serve.
            self.weight.freeze()
        return spectrum

    def _run_forward(self, x: np.ndarray, record: bool) -> np.ndarray:
        """Shared forward pipeline; ``record`` caches state for backward.

        The serving path hands flat rows straight to the batch-major
        :func:`~repro.circulant.ops.block_circulant_apply` ops entry; the
        training path runs the same partition → spectral GEMM →
        unpartition steps explicitly (bit-identical) with ``record=True``,
        because ``backward`` consumes the resulting
        :class:`~repro.circulant.ops.SpectralTape` — input blocks plus
        the weight and input spectra this forward already computed.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"BlockCirculantDense expects (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        if record:
            blocks = partition_vector(x, self.block_size, self.q)
            out_blocks, self._tape = block_circulant_forward(
                self.weight.value, blocks, self.backend,
                cached_spectrum=self._weight_spectrum(), record=True,
            )
            out = unpartition_vector(out_blocks, self.out_features)
        else:
            out = block_circulant_apply(
                self.weight.value, x, self.out_features, self.backend,
                cached_spectrum=self._weight_spectrum(),
            )
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_forward(x, record=True)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: identical pipeline, no state writes,
        so many threads can share one compiled layer."""
        return self._run_forward(x, record=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray | None:
        if self._tape is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.ndim != 2 or grad_output.shape[1] != self.out_features:
            raise ShapeError(
                f"grad must be (batch, {self.out_features}), "
                f"got {grad_output.shape}"
            )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        # Zero-pad the output gradient into (batch, p, k) blocks; padded
        # output rows were dropped in forward, so their gradient is zero.
        grad_blocks = partition_vector(grad_output, self.block_size, self.p)
        # Replay the tape: both spectra Eq. 8-9 need besides rfft(grad)
        # were recorded by forward, so this is the step's only new FFT.
        grad_w, grad_x_blocks = block_circulant_backward(
            self.weight.value, self._tape.blocks, grad_blocks, self.backend,
            cached_spectrum=self._tape.weight_spectrum,
            cached_input_spectrum=self._tape.input_spectrum,
            compute_input_grad=self.needs_input_grad,
        )
        # The tape (blocks + batch-sized complex spectrum) is consumed;
        # release it rather than pinning the memory across the optimiser
        # step and beyond.
        self._tape = None
        self.weight.grad += grad_w
        if grad_x_blocks is None:
            return None
        return unpartition_vector(grad_x_blocks, self.in_features)

    def __repr__(self) -> str:
        return (
            f"BlockCirculantDense({self.in_features} -> {self.out_features}, "
            f"k={self.block_size}, grid={self.p}x{self.q})"
        )
