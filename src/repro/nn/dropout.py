"""Inverted dropout (train-time scaling, identity at inference)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.utils.rng import make_rng


class Dropout(Module):
    """Zero each activation with probability ``rate`` during training.

    Uses the inverted convention (kept activations scaled by
    ``1 / (1 - rate)``) so inference is a plain identity — matching how the
    hardware engine, which only implements inference (§5.4), sees the
    network.
    """

    shape_transparent = True

    def __init__(self, rate: float, seed=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = make_rng(seed)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Identity at inference; falls back to ``forward`` when training
        (the shared RNG makes the training path inherently stateful)."""
        if self.training and self.rate != 0.0:
            return self.forward(x)
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return np.asarray(grad_output)
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"
