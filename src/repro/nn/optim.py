"""First-order optimisers.

The paper trains block-circulant networks with ordinary SGD on the defining
vectors (Algorithm 2 supplies the gradients); Adam is provided because it
converges faster on the small synthetic datasets used in the accuracy
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Parameter


class Optimizer:
    """Base: holds the parameter list and a ``step``/``zero_grad`` pair."""

    def __init__(self, parameters: list[Parameter]):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer received no parameters")

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            # Pure assignment (not -=): the setter bumps the version and
            # re-creates a writable array even if the parameter was frozen
            # by compile_inference(), so training after compiling works.
            param.value = param.value - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias-corrected moments."""

    def __init__(self, parameters: list[Parameter], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ConfigurationError(f"lr must be > 0, got {lr}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            # Pure assignment, like SGD: stays valid on frozen parameters.
            param.value = (
                param.value - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            )
