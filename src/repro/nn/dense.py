"""Unstructured fully-connected layer — the paper's baseline FC (Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.initializers import he_normal, zeros
from repro.nn.module import Module


class Dense(Module):
    """``y = x @ W.T + b`` with an ``(out_features, in_features)`` weight.

    This is the O(n^2)-compute, O(n^2)-storage layer that
    :class:`~repro.nn.BlockCirculantDense` replaces.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed=None, init: str = "he"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        shape = (out_features, in_features)
        if init == "he":
            weight = he_normal(shape, in_features, seed)
        elif init == "zeros":
            # Placeholder for values assigned right after construction
            # (deserialisation, the artifact store): skips the random draw.
            weight = zeros(shape)
        else:
            raise ConfigurationError(
                f"init must be 'he' or 'zeros', got {init!r}"
            )
        self.weight = self.add_parameter("weight", weight)
        self.bias = self.add_parameter("bias", zeros((out_features,))) if bias else None
        self._input: np.ndarray | None = None

    @property
    def input_sample_shape(self) -> tuple[int, ...]:
        """Per-sample input shape, for serving batch assembly."""
        return (self.in_features,)

    def _run_forward(self, x: np.ndarray, record: bool) -> np.ndarray:
        """Shared forward pipeline; ``record`` caches state for backward."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Dense expects (batch, {self.in_features}), got {x.shape}"
            )
        if record:
            self._input = x
        out = x @ self.weight.value.T
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._run_forward(x, record=True)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: identical pipeline, no state writes."""
        return self._run_forward(x, record=False)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight.grad += grad_output.T @ self._input
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value

    def __repr__(self) -> str:
        return f"Dense({self.in_features} -> {self.out_features})"
