"""A from-scratch NumPy neural-network framework.

No autograd library ships in this environment, so the training experiments
of the paper (Fig 7b, §3.4) run on this explicit forward/backward
framework. Every layer implements the :class:`~repro.nn.module.Module`
protocol: ``forward`` caches what its ``backward`` needs, ``backward``
accumulates parameter gradients and returns the input gradient.

The two block-circulant layers — :class:`~repro.nn.BlockCirculantDense`
(Algorithms 1–2) and :class:`~repro.nn.BlockCirculantConv2D` (§3.2) — are
drop-in replacements for :class:`~repro.nn.Dense` and
:class:`~repro.nn.Conv2D`; swapping them is the entire CirCNN compression
story at the software level.
"""

from repro.nn.module import Module, Parameter, StatefulModule
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.dense import Dense
from repro.nn.block_circulant_dense import BlockCirculantDense
from repro.nn.conv import Conv2D
from repro.nn.block_circulant_conv import BlockCirculantConv2D
from repro.nn.pooling import AvgPool2D, MaxPool2D
from repro.nn.reshape import Flatten
from repro.nn.dropout import Dropout
from repro.nn.fft_conv import FFTConv2D
from repro.nn.recurrent import BlockCirculantGRU, BlockCirculantLSTM
from repro.nn.losses import MSELoss, SoftmaxCrossEntropyLoss
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.training import TrainingHistory, Trainer
from repro.nn.schedules import EarlyStopping, StepDecay
from repro.nn.gradcheck import GradCheckReport, check_module
from repro.nn.serialization import (
    capture_compiled_state,
    load_parameters,
    parameters_nbytes,
    save_parameters,
)

__all__ = [
    "Module",
    "Parameter",
    "StatefulModule",
    "BlockCirculantLSTM",
    "BlockCirculantGRU",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dense",
    "BlockCirculantDense",
    "Conv2D",
    "BlockCirculantConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Flatten",
    "Dropout",
    "SoftmaxCrossEntropyLoss",
    "MSELoss",
    "Sequential",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "FFTConv2D",
    "StepDecay",
    "EarlyStopping",
    "check_module",
    "GradCheckReport",
    "save_parameters",
    "load_parameters",
    "parameters_nbytes",
    "capture_compiled_state",
]
