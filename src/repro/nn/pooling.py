"""Pooling layers (paper §2.1, POOL).

Max pooling is "the dominant type of pooling strategy in state-of-the-art
DCNNs" per the paper; average pooling is provided for completeness. In the
CirCNN architecture both run on the peripheral computing block through
comparators (O(n) work), which the architecture simulator accounts for.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.module import Module


class _Pool2D(Module):
    """Shared machinery: patch extraction and scatter-add backward."""

    def __init__(self, field: int, stride: int | None = None):
        super().__init__()
        self.field = field
        self.stride = field if stride is None else stride
        self._input_shape: tuple[int, int, int, int] | None = None

    def output_shape(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for a given input size."""
        return (
            conv_output_size(height, self.field, self.stride, 0),
            conv_output_size(width, self.field, self.stride, 0),
        )

    def _extract(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, tuple[int, int, int, int]]:
        """Pure patch extraction: ``(patches, input_shape)``, no state."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ShapeError(f"pooling expects NCHW input, got {x.shape}")
        cols = im2col(x, self.field, self.stride, 0)
        batch, positions, channels = cols.shape[:3]
        return (
            cols.reshape(batch, positions, channels, self.field**2),
            x.shape,
        )

    def _patches(self, x: np.ndarray) -> np.ndarray:
        patches, self._input_shape = self._extract(x)
        return patches

    def _scatter(self, grad_patches: np.ndarray) -> np.ndarray:
        batch, positions, channels = grad_patches.shape[:3]
        cols = grad_patches.reshape(
            batch, positions, channels, self.field, self.field
        )
        return col2im(cols, self._input_shape, self.field, self.stride, 0)

    def _to_nchw(
        self, pooled: np.ndarray,
        input_shape: tuple[int, int, int, int] | None = None,
    ) -> np.ndarray:
        if input_shape is None:
            input_shape = self._input_shape
        batch, _, channels = pooled.shape
        height, width = self.output_shape(input_shape[2], input_shape[3])
        return pooled.transpose(0, 2, 1).reshape(batch, channels, height, width)


class MaxPool2D(_Pool2D):
    """Max pooling over non-overlapping (or strided) square windows."""

    def __init__(self, field: int, stride: int | None = None):
        super().__init__(field, stride)
        self._argmax: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        patches = self._patches(x)
        self._argmax = np.argmax(patches, axis=-1)
        return self._to_nchw(np.max(patches, axis=-1))

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: no argmax/shape cached on ``self``."""
        patches, input_shape = self._extract(x)
        return self._to_nchw(np.max(patches, axis=-1), input_shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, channels, out_h, out_w = grad_output.shape
        grad_flat = grad_output.reshape(
            batch, channels, out_h * out_w
        ).transpose(0, 2, 1)
        grad_patches = np.zeros(
            grad_flat.shape + (self.field**2,), dtype=np.float64
        )
        np.put_along_axis(
            grad_patches, self._argmax[..., np.newaxis],
            grad_flat[..., np.newaxis], axis=-1,
        )
        return self._scatter(grad_patches)

    def __repr__(self) -> str:
        return f"MaxPool2D(field={self.field}, stride={self.stride})"


class AvgPool2D(_Pool2D):
    """Average pooling over square windows."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        patches = self._patches(x)
        return self._to_nchw(np.mean(patches, axis=-1))

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: no input shape cached on ``self``."""
        patches, input_shape = self._extract(x)
        return self._to_nchw(np.mean(patches, axis=-1), input_shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, channels, out_h, out_w = grad_output.shape
        grad_flat = grad_output.reshape(
            batch, channels, out_h * out_w
        ).transpose(0, 2, 1)
        share = grad_flat[..., np.newaxis] / float(self.field**2)
        grad_patches = np.broadcast_to(
            share, grad_flat.shape + (self.field**2,)
        ).copy()
        return self._scatter(grad_patches)

    def __repr__(self) -> str:
        return f"AvgPool2D(field={self.field}, stride={self.stride})"
