"""Activation layers. ReLU is the paper's activation of choice (Eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """``max(0, x)`` — runs on the peripheral block's comparators (§4.2)."""

    shape_transparent = True

    def __init__(self):
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: no mask cached on ``self``."""
        x = np.asarray(x, dtype=np.float64)
        return np.where(x > 0, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class Sigmoid(Module):
    """Logistic activation — used by the RBM/DBN experiments (§3.4)."""

    shape_transparent = True

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._output = 1.0 / (1.0 + np.exp(-x))
        return self._output

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: no output cached on ``self``."""
        x = np.asarray(x, dtype=np.float64)
        return 1.0 / (1.0 + np.exp(-x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    shape_transparent = True

    def __init__(self):
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(np.asarray(x, dtype=np.float64))
        return self._output

    def inference_forward(self, x: np.ndarray) -> np.ndarray:
        """Reentrant serving forward: no output cached on ``self``."""
        return np.tanh(np.asarray(x, dtype=np.float64))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)
