"""Toeplitz matrices via circulant embedding — the LDR generalisation hook.

§3.3 proves universal approximation "more generally, for arbitrary
structured matrices satisfying the low displacement rank γ" [43].
Circulant matrices are the γ = 1 special case; Toeplitz matrices (constant
diagonals, 2k − 1 free parameters) are the next member of that family and
the classic example of a structured matrix that still multiplies in
O(k log k): embed the k×k Toeplitz matrix into a 2k×2k circulant and reuse
the same FFT kernel.

This module provides that extension so the library covers the paper's
"general structured matrix" direction: :class:`ToeplitzMatrix` with exact
FFT products, dense round-trips, and the least-squares projection.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.fftcore.backend import get_backend
from repro.utils.validation import next_power_of_two


class ToeplitzMatrix:
    """A ``k × k`` Toeplitz matrix ``T[i, j] = t[i - j]``.

    Stored as the length ``2k − 1`` vector of diagonal values, indexed
    from ``-(k−1)`` (top-right diagonal) to ``k−1`` (bottom-left):
    ``first_column = t[0], t[1], ..., t[k-1]`` and
    ``first_row = t[0], t[-1], ..., t[-(k-1)]``.
    """

    def __init__(self, first_column: np.ndarray, first_row: np.ndarray):
        col = np.asarray(first_column, dtype=np.float64)
        row = np.asarray(first_row, dtype=np.float64)
        if col.ndim != 1 or row.ndim != 1 or col.size != row.size:
            raise ShapeError(
                "first_column and first_row must be 1-D of equal length, "
                f"got {col.shape} and {row.shape}"
            )
        if col.size == 0:
            raise ShapeError("Toeplitz matrix must be non-empty")
        if col[0] != row[0]:
            raise ShapeError(
                f"corner mismatch: first_column[0]={col[0]} != "
                f"first_row[0]={row[0]}"
            )
        self.first_column = col
        self.first_row = row

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "ToeplitzMatrix":
        """Least-squares Toeplitz projection: average each diagonal."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ShapeError(f"expected square matrix, got {dense.shape}")
        k = dense.shape[0]
        column = np.array([np.mean(np.diagonal(dense, -d)) for d in range(k)])
        row = np.array([np.mean(np.diagonal(dense, d)) for d in range(k)])
        return cls(column, row)

    @classmethod
    def random(cls, k: int, scale: float = 1.0, seed=None) -> "ToeplitzMatrix":
        """Gaussian-initialised Toeplitz matrix."""
        rng = np.random.default_rng(seed)
        column = rng.normal(0.0, scale, size=k)
        row = rng.normal(0.0, scale, size=k)
        row[0] = column[0]
        return cls(column, row)

    # -- views ------------------------------------------------------------
    @property
    def size(self) -> int:
        """Matrix dimension ``k``."""
        return self.first_column.size

    @property
    def num_parameters(self) -> int:
        """Free parameters: ``2k − 1`` (vs dense ``k^2``)."""
        return 2 * self.size - 1

    def to_dense(self) -> np.ndarray:
        """Materialise the ``k × k`` matrix."""
        k = self.size
        i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        diff = i - j
        out = np.where(
            diff >= 0,
            self.first_column[np.abs(diff)],
            self.first_row[np.abs(diff)],
        )
        return out.astype(np.float64)

    # -- products -----------------------------------------------------------
    def _embedding_vector(self, padded: int) -> np.ndarray:
        """First column of the circulant embedding of size ``padded``.

        The classic construction: ``c = [t_0, t_1, ..., t_{k-1}, 0...0,
        t_{-(k-1)}, ..., t_{-1}]`` makes the top-left k×k block of the
        circulant equal to the Toeplitz matrix.
        """
        k = self.size
        vector = np.zeros(padded, dtype=np.float64)
        vector[:k] = self.first_column
        if k > 1:
            vector[padded - (k - 1):] = self.first_row[1:][::-1]
        return vector

    def matvec(self, x: np.ndarray, backend=None) -> np.ndarray:
        """``T @ x`` in O(k log k) via the circulant embedding."""
        be = get_backend(backend)
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.size:
            raise ShapeError(
                f"matvec expects last axis {self.size}, got {x.shape[-1]}"
            )
        k = self.size
        padded = next_power_of_two(2 * k - 1) if k > 1 else 1
        circ = self._embedding_vector(padded)
        x_pad = np.zeros(x.shape[:-1] + (padded,), dtype=np.float64)
        x_pad[..., :k] = x
        product = be.irfft(be.rfft(circ) * be.rfft(x_pad), n=padded)
        return product[..., :k]

    def rmatvec(self, y: np.ndarray, backend=None) -> np.ndarray:
        """``T.T @ y`` — the transpose is the Toeplitz matrix with column
        and row swapped."""
        transpose = ToeplitzMatrix(self.first_row, self.first_column)
        return transpose.matvec(y, backend)

    def __matmul__(self, x):
        return self.matvec(x)

    def __repr__(self) -> str:
        return f"ToeplitzMatrix(k={self.size})"
