"""Block-circulant matrix container (paper §3.1, Figs 1 and 4b).

:class:`BlockCirculantMatrix` wraps the defining-vector array ``(p, q, k)``
with shape metadata (the logical ``m × n`` size, including padding when
``k`` does not divide the dimensions) and exposes dense round-trips, FFT
products, and the storage accounting behind Fig 7.
"""

from __future__ import annotations

import numpy as np

from repro.circulant.ops import (
    block_circulant_forward,
    block_dims,
    expand_to_dense,
    partition_vector,
    unpartition_vector,
)
from repro.circulant.projection import nearest_block_circulant
from repro.errors import ShapeError
from repro.fftcore.backend import get_backend
from repro.utils.rng import make_rng


class BlockCirculantMatrix:
    """An ``m × n`` matrix represented by ``p × q`` circulant blocks.

    Parameters
    ----------
    weights:
        Defining vectors, shape ``(p, q, k)`` — the first column of each
        circulant block.
    m, n:
        Logical matrix shape. Must satisfy ``p = ceil(m/k)`` and
        ``q = ceil(n/k)``; rows/columns beyond ``m``/``n`` are padding that
        products ignore.
    """

    def __init__(self, weights: np.ndarray, m: int, n: int):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 3:
            raise ShapeError(
                f"weights must be (p, q, k), got shape {weights.shape}"
            )
        p, q, k = weights.shape
        expected_p, expected_q = block_dims(m, n, k)
        if (p, q) != (expected_p, expected_q):
            raise ShapeError(
                f"block grid {p}x{q} does not match shape ({m}, {n}) with "
                f"k={k}; expected {expected_p}x{expected_q}"
            )
        self.weights = weights
        self.m = m
        self.n = n

    # -- constructors -----------------------------------------------------
    @classmethod
    def random(cls, m: int, n: int, k: int, scale: float | None = None,
               seed=None) -> "BlockCirculantMatrix":
        """Gaussian-initialised block-circulant matrix.

        ``scale`` defaults to ``sqrt(1 / n)`` so that the *expanded* dense
        matrix has entry variance comparable to standard dense
        initialisation (each expanded entry is one stored parameter).
        """
        rng = make_rng(seed)
        p, q = block_dims(m, n, k)
        if scale is None:
            scale = float(np.sqrt(1.0 / n))
        weights = rng.normal(0.0, scale, size=(p, q, k))
        return cls(weights, m, n)

    @classmethod
    def from_dense(cls, dense: np.ndarray, k: int) -> "BlockCirculantMatrix":
        """Least-squares projection of a dense matrix (see
        :func:`repro.circulant.projection.nearest_block_circulant`)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"expected 2-D matrix, got shape {dense.shape}")
        m, n = dense.shape
        return cls(nearest_block_circulant(dense, k), m, n)

    # -- metadata ---------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Logical matrix shape ``(m, n)``."""
        return (self.m, self.n)

    @property
    def block_size(self) -> int:
        """Circulant block size ``k``."""
        return self.weights.shape[2]

    @property
    def grid(self) -> tuple[int, int]:
        """Block grid ``(p, q)``."""
        return self.weights.shape[0], self.weights.shape[1]

    @property
    def num_parameters(self) -> int:
        """Stored parameters: ``p * q * k`` (the paper's O(n) storage)."""
        return int(self.weights.size)

    @property
    def dense_parameters(self) -> int:
        """Parameters of the equivalent unstructured matrix: ``m * n``."""
        return self.m * self.n

    @property
    def compression_ratio(self) -> float:
        """Parameter-count reduction versus the dense matrix.

        For divisible shapes this equals the block size ``k`` (Fig 1's
        "larger block size leads to high compression ratio").
        """
        return self.dense_parameters / self.num_parameters

    # -- algebra ----------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise the logical ``m × n`` dense matrix."""
        return expand_to_dense(self.weights, self.m, self.n)

    def matvec(self, x: np.ndarray, backend=None) -> np.ndarray:
        """``W @ x`` for a vector or ``(batch, n)`` matrix of vectors."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[np.newaxis, :]
        if x.shape[-1] != self.n:
            raise ShapeError(
                f"matvec expects inputs of length {self.n}, got {x.shape[-1]}"
            )
        p, q = self.grid
        blocks = partition_vector(x, self.block_size, q)
        out_blocks = block_circulant_forward(self.weights, blocks, backend)
        out = unpartition_vector(out_blocks, self.m)
        return out[0] if single else out

    def rmatvec(self, y: np.ndarray, backend=None) -> np.ndarray:
        """``W.T @ y`` — used by backward passes and by tests.

        The transpose of a block-circulant matrix is block-circulant with
        the transposed grid and each block's defining vector index-reversed;
        we evaluate it directly in the frequency domain via conjugation.
        """
        be = get_backend(backend)
        y = np.asarray(y, dtype=np.float64)
        single = y.ndim == 1
        if single:
            y = y[np.newaxis, :]
        if y.shape[-1] != self.m:
            raise ShapeError(
                f"rmatvec expects inputs of length {self.m}, got {y.shape[-1]}"
            )
        p, q = self.grid
        k = self.block_size
        y_blocks = partition_vector(y, k, p)
        wf = be.rfft(self.weights)
        yf = be.rfft(y_blocks)
        xf = np.einsum("pqf,bpf->bqf", np.conj(wf), yf)
        x_blocks = be.irfft(xf, n=k)
        out = unpartition_vector(x_blocks, self.n)
        return out[0] if single else out

    def __matmul__(self, x):
        return self.matvec(x)

    def __repr__(self) -> str:
        p, q = self.grid
        return (
            f"BlockCirculantMatrix(shape={self.shape}, k={self.block_size}, "
            f"grid={p}x{q}, params={self.num_parameters})"
        )
