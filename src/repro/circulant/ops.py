"""Batched FFT-domain kernels for block-circulant products (Algorithms 1–2).

These are the computational heart of CirCNN. A weight matrix ``W ∈ R^{m×n}``
is a ``p × q`` grid of ``k × k`` circulant blocks, stored as the array
``w[p, q, k]`` of first-column defining vectors. The forward product of
Algorithm 1,

    a_i = Σ_j IFFT(FFT(w_ij) ∘ FFT(x_j)),             (paper Fig 5)

and the two backward products of Algorithm 2,

    ∂L/∂w_ij = IFFT(FFT(∂L/∂a_i) ∘ conj(FFT(x_j)))    (cross-correlation)
    ∂L/∂x_j  = Σ_i IFFT(conj(FFT(w_ij)) ∘ FFT(∂L/∂a_i)),

are evaluated over a whole batch with one real FFT per block row/column and
one contraction in the half-spectrum domain — the einsum
``"pqf,bqf->bpf"`` executed as a batched BLAS product, one complex GEMM
per frequency bin, with no Python loop over the block grid. (The paper
writes the backward
pass with an index-reversed ``x'``; for real signals that reversal equals
the complex conjugate in the frequency domain, which is what we use.)

The same structure covers the CONV layer (paper Eq. 7): at each of the
``r²`` spatial offsets the cross-channel weight matrix is block-circulant,
and :func:`block_circulant_conv_forward` folds the offset axis into the
contracted dimension so FC and CONV share one spectral-contraction kernel,
:func:`spectral_contract`.

All functions accept an FFT ``backend`` name so every experiment can be
replayed on the from-scratch radix-2 kernel, and a ``cached_spectrum=``
fast path that consumes a precomputed :func:`weight_spectrum` — weights
change once per optimiser step but are read on every inference, so the
serving path (see :class:`repro.circulant.spectral_cache.SpectralWeightCache`)
amortises the weight FFT across calls and only transforms activations.

Training gets the same reuse through the **spectral tape** (paper Eq. 8–9:
both gradients are per-frequency products of spectra the forward pass
already computed). A forward called with ``record=True`` returns a
:class:`SpectralTape` carrying the weight and input/patch spectra, and the
backward kernels accept them back (``cached_spectrum=`` /
``cached_input_spectrum=`` / ``cached_patch_spectrum=``), so one full
train step performs exactly one FFT per distinct tensor: ``w``, ``x`` (or
the im2col patches), and the output gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.fftcore.backend import get_backend
from repro.utils.validation import ensure_positive


def block_dims(m: int, n: int, k: int) -> tuple[int, int]:
    """Number of block rows ``p`` and block columns ``q`` for an ``m × n``
    matrix with block size ``k``, rounding up (padded blocks are allowed,
    matching the paper's treatment of non-divisible layer shapes)."""
    ensure_positive(k, "block size k")
    ensure_positive(m, "m")
    ensure_positive(n, "n")
    return -(-m // k), -(-n // k)


def partition_vector(x: np.ndarray, k: int, q: int) -> np.ndarray:
    """Split a batch of length-``n`` vectors into ``q`` zero-padded blocks.

    Parameters
    ----------
    x:
        Array of shape ``(batch, n)`` with ``n <= q * k``.
    k, q:
        Block size and number of blocks.

    Returns
    -------
    Array of shape ``(batch, q, k)``; positions beyond ``n`` are zero.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ShapeError(f"expected (batch, n) input, got shape {x.shape}")
    batch, n = x.shape
    if n > q * k:
        raise ShapeError(f"n={n} exceeds q*k={q * k}")
    if n < q * k:
        padded = np.zeros((batch, q * k), dtype=np.float64)
        padded[:, :n] = x
        x = padded
    return x.reshape(batch, q, k)


def unpartition_vector(a: np.ndarray, m: int) -> np.ndarray:
    """Concatenate ``(batch, p, k)`` output blocks and drop padding to ``m``."""
    a = np.asarray(a)
    if a.ndim != 3:
        raise ShapeError(f"expected (batch, p, k) input, got shape {a.shape}")
    batch, p, k = a.shape
    if m > p * k:
        raise ShapeError(f"m={m} exceeds p*k={p * k}")
    return a.reshape(batch, p * k)[:, :m]


@dataclass
class SpectralTape:
    """Spectra a recording forward pass saves for reuse in backward.

    Eq. 8–9 of the paper evaluate both gradients as per-frequency products
    of ``FFT(w)``, ``FFT(x)`` and ``FFT(∂L/∂a)`` — the first two of which
    the forward pass already computed. The tape is the record that carries
    them across the forward/backward boundary:

    - ``blocks`` — the time-domain input blocks (FC: ``(batch, q, k)``) or
      patch blocks (CONV: ``(batch·positions, r², q, k)``) the forward
      consumed;
    - ``input_spectrum`` — ``rfft(blocks)``, reusable as
      ``cached_input_spectrum=`` / ``cached_patch_spectrum=``;
    - ``weight_spectrum`` — the ``rfft(w)`` the forward actually used
      (possibly served from a
      :class:`~repro.circulant.spectral_cache.SpectralWeightCache`),
      reusable as ``cached_spectrum=``. Using the *recorded* spectrum in
      backward is also the mathematically right thing: the gradient is of
      the forward that ran, not of whatever the weights are now.

    With a tape, a full train step costs exactly one FFT per distinct
    tensor — ``w``, ``x``/patches, and the output gradient — instead of
    recomputing the first two in backward.
    """

    blocks: np.ndarray
    input_spectrum: np.ndarray
    weight_spectrum: np.ndarray


def weight_spectrum(w: np.ndarray, backend=None) -> np.ndarray:
    """Half-spectra of the defining vectors: ``rfft`` over the last axis.

    ``w`` is a grid of defining vectors — ``(p, q, k)`` for the FC layer,
    ``(r², p, q, k)`` for the CONV layer — and the result replaces the last
    axis with ``k//2 + 1`` complex bins, the array consumed by the
    ``cached_spectrum=`` fast path of :func:`block_circulant_forward` /
    :func:`block_circulant_backward`. Computing this once per weight
    update — rather than once per inference — is the amortisation that
    :class:`repro.circulant.spectral_cache.SpectralWeightCache` automates.
    """
    be = get_backend(backend)
    w = np.asarray(w, dtype=np.float64)
    if w.ndim < 3:
        raise ShapeError(
            f"weights must be a (..., q, k) block grid, got shape {w.shape}"
        )
    return be.rfft(w)


def spectral_contract(wf: np.ndarray, xf: np.ndarray) -> np.ndarray:
    """The one spectral-contraction kernel shared by the FC and CONV layers.

    Evaluates the half-spectrum weight/activation product as one complex
    BLAS GEMM per frequency bin, arranged frequency-major:

    - **FC** (Algorithm 1): ``wf`` has shape ``(p, q, f)``, ``xf`` has
      shape ``(batch, q, f)``, and the result ``(batch, p, f)`` equals the
      einsum ``"pqf,bqf->bpf"`` — evaluated as ``(f, p, q) @ (f, q, batch)``.
    - **CONV** (paper Eq. 7): ``wf`` has shape ``(r², p, q, f)`` — one
      cross-channel block grid per spatial offset — ``xf`` has shape
      ``(batch, r², q, f)``, and the result ``(batch, p, f)`` equals the
      einsum ``"sijf,bsjf->bif"``. The spatial-offset axis folds into the
      contracted dimension, so the CONV product is the *same*
      frequency-major GEMM with ``r²·q`` columns — which is what lets one
      kernel (and one cached-spectrum layout) serve both layer types.

    When ``wf`` comes from
    :class:`~repro.circulant.spectral_cache.SpectralWeightCache` its memory
    is already frequency-major, so the transposes below are zero-copy
    views; only the activation spectrum (fresh from the batch FFT) is
    rearranged per call.
    """
    if wf.ndim == 3:
        if xf.ndim != 3 or xf.shape[1:] != wf.shape[1:]:
            raise ShapeError(
                f"activation spectrum must be (batch, {wf.shape[1]}, "
                f"{wf.shape[2]}), got {xf.shape}"
            )
        # (f, p, q) @ (f, q, batch) -> (f, p, batch).
        af = np.matmul(wf.transpose(2, 0, 1), xf.transpose(2, 1, 0))
        return af.transpose(2, 1, 0)
    if wf.ndim == 4:
        s, p, q, f = wf.shape
        if xf.ndim != 4 or xf.shape[1:] != (s, q, f):
            raise ShapeError(
                f"activation spectrum must be (batch, {s}, {q}, {f}), "
                f"got {xf.shape}"
            )
        batch = xf.shape[0]
        # Fold (offset, block-column) into one contracted axis of length
        # s*q: (f, p, s*q) @ (f, s*q, batch) -> (f, p, batch).
        lhs = wf.transpose(3, 1, 0, 2).reshape(f, p, s * q)
        rhs = xf.transpose(3, 1, 2, 0).reshape(f, s * q, batch)
        return np.matmul(lhs, rhs).transpose(2, 1, 0)
    raise ShapeError(
        f"weight spectrum must be (p, q, f) or (r², p, q, f), got {wf.shape}"
    )


def block_circulant_forward(
    w: np.ndarray, x_blocks: np.ndarray, backend=None, *,
    cached_spectrum: np.ndarray | None = None, record: bool = False,
) -> np.ndarray | tuple[np.ndarray, SpectralTape]:
    """Algorithm 1: batched forward product of a block-circulant matrix.

    Parameters
    ----------
    w:
        Defining vectors, shape ``(p, q, k)`` (first columns of each block).
    x_blocks:
        Input blocks, shape ``(batch, q, k)``.
    cached_spectrum:
        Optional precomputed ``rfft(w)`` of shape ``(p, q, k//2 + 1)``
        (see :func:`weight_spectrum`). When given, the weight FFT — the
        dominant cost for inference-sized batches — is skipped entirely.
    record:
        When true, also return the :class:`SpectralTape` of spectra this
        call computed, for :func:`block_circulant_backward` to consume —
        the training-path analogue of ``cached_spectrum=``.

    Returns
    -------
    Output blocks ``a``, shape ``(batch, p, k)`` — or the pair
    ``(a, tape)`` when ``record`` is true.
    """
    be = get_backend(backend)
    w = np.asarray(w, dtype=np.float64)
    x_blocks = np.asarray(x_blocks, dtype=np.float64)
    _check_block_shapes(w, x_blocks)
    k = w.shape[-1]
    if cached_spectrum is None:
        wf = be.rfft(w)
    else:
        wf = cached_spectrum
        _check_spectrum_shape(wf, w.shape)
    xf = be.rfft(x_blocks)
    if record:
        # Rearrange once to frequency-major memory behind the natural
        # view (the SpectralWeightCache layout trick): the contraction
        # below would have copied anyway, and the backward reuse then
        # contracts straight from the same memory.
        xf = np.ascontiguousarray(xf.transpose(2, 1, 0)).transpose(2, 1, 0)
    out = be.irfft(spectral_contract(wf, xf), n=k)
    if record:
        return out, SpectralTape(x_blocks, xf, wf)
    return out


def block_circulant_apply(
    w: np.ndarray, x: np.ndarray, out_features: int | None = None,
    backend=None, *, cached_spectrum: np.ndarray | None = None,
) -> np.ndarray:
    """Batch-major FC entry point: flat ``(batch, n)`` rows in, ``(batch, m)``
    rows out.

    Combines :func:`partition_vector`, :func:`block_circulant_forward` and
    :func:`unpartition_vector` in one call, so batch assemblers — the
    serving scheduler stacking many requests into one micro-batch — hand
    their rows straight to the per-frequency GEMM without doing the block
    reshuffle themselves. Stateless by construction, which is what makes
    the compiled serving forward reentrant.

    Parameters
    ----------
    w:
        Defining vectors, shape ``(p, q, k)``.
    x:
        Flat input rows, shape ``(batch, n)`` with ``n <= q*k``.
    out_features:
        Output width ``m`` (padding rows dropped); defaults to ``p*k``.
    cached_spectrum:
        Optional precomputed ``rfft(w)`` (see :func:`weight_spectrum`).

    Returns
    -------
    Output rows, shape ``(batch, out_features)``.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 3:
        raise ShapeError(f"weights must be (p, q, k), got shape {w.shape}")
    p, q, k = w.shape
    m = p * k if out_features is None else out_features
    blocks = partition_vector(x, k, q)
    out_blocks = block_circulant_forward(
        w, blocks, backend, cached_spectrum=cached_spectrum
    )
    return unpartition_vector(out_blocks, m)


def block_circulant_conv_forward(
    w: np.ndarray, patch_blocks: np.ndarray, backend=None, *,
    cached_spectrum: np.ndarray | None = None, record: bool = False,
) -> np.ndarray | tuple[np.ndarray, SpectralTape]:
    """Paper Eq. 7: the CONV layer's per-spatial-offset spectral product.

    After im2col, a block-circulant convolution is ``r²`` independent
    cross-channel block-circulant products summed over the spatial
    offsets. This kernel evaluates all of them at once through
    :func:`spectral_contract` — the same frequency-major per-frequency
    BLAS GEMM the FC layer uses, with the offset axis folded into the
    contraction.

    Parameters
    ----------
    w:
        Defining vectors, shape ``(r², p, q, k)`` — one ``(p, q)`` grid of
        length-``k`` first columns per spatial offset.
    patch_blocks:
        im2col patches partitioned into channel blocks, shape
        ``(batch·positions, r², q, k)``.
    cached_spectrum:
        Optional precomputed ``rfft(w)`` of shape ``(r², p, q, k//2 + 1)``
        (see :func:`weight_spectrum`). When given — normally from
        :class:`~repro.circulant.spectral_cache.SpectralWeightCache`,
        whose frequency-major layout makes the contraction zero-copy —
        the ``r²·p·q`` weight FFTs are skipped entirely, which dominates
        the cost for inference-sized batches.
    record:
        When true, also return the :class:`SpectralTape` of spectra this
        call computed, for :func:`block_circulant_conv_backward`.

    Returns
    -------
    Output channel blocks, shape ``(batch·positions, p, k)`` — or the
    pair ``(blocks, tape)`` when ``record`` is true.
    """
    be = get_backend(backend)
    w = np.asarray(w, dtype=np.float64)
    patch_blocks = np.asarray(patch_blocks, dtype=np.float64)
    if w.ndim != 4:
        raise ShapeError(f"weights must be (r², p, q, k), got shape {w.shape}")
    s, p, q, k = w.shape
    if patch_blocks.ndim != 4 or patch_blocks.shape[1:] != (s, q, k):
        raise ShapeError(
            f"patch blocks must be (batch, {s}, {q}, {k}), "
            f"got {patch_blocks.shape}"
        )
    if cached_spectrum is None:
        wf = be.rfft(w)
    else:
        wf = cached_spectrum
        _check_spectrum_shape(wf, w.shape)
    pf = be.rfft(patch_blocks)
    if record:
        # Frequency-major memory behind the natural (batch, r², q, f)
        # view — one rearrangement instead of one per contraction (see
        # the FC record path above).
        pf = np.ascontiguousarray(
            pf.transpose(3, 1, 2, 0)
        ).transpose(3, 1, 2, 0)
    out = be.irfft(spectral_contract(wf, pf), n=k)
    if record:
        return out, SpectralTape(patch_blocks, pf, wf)
    return out


def block_circulant_backward(
    w: np.ndarray,
    x_blocks: np.ndarray,
    grad_blocks: np.ndarray,
    backend=None,
    *,
    cached_spectrum: np.ndarray | None = None,
    cached_input_spectrum: np.ndarray | None = None,
    cached_grad_spectrum: np.ndarray | None = None,
    compute_input_grad: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Algorithm 2: gradients of the block-circulant product.

    Parameters
    ----------
    w:
        Defining vectors ``(p, q, k)``.
    x_blocks:
        Forward input blocks ``(batch, q, k)``.
    grad_blocks:
        ``∂L/∂a`` blocks, shape ``(batch, p, k)``.
    cached_spectrum:
        Optional precomputed ``rfft(w)`` (see :func:`weight_spectrum`);
        skips the weight FFT exactly as in the forward pass.
    cached_input_spectrum:
        Optional precomputed ``rfft(x_blocks)`` — normally the
        ``input_spectrum`` of the :class:`SpectralTape` a recording
        forward returned. With both spectra supplied, this kernel's only
        FFT is the one over ``grad_blocks``.
    cached_grad_spectrum:
        Optional precomputed ``rfft(grad_blocks)``. The BPTT path of the
        recurrent layers transforms each timestep's output gradient once
        while walking the sequence backwards, then stacks those spectra
        t-major and calls this kernel *once* for the deferred
        weight-gradient contraction over all ``T·batch`` rows — with all
        three spectra supplied the kernel performs **zero** forward FFTs
        (only the inverse transforms of the results).
    compute_input_grad:
        When false, the ``∂L/∂x`` product (one GEMM + one inverse FFT) is
        skipped entirely and ``None`` is returned in its place — for the
        *first* trainable layer of a network, whose input gradient no one
        consumes.

    Returns
    -------
    ``(grad_w, grad_x_blocks)`` with shapes ``(p, q, k)`` and
    ``(batch, q, k)`` (``None`` when ``compute_input_grad`` is false).
    Both are exact gradients of
    :func:`block_circulant_forward` (verified against finite differences in
    the test suite), each costing O(pqk log k) like the forward pass.
    """
    be = get_backend(backend)
    w = np.asarray(w, dtype=np.float64)
    x_blocks = np.asarray(x_blocks, dtype=np.float64)
    grad_blocks = np.asarray(grad_blocks, dtype=np.float64)
    _check_block_shapes(w, x_blocks)
    p, q, k = w.shape
    if grad_blocks.shape[1:] != (p, k):
        raise ShapeError(
            f"grad blocks must be (batch, {p}, {k}), got {grad_blocks.shape}"
        )
    if grad_blocks.shape[0] != x_blocks.shape[0]:
        raise ShapeError(
            "grad batch "
            f"{grad_blocks.shape[0]} != input batch {x_blocks.shape[0]}"
        )
    if cached_spectrum is None:
        wf = be.rfft(w)
    else:
        wf = cached_spectrum
        _check_spectrum_shape(wf, w.shape)
    if cached_input_spectrum is None:
        xf = be.rfft(x_blocks)
    else:
        xf = cached_input_spectrum
        _check_spectrum_shape(xf, x_blocks.shape)
    if cached_grad_spectrum is None:
        gf = be.rfft(grad_blocks)
    else:
        gf = cached_grad_spectrum
        _check_spectrum_shape(gf, grad_blocks.shape)
    # The two einsums ("bpf,bqf->pqf" and "pqf,bpf->bqf") as per-frequency
    # BLAS products, mirroring the forward pass. The weight gradient uses
    # G ∘ conj(X) = conj(conj(G) ∘ X) so only the small grad spectrum and
    # the small result are conjugate-copied, never the batch-sized input
    # spectrum — whose frequency-major tape memory (see ``record=``) then
    # feeds the GEMM as a pure stride view.
    grad_wf = np.conj(np.matmul(
        np.conj(gf.transpose(2, 1, 0)), xf.transpose(2, 0, 1)
    )).transpose(1, 2, 0)
    grad_w = be.irfft(grad_wf, n=k)
    if not compute_input_grad:
        return grad_w, None
    grad_xf = np.matmul(
        gf.transpose(2, 0, 1), np.conj(wf).transpose(2, 0, 1)
    ).transpose(1, 2, 0)
    grad_x = be.irfft(grad_xf, n=k)
    return grad_w, grad_x


def block_circulant_conv_backward(
    w: np.ndarray,
    patch_blocks: np.ndarray,
    grad_blocks: np.ndarray,
    backend=None,
    *,
    cached_spectrum: np.ndarray | None = None,
    cached_patch_spectrum: np.ndarray | None = None,
    compute_patch_grad: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Gradients of :func:`block_circulant_conv_forward` (paper Eq. 8–9).

    Evaluates the two gradient contractions — the einsums
    ``"bif,bsjf->sijf"`` (weight gradient, a cross-correlation against the
    conjugated patch spectra) and ``"sijf,bif->bsjf"`` (patch gradient,
    against the conjugated weight spectra) — as frequency-major
    per-frequency BLAS GEMMs, the exact formulation
    :func:`spectral_contract` gives the forward pass: the spatial-offset
    axis folds into the contracted/output dimension of length ``r²·q``.

    Parameters
    ----------
    w:
        Defining vectors ``(r², p, q, k)``.
    patch_blocks:
        Forward patch blocks ``(batch·positions, r², q, k)``.
    grad_blocks:
        ``∂L/∂y`` output channel blocks, shape ``(batch·positions, p, k)``.
    cached_spectrum:
        Optional precomputed ``rfft(w)`` (see :func:`weight_spectrum`).
    cached_patch_spectrum:
        Optional precomputed ``rfft(patch_blocks)`` — normally the
        ``input_spectrum`` of the :class:`SpectralTape` a recording
        forward returned. With both spectra supplied, this kernel's only
        FFT is the one over ``grad_blocks``.
    compute_patch_grad:
        When false, the patch-gradient product — the largest GEMM and
        inverse FFT of the backward pass — is skipped and ``None``
        returned in its place, for a first-layer convolution whose input
        gradient no one consumes.

    Returns
    -------
    ``(grad_w, grad_patch_blocks)`` with shapes ``(r², p, q, k)`` and
    ``(batch·positions, r², q, k)`` (``None`` when ``compute_patch_grad``
    is false).
    """
    be = get_backend(backend)
    w = np.asarray(w, dtype=np.float64)
    patch_blocks = np.asarray(patch_blocks, dtype=np.float64)
    grad_blocks = np.asarray(grad_blocks, dtype=np.float64)
    if w.ndim != 4:
        raise ShapeError(f"weights must be (r², p, q, k), got shape {w.shape}")
    s, p, q, k = w.shape
    if patch_blocks.ndim != 4 or patch_blocks.shape[1:] != (s, q, k):
        raise ShapeError(
            f"patch blocks must be (batch, {s}, {q}, {k}), "
            f"got {patch_blocks.shape}"
        )
    if grad_blocks.ndim != 3 or grad_blocks.shape[1:] != (p, k):
        raise ShapeError(
            f"grad blocks must be (batch, {p}, {k}), got {grad_blocks.shape}"
        )
    if grad_blocks.shape[0] != patch_blocks.shape[0]:
        raise ShapeError(
            "grad batch "
            f"{grad_blocks.shape[0]} != patch batch {patch_blocks.shape[0]}"
        )
    if cached_spectrum is None:
        wf = be.rfft(w)
    else:
        wf = cached_spectrum
        _check_spectrum_shape(wf, w.shape)
    if cached_patch_spectrum is None:
        pf = be.rfft(patch_blocks)
    else:
        pf = cached_patch_spectrum
        _check_spectrum_shape(pf, patch_blocks.shape)
    gf = be.rfft(grad_blocks)
    batch, f = gf.shape[0], gf.shape[-1]
    # Weight gradient "bif,bsjf->sijf" as (f, p, batch) @ (f, batch, r²·q),
    # using G ∘ conj(P) = conj(conj(G) ∘ P) so only the small grad
    # spectrum and the small result are conjugate-copied, never the large
    # patch spectrum — whose frequency-major tape memory (``record=``)
    # makes the rhs below a pure stride view into the recorded spectra.
    grad_wf = np.conj(np.matmul(
        np.conj(gf.transpose(2, 1, 0)),
        pf.transpose(3, 0, 1, 2).reshape(f, batch, s * q),
    )).reshape(f, p, s, q).transpose(2, 1, 3, 0)
    grad_w = be.irfft(grad_wf, n=k)
    if not compute_patch_grad:
        return grad_w, None
    # Patch gradient "sijf,bif->bsjf": (f, batch, p) @ (f, p, r²·q) — the
    # right operand is the forward pass's lhs layout, conjugated (the
    # weight spectrum is small, so the direct conjugate copy is fine).
    grad_pf = np.matmul(
        gf.transpose(2, 0, 1),
        np.conj(wf.transpose(3, 1, 0, 2)).reshape(f, p, s * q),
    ).reshape(f, batch, s, q).transpose(1, 2, 3, 0)
    return grad_w, be.irfft(grad_pf, n=k)


def expand_to_dense(w: np.ndarray, m: int | None = None,
                    n: int | None = None) -> np.ndarray:
    """Materialise the dense matrix represented by defining vectors ``w``.

    ``w`` has shape ``(p, q, k)``; the result is the ``(p*k) × (q*k)``
    block matrix of circulant blocks, truncated to ``m × n`` when those are
    given (dropping the padded rows/columns). Intended for tests and small
    demos — this is exactly the O(n^2) object CirCNN avoids building.
    """
    w = np.asarray(w, dtype=np.float64)
    if w.ndim != 3:
        raise ShapeError(f"expected (p, q, k) defining vectors, got {w.shape}")
    p, q, k = w.shape
    i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
    # (p, q, k, k) grid of circulant blocks, then tile into a 2-D matrix.
    blocks = w[:, :, (i - j) % k]
    dense = blocks.transpose(0, 2, 1, 3).reshape(p * k, q * k)
    if m is not None or n is not None:
        dense = dense[: (m if m is not None else p * k),
                      : (n if n is not None else q * k)]
    return dense


def _check_spectrum_shape(wf: np.ndarray, w_shape: tuple[int, ...]) -> None:
    # Works for both layer types: (p, q, k) FC grids and (r², p, q, k)
    # CONV grids — rfft replaces the trailing k with k//2 + 1 bins.
    expected = (*w_shape[:-1], w_shape[-1] // 2 + 1)
    if wf.shape != expected:
        raise ShapeError(
            f"cached spectrum must have shape {expected} for weights "
            f"{w_shape}, got {wf.shape}"
        )


def _check_block_shapes(w: np.ndarray, x_blocks: np.ndarray) -> None:
    if w.ndim != 3:
        raise ShapeError(f"weights must be (p, q, k), got shape {w.shape}")
    if x_blocks.ndim != 3:
        raise ShapeError(
            f"inputs must be (batch, q, k), got shape {x_blocks.shape}"
        )
    p, q, k = w.shape
    if x_blocks.shape[1:] != (q, k):
        raise ShapeError(
            f"input blocks must be (batch, {q}, {k}), got {x_blocks.shape}"
        )
