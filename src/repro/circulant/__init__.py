"""Block-circulant matrices — the paper's core contribution (§3, Figs 1/4/5).

- :mod:`repro.circulant.circulant` — a single ``k × k`` circulant matrix
  defined by one length-``k`` vector, with FFT-based products.
- :mod:`repro.circulant.block` — an ``m × n`` matrix partitioned into a
  ``p × q`` grid of circulant blocks (with zero padding when ``k`` does not
  divide the shape), storage accounting, and dense round-trips.
- :mod:`repro.circulant.ops` — the batched FFT-domain kernels behind
  Algorithms 1 and 2: forward ``a_i = Σ_j IFFT(FFT(w_ij) ∘ FFT(x_j))`` and
  the two backward products, vectorised over a batch. FC
  (:func:`block_circulant_forward`) and CONV
  (:func:`block_circulant_conv_forward` /
  :func:`block_circulant_conv_backward`) share one per-frequency BLAS
  contraction, :func:`spectral_contract`, and both take a
  ``cached_spectrum=`` produced by :func:`weight_spectrum`. A forward
  called with ``record=True`` returns a :class:`SpectralTape` whose
  spectra the backward kernels reuse, so a train step runs one FFT per
  distinct tensor.
- :mod:`repro.circulant.projection` — least-squares projection of a dense
  matrix onto the (block-)circulant set, used to initialise compressed
  layers from dense ones and by the baselines.
- :mod:`repro.circulant.spectral_cache` — :class:`SpectralWeightCache`,
  the serving-path amortisation of the weight FFT: precomputed,
  frequency-major weight spectra invalidated by
  :class:`~repro.nn.module.Parameter` version, shared across layers by
  ``Sequential.compile_inference()``.
"""

from repro.circulant.circulant import CirculantMatrix
from repro.circulant.block import BlockCirculantMatrix
from repro.circulant.ops import (
    SpectralTape,
    block_circulant_apply,
    block_circulant_backward,
    block_circulant_conv_backward,
    block_circulant_conv_forward,
    block_circulant_forward,
    block_dims,
    expand_to_dense,
    partition_vector,
    spectral_contract,
    unpartition_vector,
    weight_spectrum,
)
from repro.circulant.spectral_cache import SpectralWeightCache
from repro.circulant.projection import (
    nearest_block_circulant,
    nearest_circulant_vector,
)
from repro.circulant.toeplitz import ToeplitzMatrix

__all__ = [
    "CirculantMatrix",
    "BlockCirculantMatrix",
    "block_circulant_apply",
    "block_circulant_forward",
    "block_circulant_backward",
    "block_circulant_conv_forward",
    "block_circulant_conv_backward",
    "SpectralTape",
    "spectral_contract",
    "block_dims",
    "expand_to_dense",
    "partition_vector",
    "unpartition_vector",
    "nearest_block_circulant",
    "nearest_circulant_vector",
    "SpectralWeightCache",
    "ToeplitzMatrix",
    "weight_spectrum",
]
