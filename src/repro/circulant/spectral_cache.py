"""Cached weight spectra — the amortisation at the heart of serving CirCNN.

A block-circulant layer multiplies by the *same* weights on every forward
call, yet Algorithm 1 as written recomputes ``FFT(w_ij)`` each time. For
inference-sized batches the weight FFT (``p·q`` transforms) dominates the
activation FFT (``batch·q`` transforms), so caching the weight spectra is
where the serving-path speedup lives — the same observation Li et al.
(FPGA 2018) exploit by storing RNN weights in the frequency domain.

:class:`SpectralWeightCache` maps a :class:`~repro.nn.module.Parameter`
(plus the FFT backend used to transform it) to the half-spectrum array
``rfft(w)`` consumed by the ``cached_spectrum=`` fast path of
:mod:`repro.circulant.ops`.

When spectra are recomputed
---------------------------
An entry is recomputed — lazily, on the next lookup — whenever the
parameter's ``version`` counter no longer matches the version the spectrum
was computed from. ``Parameter.value`` bumps that counter on every
assignment, which covers optimiser steps (``param.value -= lr * g``),
deserialisation, quantisation and pruning. Two cases are *not* detected:

- element-wise writes that never reassign the attribute
  (``param.value[0] = x``) — call ``param.mark_updated()`` after those;
- mutation of the array through an alias obtained before the lookup.

Entries are keyed per backend name, so a network evaluated on both the
``numpy`` and ``radix2`` backends holds one spectrum per backend and the
two never alias. Cached arrays are returned read-only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circulant.ops import weight_spectrum
from repro.fftcore.backend import get_backend


@dataclass
class _CacheEntry:
    spectrum: np.ndarray
    version: int


class SpectralWeightCache:
    """Precomputed ``rfft`` of defining vectors, invalidated by version.

    One cache can serve many layers (``Sequential.compile_inference``
    shares a single instance across the whole network); entries are keyed
    by ``(id(parameter), backend_name)`` and a strong reference to each
    parameter is kept so ids stay unique for the cache's lifetime.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[int, str], _CacheEntry] = {}
        self._owners: dict[int, object] = {}
        self.hits = 0
        self.misses = 0

    def spectrum(self, param, backend=None) -> np.ndarray:
        """The cached half-spectrum of ``param.value``; recompute if stale.

        ``param`` is a :class:`~repro.nn.module.Parameter` holding
        defining vectors — ``(p, q, k)`` for an FC layer or
        ``(r², p, q, k)`` for a CONV layer. The returned array is
        read-only, replaces the last axis with ``k//2 + 1`` complex bins,
        and is laid out frequency-major in memory so the per-frequency
        GEMM of :func:`repro.circulant.ops.spectral_contract` consumes it
        with zero copies.
        """
        be = get_backend(backend)
        key = (id(param), be.name)
        entry = self._entries.get(key)
        if entry is not None and entry.version == param.version:
            self.hits += 1
            return entry.spectrum
        self.misses += 1
        spectrum = weight_spectrum(param.value, be)
        if spectrum.ndim == 3:
            # Store frequency-major memory behind the natural (p, q, f)
            # view: the fast path's transpose(2, 0, 1) then yields a
            # C-contiguous array, so the per-frequency BLAS product in
            # repro.circulant.ops runs with zero copies.
            spectrum = np.ascontiguousarray(
                spectrum.transpose(2, 0, 1)
            ).transpose(1, 2, 0)
        elif spectrum.ndim == 4:
            # CONV spectra (r², p, q, f): store (f, p, r², q)-contiguous
            # memory behind the natural view, so spectral_contract's
            # transpose(3, 1, 0, 2).reshape(f, p, r²·q) is a zero-copy
            # view straight into the per-frequency GEMM.
            spectrum = np.ascontiguousarray(
                spectrum.transpose(3, 1, 0, 2)
            ).transpose(2, 1, 3, 0)
        spectrum.setflags(write=False)
        self._entries[key] = _CacheEntry(spectrum, param.version)
        self._owners[id(param)] = param
        return spectrum

    def invalidate(self, param=None) -> None:
        """Drop cached spectra for ``param``, or every entry when ``None``."""
        if param is None:
            self._entries.clear()
            self._owners.clear()
            return
        target = id(param)
        for key in [k for k in self._entries if k[0] == target]:
            del self._entries[key]
        self._owners.pop(target, None)

    def stats(self) -> dict[str, int]:
        """Hit/miss/entry counters (for tests and serving dashboards)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SpectralWeightCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
