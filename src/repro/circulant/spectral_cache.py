"""Cached weight spectra — the amortisation at the heart of serving CirCNN.

A block-circulant layer multiplies by the *same* weights on every forward
call, yet Algorithm 1 as written recomputes ``FFT(w_ij)`` each time. For
inference-sized batches the weight FFT (``p·q`` transforms) dominates the
activation FFT (``batch·q`` transforms), so caching the weight spectra is
where the serving-path speedup lives — the same observation Li et al.
(FPGA 2018) exploit by storing RNN weights in the frequency domain.

:class:`SpectralWeightCache` maps a :class:`~repro.nn.module.Parameter`
(plus the FFT backend used to transform it) to the half-spectrum array
``rfft(w)`` consumed by the ``cached_spectrum=`` fast path of
:mod:`repro.circulant.ops`. The same version check serves *training*
(``attach_spectral_cache`` on the block-circulant layers — see
``docs/spectral_training.md``): unchanged weights reuse their spectrum
across multi-forward gradient accumulation and eval-within-train
passes, and every optimiser assignment invalidates as usual.

When spectra are recomputed
---------------------------
An entry is recomputed — lazily, on the next lookup — whenever the
parameter's ``version`` counter no longer matches the version the spectrum
was computed from. ``Parameter.value`` bumps that counter on every
assignment, which covers optimiser steps (``param.value = value - lr * g``),
deserialisation, quantisation and pruning. Two cases are *not* detected:

- element-wise writes that never reassign the attribute
  (``param.value[0] = x``) — ``compile_inference()`` freezes the arrays so
  these raise immediately; call ``param.mark_updated()`` to thaw and bump;
- mutation of the array through an alias obtained before the lookup.

Entries are keyed per backend name, so a network evaluated on both the
``numpy`` and ``radix2`` backends holds one spectrum per backend and the
two never alias. Cached arrays are returned read-only.

Lifetime and concurrency
------------------------
Parameters are held through *weak* references: discarding a network (or
building a fresh quantised view and dropping the old one) lets the old
parameters — and their cached spectra, purged by the weakref callback — be
collected even while the shared cache lives on. ``release(param)`` /
``clear()`` drop entries eagerly. All cache state is guarded by a lock, so
many serving threads can look spectra up concurrently; a simultaneous miss
at worst recomputes the same spectrum twice (last write wins).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

from repro.circulant.ops import weight_spectrum
from repro.errors import ShapeError
from repro.fftcore.backend import get_backend


@dataclass
class _CacheEntry:
    spectrum: np.ndarray
    version: int


def spectrum_layout(spectrum: np.ndarray) -> tuple[str, np.ndarray]:
    """``(layout, frequency-major buffer)`` for a natural-view spectrum.

    The cache stores FC spectra as ``(p, q, f)`` views over
    ``(f, p, q)``-contiguous memory and CONV spectra as ``(r², p, q, f)``
    views over ``(f, p, r², q)``-contiguous memory, so these transposes
    reproduce the contiguous buffer without copying. The buffer is what
    serialising consumers (the artifact store's chunk files, the
    multi-process server's shared-memory images) persist byte-for-byte;
    :func:`natural_view` inverts it on the way back in.
    """
    if spectrum.ndim == 3:
        return "fc", spectrum.transpose(2, 0, 1)
    if spectrum.ndim == 4:
        return "conv", spectrum.transpose(3, 1, 0, 2)
    raise ShapeError(
        f"unsupported spectrum rank {spectrum.ndim}; expected the FC (3-d) "
        "or CONV (4-d) frequency-major layout"
    )


def natural_view(buffer: np.ndarray, layout: str) -> np.ndarray:
    """Invert :func:`spectrum_layout`: stored buffer → natural view."""
    if layout == "fc":
        return buffer.transpose(1, 2, 0)
    if layout == "conv":
        return buffer.transpose(2, 1, 3, 0)
    raise ShapeError(f"unknown spectrum layout {layout!r}")


class SpectralWeightCache:
    """Precomputed ``rfft`` of defining vectors, invalidated by version.

    One cache can serve many layers (``Sequential.compile_inference``
    shares a single instance across the whole network); entries are keyed
    by ``(id(parameter), backend_name)``. Only a weak reference to each
    parameter is kept: a dead weakref callback purges that parameter's
    entries before its id can be reused, so the cache never pins old
    weight generations in memory.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[int, str], _CacheEntry] = {}
        self._owners: dict[int, weakref.ref] = {}
        # RLock: a gc-triggered owner callback may fire on the thread that
        # already holds the lock.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def spectrum(self, param, backend=None) -> np.ndarray:
        """The cached half-spectrum of ``param.value``; recompute if stale.

        ``param`` is a :class:`~repro.nn.module.Parameter` holding
        defining vectors — ``(p, q, k)`` for an FC layer or
        ``(r², p, q, k)`` for a CONV layer. The returned array is
        read-only, replaces the last axis with ``k//2 + 1`` complex bins,
        and is laid out frequency-major in memory so the per-frequency
        GEMM of :func:`repro.circulant.ops.spectral_contract` consumes it
        with zero copies.
        """
        be = get_backend(backend)
        pid = id(param)
        key = (pid, be.name)
        with self._lock:
            entry = self._entries.get(key)
            owner = self._owners.get(pid)
            if (
                entry is not None
                and owner is not None
                and owner() is param
                and entry.version == param.version
            ):
                self.hits += 1
                return entry.spectrum
        # Read the version BEFORE the value: if the parameter is reassigned
        # between the two reads we store the old spectrum under the old
        # version, which the next lookup correctly treats as stale (a
        # harmless extra recompute, never silent staleness).
        version = param.version
        spectrum = weight_spectrum(param.value, be)
        if spectrum.ndim == 3:
            # Store frequency-major memory behind the natural (p, q, f)
            # view: the fast path's transpose(2, 0, 1) then yields a
            # C-contiguous array, so the per-frequency BLAS product in
            # repro.circulant.ops runs with zero copies.
            spectrum = np.ascontiguousarray(
                spectrum.transpose(2, 0, 1)
            ).transpose(1, 2, 0)
        elif spectrum.ndim == 4:
            # CONV spectra (r², p, q, f): store (f, p, r², q)-contiguous
            # memory behind the natural view, so spectral_contract's
            # transpose(3, 1, 0, 2).reshape(f, p, r²·q) is a zero-copy
            # view straight into the per-frequency GEMM.
            spectrum = np.ascontiguousarray(
                spectrum.transpose(3, 1, 0, 2)
            ).transpose(2, 1, 3, 0)
        spectrum.setflags(write=False)
        with self._lock:
            self.misses += 1
            self._entries[key] = _CacheEntry(spectrum, version)
            owner = self._owners.get(pid)
            if owner is None or owner() is not param:
                self._owners[pid] = weakref.ref(param, self._make_purge(pid))
        return spectrum

    def seed(self, param, spectrum: np.ndarray, backend=None) -> np.ndarray:
        """Install a precomputed spectrum for ``param`` without any FFT.

        The cold-start entry point of the model-artifact store
        (:mod:`repro.store`): an artifact carries the frequency-major
        half-spectra a previous ``compile_inference()`` computed, and
        seeding them here reconstructs a warm cache with **zero**
        transform calls — the loaded network serves its first batch
        without recomputing a single FFT.

        ``spectrum`` must have the shape :func:`~repro.circulant.ops.weight_spectrum`
        would produce for ``param.value`` — same leading axes, last axis
        ``k//2 + 1`` complex bins. The entry is stored against the
        parameter's *current* version, so a later ``.value`` assignment
        invalidates it exactly like a computed entry; the caller is
        responsible for the seeded values actually matching the parameter
        (the store guarantees this via its content hash). The array is
        adopted as-is — no copy, no re-layout — and returned read-only;
        callers wanting the zero-copy GEMM path should hand in
        frequency-major memory (the layout ``spectrum`` lookups produce
        and the store round-trips).
        """
        be = get_backend(backend)
        value = param.value
        expected = value.shape[:-1] + (value.shape[-1] // 2 + 1,)
        spectrum = np.asarray(spectrum)
        if spectrum.shape != expected:
            raise ShapeError(
                f"seeded spectrum has shape {spectrum.shape}, expected "
                f"{expected} for a parameter of shape {value.shape}"
            )
        if not np.iscomplexobj(spectrum):
            raise ShapeError(
                f"seeded spectrum must be complex, got dtype {spectrum.dtype}"
            )
        # A view keeps the caller's array flags intact while guaranteeing
        # the cached alias can never be written through.
        spectrum = spectrum.view()
        spectrum.setflags(write=False)
        pid = id(param)
        with self._lock:
            self._entries[(pid, be.name)] = _CacheEntry(spectrum, param.version)
            owner = self._owners.get(pid)
            if owner is None or owner() is not param:
                self._owners[pid] = weakref.ref(param, self._make_purge(pid))
        return spectrum

    def seed_buffer(
        self, param, buffer: np.ndarray, layout: str, backend=None,
    ) -> np.ndarray:
        """Seed from a serialised **frequency-major buffer** (zero FFTs).

        The buffer-side twin of :meth:`seed`, for consumers that persist
        the cache's contiguous frequency-major memory rather than the
        natural logical view — the artifact store's chunk files and the
        multi-process server's shared-memory images both do. ``layout``
        is the tag :func:`spectrum_layout` produced (``"fc"``/``"conv"``);
        the natural view is restored by the inverse transpose, so the
        seeded entry aliases ``buffer`` directly — a memory map or a
        shared-memory segment stays zero-copy all the way into the
        per-frequency GEMM.
        """
        return self.seed(
            param, natural_view(np.asarray(buffer), layout), backend
        )

    def __deepcopy__(self, memo) -> "SpectralWeightCache":
        # Locks and weakrefs do not survive deepcopy, and cloned entries
        # would be keyed by the *original* parameters' ids — dead weight a
        # copied network could never hit. A deep-copied cache therefore
        # starts empty; callers recompile to warm it (quantized_view
        # detaches the copy entirely and starts fresh).
        clone = SpectralWeightCache()
        memo[id(self)] = clone
        return clone

    def _make_purge(self, pid: int):
        # The callback must not keep the cache alive: hold it weakly too.
        cache_ref = weakref.ref(self)

        def _purge(_dead_ref, pid=pid, cache_ref=cache_ref):
            cache = cache_ref()
            if cache is not None:
                cache._drop_id(pid)

        return _purge

    def _drop_id(self, pid: int) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == pid]:
                del self._entries[key]
            self._owners.pop(pid, None)

    def release(self, param) -> None:
        """Eagerly drop every cached spectrum of ``param``.

        The weakref callback does this automatically when the parameter is
        garbage-collected; ``release`` is for callers that keep the
        parameter alive but know its spectra are no longer wanted (e.g. a
        layer leaving a shared serving cache).
        """
        self._drop_id(id(param))

    def clear(self) -> None:
        """Drop every entry and owner reference (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._owners.clear()

    def invalidate(self, param=None) -> None:
        """Drop cached spectra for ``param``, or every entry when ``None``."""
        if param is None:
            self.clear()
        else:
            self.release(param)

    def stats(self) -> dict[str, int]:
        """Hit/miss/entry counters (for tests and serving dashboards)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SpectralWeightCache(entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
