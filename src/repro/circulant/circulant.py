"""A single circulant matrix defined by one length-``k`` vector.

Convention
----------
We store the **first column** ``c`` and define ``W[i, j] = c[(i - j) mod k]``,
so the product is the circular convolution ``W @ x = c ⊛ x`` and the
circulant-convolution theorem used throughout the paper,

    W @ x = IFFT(FFT(c) ∘ FFT(x)),

holds exactly. The paper's text stores the *first row*; the two conventions
differ only by an index reversal of the stored vector (``first_row[i] ==
first_column[(-i) mod k]``), which training absorbs —
:meth:`CirculantMatrix.from_first_row` converts explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.fftcore.backend import get_backend


class CirculantMatrix:
    """A ``k × k`` circulant matrix stored as its defining first column."""

    def __init__(self, defining_vector: np.ndarray):
        vec = np.asarray(defining_vector, dtype=np.float64)
        if vec.ndim != 1 or vec.size == 0:
            raise ShapeError(
                f"defining vector must be 1-D and non-empty, got shape {vec.shape}"
            )
        self.defining_vector = vec

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_first_row(cls, first_row: np.ndarray) -> "CirculantMatrix":
        """Build from the paper's first-row convention.

        The first row ``r`` of a circulant matrix whose first column is
        ``c`` satisfies ``r[j] = c[(-j) mod k]``.
        """
        row = np.asarray(first_row, dtype=np.float64)
        if row.ndim != 1 or row.size == 0:
            raise ShapeError(
                f"first row must be 1-D and non-empty, got shape {row.shape}"
            )
        return cls(np.roll(row[::-1], 1))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CirculantMatrix":
        """Least-squares projection of a square dense matrix (see
        :func:`repro.circulant.projection.nearest_circulant_vector`)."""
        from repro.circulant.projection import nearest_circulant_vector

        return cls(nearest_circulant_vector(dense))

    # -- views ------------------------------------------------------------
    @property
    def size(self) -> int:
        """Matrix dimension ``k``."""
        return self.defining_vector.size

    @property
    def first_row(self) -> np.ndarray:
        """The first row under the paper's convention."""
        c = self.defining_vector
        return np.roll(c[::-1], 1)

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``k × k`` matrix (O(k^2) memory)."""
        k = self.size
        i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        return self.defining_vector[(i - j) % k]

    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of a circulant matrix: the DFT of its first column."""
        return np.fft.fft(self.defining_vector)

    # -- algebra ----------------------------------------------------------
    def matvec(self, x: np.ndarray, backend=None) -> np.ndarray:
        """``W @ x`` via the circulant-convolution theorem.

        ``x`` may carry leading batch axes; the product is applied along
        the last axis. For power-of-two ``k`` the ``"radix2"`` backend runs
        the from-scratch kernel; the numpy backend handles any ``k``.
        """
        be = get_backend(backend)
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.size:
            raise ShapeError(
                f"matvec expects last axis {self.size}, got {x.shape[-1]}"
            )
        cf = be.rfft(self.defining_vector)
        xf = be.rfft(x)
        return be.irfft(cf * xf, n=self.size)

    def rmatvec(self, y: np.ndarray, backend=None) -> np.ndarray:
        """``W.T @ y`` — circular cross-correlation with the first column."""
        be = get_backend(backend)
        y = np.asarray(y, dtype=np.float64)
        if y.shape[-1] != self.size:
            raise ShapeError(
                f"rmatvec expects last axis {self.size}, got {y.shape[-1]}"
            )
        cf = be.rfft(self.defining_vector)
        yf = be.rfft(y)
        return be.irfft(np.conj(cf) * yf, n=self.size)

    def __matmul__(self, other):
        """Product with a vector/batch or another circulant matrix.

        Circulant matrices are closed under multiplication (they share the
        Fourier eigenbasis), so ``CirculantMatrix @ CirculantMatrix`` is
        again circulant with element-wise multiplied spectra.
        """
        if isinstance(other, CirculantMatrix):
            if other.size != self.size:
                raise ShapeError(
                    f"size mismatch: {self.size} vs {other.size}"
                )
            prod = np.fft.irfft(
                np.fft.rfft(self.defining_vector)
                * np.fft.rfft(other.defining_vector),
                n=self.size,
            )
            return CirculantMatrix(prod)
        return self.matvec(other)

    @property
    def num_parameters(self) -> int:
        """Stored parameters: ``k`` instead of the dense ``k^2``."""
        return self.size

    def __repr__(self) -> str:
        return f"CirculantMatrix(k={self.size})"
