"""Least-squares projection of dense matrices onto (block-)circulant sets.

CirCNN trains block-circulant weights directly (no conversion step), but
projection is still needed in three places: initialising a compressed layer
from a pre-trained dense one, the single-circulant baseline of Cheng et
al. [54], and tests of the approximation behaviour (§3.3). The projection
minimising the Frobenius distance to a circulant matrix simply averages
each circulant diagonal:

    c[d] = mean{ W[i, j] : (i - j) mod k == d }.

For partially filled blocks (padding region of a non-divisible layer) the
mean runs over the *valid* entries only, which remains the least-squares
optimum when padded entries are unconstrained.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.validation import ensure_positive


def nearest_circulant_vector(dense: np.ndarray,
                             valid_rows: int | None = None,
                             valid_cols: int | None = None) -> np.ndarray:
    """First-column vector of the circulant matrix closest to ``dense``.

    Parameters
    ----------
    dense:
        Square ``k × k`` array (possibly containing padding garbage outside
        the valid region).
    valid_rows / valid_cols:
        Size of the meaningful top-left region; defaults to the full block.

    Returns
    -------
    Length-``k`` defining vector (first column).
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ShapeError(f"expected a square matrix, got shape {dense.shape}")
    k = dense.shape[0]
    rows = k if valid_rows is None else valid_rows
    cols = k if valid_cols is None else valid_cols
    if not (0 < rows <= k and 0 < cols <= k):
        raise ShapeError(
            f"valid region ({rows}, {cols}) out of range for block size {k}"
        )
    i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
    diag = (i - j) % k
    valid = (i < rows) & (j < cols)
    sums = np.bincount(diag[valid], weights=dense[valid], minlength=k)
    counts = np.bincount(diag[valid], minlength=k)
    vector = np.zeros(k, dtype=np.float64)
    nonzero = counts > 0
    vector[nonzero] = sums[nonzero] / counts[nonzero]
    return vector


def nearest_block_circulant(dense: np.ndarray, k: int) -> np.ndarray:
    """Project an ``m × n`` dense matrix onto the block-circulant set.

    Returns the defining-vector array ``(p, q, k)`` whose expansion (see
    :func:`repro.circulant.ops.expand_to_dense`) is the closest
    block-circulant matrix to ``dense`` in Frobenius norm, handling
    partially filled edge blocks.
    """
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {dense.shape}")
    ensure_positive(k, "block size k")
    m, n = dense.shape
    p, q = -(-m // k), -(-n // k)
    w = np.zeros((p, q, k), dtype=np.float64)
    for bi in range(p):
        for bj in range(q):
            r0, c0 = bi * k, bj * k
            rows = min(k, m - r0)
            cols = min(k, n - c0)
            block = np.zeros((k, k), dtype=np.float64)
            block[:rows, :cols] = dense[r0 : r0 + rows, c0 : c0 + cols]
            w[bi, bj] = nearest_circulant_vector(block, rows, cols)
    return w
