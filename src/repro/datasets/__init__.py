"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on MNIST, CIFAR-10, SVHN, STL-10 and ImageNet. No
datasets can be downloaded in this environment, so
:mod:`repro.datasets.synthetic` generates class-clustered images with the
*same tensor shapes and class counts*, which exercise the identical
training/inference code path (see DESIGN.md §2 for why this preserves the
claims being reproduced).
"""

from repro.datasets.synthetic import (
    DatasetSpec,
    SyntheticImageDataset,
    cifar10_like,
    dataset_spec,
    imagenet_spec,
    make_classification_images,
    mnist_like,
    stl10_like,
    svhn_like,
)

__all__ = [
    "DatasetSpec",
    "SyntheticImageDataset",
    "make_classification_images",
    "mnist_like",
    "cifar10_like",
    "svhn_like",
    "stl10_like",
    "imagenet_spec",
    "dataset_spec",
]
