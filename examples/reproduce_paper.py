"""Regenerate every paper artefact and print paper-vs-measured tables.

Runs the whole experiment registry — Figs 7a/7b/7c, 13, 14, 15 and the
§3.4 / §4.3 / §5.3 in-text results — and reports which acceptance bands
hold. This is the one-command version of EXPERIMENTS.md.

Run: ``python examples/reproduce_paper.py [--fast]``
(``--fast`` skips the two training-based experiments, fig7b and
training_speedup, which take a few minutes.)
"""

from __future__ import annotations

import sys

from repro.experiments import available_experiments, run_experiment

SLOW_EXPERIMENTS = {"fig7b", "training_speedup"}


def main() -> int:
    fast = "--fast" in sys.argv
    failures: list[str] = []
    for experiment_id in available_experiments():
        if fast and experiment_id in SLOW_EXPERIMENTS:
            print(f"== {experiment_id}: skipped (--fast) ==\n")
            continue
        table = run_experiment(experiment_id)
        print(table.render())
        if table.all_bands_hold:
            print("   -> all paper bands hold\n")
        else:
            failed = ", ".join(row.label for row in table.failures())
            print(f"   -> BAND FAILURES: {failed}\n")
            failures.append(experiment_id)
    if failures:
        print(f"FAILED experiments: {failures}")
        return 1
    print("All reproduced artefacts are inside their paper bands.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
