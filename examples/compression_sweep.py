"""Compression sweep: block size vs storage vs accuracy vs baselines.

The scenario from the paper's introduction: you have a model whose FC
layers dominate storage and you want it on-chip. This example sweeps the
block size on a synthetic MNIST-like task and compares against the other
compression families the paper discusses — magnitude pruning (Han et al.),
low-rank (SVD) factorisation, and the single-circulant baseline of Cheng
et al. [54].

Run: ``python examples/compression_sweep.py``
"""

from __future__ import annotations


from repro.compress import (
    LowRankDense,
    MagnitudePruner,
    SingleCirculantDense,
)
from repro.datasets import dataset_spec, make_classification_images
from repro.nn import (
    Adam,
    BlockCirculantDense,
    Dense,
    ReLU,
    Sequential,
    SoftmaxCrossEntropyLoss,
    Trainer,
)

IN_FEATURES = 784
HIDDEN = 128
CLASSES = 10
EPOCHS = 8


def _train(net: Sequential, dataset, epochs: int = EPOCHS,
           pruner: MagnitudePruner | None = None) -> float:
    flat_train = dataset.x_train.reshape(len(dataset.x_train), -1)
    flat_test = dataset.x_test.reshape(len(dataset.x_test), -1)
    trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=0)
    if pruner is None:
        trainer.fit(flat_train, dataset.y_train, epochs=epochs, batch_size=64)
    else:
        # prune-then-finetune: the extra training stage §2.2 criticises.
        trainer.fit(flat_train, dataset.y_train, epochs=epochs // 2,
                    batch_size=64)
        pruner.prune()
        loss = SoftmaxCrossEntropyLoss()
        optimizer = Adam(net.parameters(), lr=1e-3)
        for _ in range(epochs // 2):
            for start in range(0, len(flat_train), 64):
                batch = slice(start, start + 64)
                loss.forward(net(flat_train[batch]), dataset.y_train[batch])
                optimizer.zero_grad()
                net.backward(loss.backward())
                optimizer.step()
                pruner.apply_masks()
    return trainer.evaluate(flat_test, dataset.y_test)


def main() -> None:
    dataset = make_classification_images(
        dataset_spec("mnist"), train_size=768, test_size=384, noise=2.0,
        seed=0,
    )
    print(f"{'scheme':<28} {'weight params':>13} {'accuracy':>9}")
    print("-" * 54)

    dense = Sequential(
        Dense(IN_FEATURES, HIDDEN, seed=1), ReLU(),
        Dense(HIDDEN, CLASSES, seed=2),
    )
    accuracy = _train(dense, dataset)
    dense_params = dense.layers[0].weight.size
    print(f"{'dense baseline':<28} {dense_params:>13,} {accuracy:>9.3f}")

    for block in (4, 8, 16, 32, 64):
        hidden = BlockCirculantDense(IN_FEATURES, HIDDEN, block, seed=1)
        net = Sequential(hidden, ReLU(), Dense(HIDDEN, CLASSES, seed=2))
        accuracy = _train(net, dataset)
        print(f"{f'block-circulant k={block}':<28} "
              f"{hidden.weight.size:>13,} {accuracy:>9.3f}")

    rank = 16  # parameter budget comparable to k=8
    hidden = LowRankDense(IN_FEATURES, HIDDEN, rank, seed=1)
    net = Sequential(hidden, ReLU(), Dense(HIDDEN, CLASSES, seed=2))
    accuracy = _train(net, dataset)
    params = hidden.u.size + hidden.v.size
    print(f"{f'low-rank (SVD) r={rank}':<28} {params:>13,} {accuracy:>9.3f}")

    hidden = SingleCirculantDense(IN_FEATURES, HIDDEN, seed=1)
    net = Sequential(hidden, ReLU(), Dense(HIDDEN, CLASSES, seed=2))
    accuracy = _train(net, dataset)
    print(f"{'single circulant [54]':<28} "
          f"{hidden.weight.size:>13,} {accuracy:>9.3f}")

    pruned = Sequential(
        Dense(IN_FEATURES, HIDDEN, seed=1), ReLU(),
        Dense(HIDDEN, CLASSES, seed=2),
    )
    pruner = MagnitudePruner(pruned, sparsity=1 - 1 / 8)
    accuracy = _train(pruned, dataset, pruner=pruner)
    storage = pruner.storage(weight_bits=16)
    print(f"{'pruned (1/8 kept) + index':<28} "
          f"{storage.weight_params:>13,} {accuracy:>9.3f}"
          f"   (+{storage.index_bits_total // 8:,} B of indices)")

    print()
    print("Notes: block-circulant trains in one pass with regular storage;")
    print("pruning needs the extra prune+finetune stage and per-weight")
    print("indices; the single circulant offers no block-size knob.")


if __name__ == "__main__":
    main()
