"""Design-space exploration of the CirCNN engine (paper §4.3, Algorithm 3).

The hardware-architect scenario: given a workload (AlexNet, compressed)
and a platform (Cyclone V), choose the basic computing block's
parallelisation degree ``p`` and depth ``d``. This example:

1. sweeps the (p, d) grid and prints the Perf / Power / efficiency
   surface produced by the full mapper;
2. reproduces the paper's §4.3 worked example (block size 128);
3. runs Algorithm 3 (ternary search on p, then d) and reports the chosen
   design point.

Run: ``python examples/design_space.py``
"""

from __future__ import annotations

from repro.arch import PerfPowerModel, fpga_cyclone_v, optimize_design
from repro.experiments.sec43 import evaluate_design, run_algorithm3
from repro.models import alexnet_spec, default_alexnet_full_plan


def sweep_pd_surface() -> None:
    """Perf/Power surface of the AlexNet workload on the FPGA mapper."""
    print("=" * 70)
    print("1. (p, d) surface for compressed AlexNet on Cyclone V")
    model = PerfPowerModel(
        fpga_cyclone_v(), alexnet_spec(), default_alexnet_full_plan()
    )
    print(f"{'p':>5} {'d':>3} {'GOPS':>9} {'power W':>9} {'GOPS/W':>9}")
    for p in (8, 16, 32, 64, 128):
        for d in (1, 2, 3):
            point = model.evaluate(p, d)
            print(
                f"{p:>5} {d:>3} {point.performance_gops:>9.1f} "
                f"{point.power_w:>9.3f} "
                f"{point.efficiency_gops_per_watt:>9.1f}"
            )


def paper_worked_example() -> None:
    """The §4.3 numbers: block 128, p 16->32 and d 1->2."""
    print("=" * 70)
    print("2. The paper's worked example (block size 128)")
    p16 = evaluate_design(16, 1)
    p32 = evaluate_design(32, 1)
    d2 = evaluate_design(32, 2)
    perf_p = p32.relative_performance / p16.relative_performance - 1
    power_p = p32.power_w / p16.power_w - 1
    perf_d = d2.relative_performance / p32.relative_performance - 1
    power_d = d2.power_w / p32.power_w - 1
    print(f"   p 16->32 (d=1): perf {perf_p:+.1%} (paper +53.8%), "
          f"power {power_p:+.1%} (paper <+10%)")
    print(f"   d 1->2  (p=32): perf {perf_d:+.1%} (paper +62.2%), "
          f"power {power_d:+.1%} (paper +7.8%)")


def run_optimizer() -> None:
    """Algorithm 3 on both the worked example and the full workload."""
    print("=" * 70)
    print("3. Algorithm 3 (ternary search p, then d)")
    example = run_algorithm3()
    print(f"   worked example -> p={example.parallelism}, d={example.depth} "
          f"(relative perf {example.relative_performance:.2f}x, "
          f"power {example.power_w:.3f} W)")
    model = PerfPowerModel(
        fpga_cyclone_v(), alexnet_spec(), default_alexnet_full_plan()
    )
    chosen = optimize_design(model, p_max=128)
    print(f"   AlexNet workload -> p={chosen.parallelism}, d={chosen.depth} "
          f"({chosen.performance_gops:.0f} GOPS at {chosen.power_w:.2f} W, "
          f"M = {chosen.objective:.1f} GOPS/W)")


def main() -> None:
    sweep_pd_surface()
    paper_worked_example()
    run_optimizer()


if __name__ == "__main__":
    main()
