"""Train -> quantise -> persist -> cold-start-serve, end to end.

The full lifecycle of a model on this stack, as a runnable walkthrough:

1. train a block-circulant classifier on synthetic data;
2. compile it for serving and publish it to a content-hash-versioned
   :class:`repro.store.ArtifactStore` (float and 16-bit quantised);
3. simulate a process restart: cold-start a serving endpoint straight
   from the artifact — parameters memory-mapped, spectra seeded, zero
   FFTs recomputed — and compare against rebuild-and-recompile;
4. hot-swap the endpoint to the quantised artifact and roll back.

Run: ``python examples/serve_from_store.py`` (``--smoke`` for the
reduced-size CI variant; every assertion still runs).
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets import DatasetSpec, make_classification_images
from repro.fftcore import CountingFFTBackend
from repro.nn import (
    Adam,
    BlockCirculantDense,
    Flatten,
    ReLU,
    Sequential,
    Trainer,
    load_parameters,
    save_parameters,
)
from repro.quant import quantized_view
from repro.serving import ModelRegistry
from repro.store import ArtifactStore, load_artifact
from repro.store.manifest import read_manifest

SMOKE = "--smoke" in sys.argv

_SIDE = 8
_HIDDEN = 256 if SMOKE else 1024
_BLOCK = 8 if SMOKE else 16
_EPOCHS = 2 if SMOKE else 5


def build_net(seed: int = 0) -> Sequential:
    return Sequential(
        Flatten(),
        BlockCirculantDense(_SIDE * _SIDE, _HIDDEN, _BLOCK, seed=seed),
        ReLU(),
        BlockCirculantDense(_HIDDEN, 10, _BLOCK, seed=seed + 1),
    )


def main() -> None:
    rng = np.random.default_rng(0)

    print("=" * 64)
    print("1. Train a block-circulant classifier")
    spec = DatasetSpec("demo", (1, _SIDE, _SIDE), 10)
    data = make_classification_images(spec, train_size=256, test_size=64,
                                      seed=0)
    net = build_net()
    trainer = Trainer(net, Adam(net.parameters(), lr=1e-3), seed=0)
    history = trainer.fit(data.x_train, data.y_train, epochs=_EPOCHS,
                          batch_size=32)
    print(f"   final train loss: {history.train_loss[-1]:.3f}")

    print("=" * 64)
    print("2. Compile and publish (float + 16-bit quantised)")
    net.compile_inference()
    workdir = Path(tempfile.mkdtemp(prefix="circnn-store-"))
    store = ArtifactStore(workdir / "model-store")
    float_dir = store.publish("classifier", net)
    qnet = quantized_view(net, weight_bits=16, activation_bits=16)
    qnet.compile_inference()
    quant_dir = store.publish("classifier", qnet)
    manifest = read_manifest(quant_dir)
    print(f"   store root: {store.root}")
    print(f"   versions of 'classifier': {store.versions('classifier')}")
    print(f"   quantised manifest records: {manifest['quantization']}")

    print("=" * 64)
    print("3. Cold start from the artifact vs rebuild-and-recompile")
    npz = workdir / "weights.npz"
    save_parameters(net, npz)
    batch = rng.normal(size=(4, 1, _SIDE, _SIDE))

    start = time.perf_counter()
    rebuilt = build_net()
    load_parameters(rebuilt, npz)
    rebuilt.compile_inference()
    rebuilt_y = rebuilt.inference_forward(batch)
    rebuild_ms = (time.perf_counter() - start) * 1e3

    start = time.perf_counter()
    cold = load_artifact(float_dir)
    cold_y = cold.inference_forward(batch)
    store_ms = (time.perf_counter() - start) * 1e3
    print(f"   rebuild+recompile: {rebuild_ms:7.1f} ms to first batch")
    print(f"   store cold start:  {store_ms:7.1f} ms to first batch")
    assert np.array_equal(cold_y, rebuilt_y), "store round trip must be exact"
    assert np.array_equal(cold_y, net.inference_forward(batch))
    print("   outputs bit-identical to the original compiled network")

    counting = CountingFFTBackend("numpy")
    load_artifact(float_dir, backend=counting)
    assert counting.total() == 0, "loading must not recompute any FFT"
    print("   FFT calls during load: 0 (spectra seeded from disk)")

    print("=" * 64)
    print("4. Serve, hot-swap to the quantised version, roll back")
    registry = ModelRegistry()
    registry.load_endpoint("classifier", float_dir)
    float_answer = registry.get("classifier").inference_forward(batch)
    previous = registry.swap_from_store("classifier", quant_dir)
    assert previous is not None
    quant_answer = registry.get("classifier").inference_forward(batch)
    print(f"   generation after swap: {registry.generation('classifier')}")
    print(f"   max |float - quantised|: "
          f"{np.max(np.abs(float_answer - quant_answer)):.2e}")
    registry.swap_from_store("classifier", float_dir)
    rollback_answer = registry.get("classifier").inference_forward(batch)
    assert np.array_equal(rollback_answer, float_answer)
    print(f"   rolled back (generation "
          f"{registry.generation('classifier')}); answers match v1 exactly")
    print("=" * 64)
    print("done.")


if __name__ == "__main__":
    main()
