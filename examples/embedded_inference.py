"""Embedded deployment study (paper §5.3 + Figs 13-15 platforms).

The deployment scenario from the paper's §5.3: can large-scale deep
learning run in real time on a phone-class processor? This example maps
the same compressed models onto every platform the paper evaluates —
ARM Cortex-A9, Cyclone V FPGA, 45 nm ASIC, near-threshold ASIC — and
prints the latency / throughput / power / efficiency matrix, plus the
paper's reference systems for context.

Run: ``python examples/embedded_inference.py``
"""

from __future__ import annotations

from repro.analysis.complexity import block_circulant_fc_work, model_work
from repro.arch import map_model
from repro.arch.platforms import (
    GPU_TESLA_C2075,
    arm_cortex_a9,
    asic_45nm,
    asic_45nm_near_threshold,
    fpga_cyclone_v,
)
from repro.experiments import paper_values
from repro.models import (
    alexnet_spec,
    default_alexnet_full_plan,
    default_lenet5_plan,
    lenet5_spec,
)
from repro.models.descriptors import DenseSpec


def lenet_on_every_platform() -> None:
    """LeNet-5 (block-circulant plan) across the platform zoo."""
    print("=" * 72)
    print("1. LeNet-5 / MNIST across platforms")
    spec = lenet5_spec()
    plan = default_lenet5_plan()
    print(f"{'platform':<26} {'ms/image':>9} {'images/s':>10} "
          f"{'power W':>8} {'fps/W':>10}")
    arm = arm_cortex_a9()
    works = model_work(spec, plan)
    latency = arm.model_runtime_s(works)
    print(f"{'ARM Cortex-A9 (model)':<26} {latency * 1e3:>9.3f} "
          f"{1 / latency:>10.0f} {arm.power_w:>8.2f} "
          f"{1 / latency / arm.power_w:>10.0f}")
    for platform in (fpga_cyclone_v(), asic_45nm()):
        report = map_model(spec, plan, platform)
        print(f"{platform.name:<26} {report.latency_s * 1e3:>9.3f} "
              f"{report.throughput_fps:>10.0f} {report.power_w:>8.2f} "
              f"{report.fps_per_watt:>10.0f}")
    print(f"{'TrueNorth (paper ref)':<26} {'~1.0':>9} "
          f"{paper_values.SEC53_TRUENORTH_FPS:>10.0f} {'--':>8} {'--':>10}")
    print(f"{'Tesla C2075 (paper ref)':<26} {'--':>9} "
          f"{paper_values.SEC53_GPU_FPS:>10.0f} "
          f"{paper_values.SEC53_GPU_POWER_W:>8.1f} "
          f"{paper_values.SEC53_GPU_FPS / paper_values.SEC53_GPU_POWER_W:>10.1f}")


def alexnet_fc_arm_vs_gpu() -> None:
    """The §5.3 headline: a phone core outruns a server GPU on the big
    FC layer once the computation is block-circulant."""
    print("=" * 72)
    print("2. AlexNet fc6 (9216 -> 4096, k = 1024), single layer")
    arm = arm_cortex_a9()
    compressed = block_circulant_fc_work(
        DenseSpec("fc6", 9216, 4096), 1024, activation=False
    )
    compressed_rate = 1.0 / arm.layer_runtime_s(compressed)
    dense = block_circulant_fc_work(
        DenseSpec("fc6", 9216, 4096), 1, activation=False
    )
    dense_rate = 1.0 / arm.layer_runtime_s(dense)
    print(f"   ARM, block-circulant: {compressed_rate:7.0f} layers/s "
          f"(paper: {paper_values.SEC53_ARM_FC_LAYERS_PER_S:.0f})")
    print(f"   ARM, dense:           {dense_rate:7.1f} layers/s")
    print(f"   GPU (Tesla C2075):    "
          f"{paper_values.SEC53_GPU_FC_LAYERS_PER_S:7.0f} layers/s "
          f"at {GPU_TESLA_C2075.gops_per_watt:.1f} GOPS/W (paper ref)")
    print("   -> complexity reduction, not raw silicon, closes the gap.")


def alexnet_full_pipeline() -> None:
    """Full AlexNet on the accelerator platforms (the Fig 13/15 rows)."""
    print("=" * 72)
    print("3. AlexNet (FC+CONV block-circulant) on the accelerators")
    spec = alexnet_spec()
    plan = default_alexnet_full_plan()
    print(f"{'platform':<26} {'ms/image':>9} {'GOPS':>8} {'power W':>8} "
          f"{'GOPS/W':>9}")
    for platform in (fpga_cyclone_v(), asic_45nm(),
                     asic_45nm_near_threshold()):
        report = map_model(spec, plan, platform)
        print(f"{platform.name:<26} {report.latency_s * 1e3:>9.2f} "
              f"{report.equivalent_gops:>8.0f} {report.power_w:>8.3f} "
              f"{report.gops_per_watt:>9.0f}")


def main() -> None:
    lenet_on_every_platform()
    alexnet_fc_arm_vs_gpu()
    alexnet_full_pipeline()


if __name__ == "__main__":
    main()
