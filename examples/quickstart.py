"""Quickstart: block-circulant layers in five minutes.

Walks through the core CirCNN ideas on small, fast examples:

1. a circulant matrix and its FFT-based product (the Fig 5 identity);
2. a block-circulant FC layer as a drop-in Dense replacement, with its
   storage and compute savings;
3. training a compressed network end to end on synthetic data and
   comparing against the dense baseline.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fc_compute_speedup
from repro.circulant import BlockCirculantMatrix, CirculantMatrix
from repro.datasets import dataset_spec, make_classification_images
from repro.nn import (
    Adam,
    BlockCirculantDense,
    Dense,
    ReLU,
    Sequential,
    Trainer,
)


def demo_circulant_identity() -> None:
    """One circulant block: W @ x == IFFT(FFT(w) o FFT(x))."""
    print("=" * 64)
    print("1. The circulant-convolution identity (paper Fig 5)")
    rng = np.random.default_rng(0)
    w = CirculantMatrix(rng.normal(size=8))
    x = rng.normal(size=8)
    via_fft = w.matvec(x)
    via_dense = w.to_dense() @ x
    print(f"   FFT product:   {np.round(via_fft[:4], 4)} ...")
    print(f"   dense product: {np.round(via_dense[:4], 4)} ...")
    print(f"   max |diff| = {np.max(np.abs(via_fft - via_dense)):.2e}")
    print(f"   stored parameters: {w.num_parameters} instead of 64")


def demo_block_circulant_layer() -> None:
    """An m x n weight matrix from p*q*k parameters."""
    print("=" * 64)
    print("2. Block-circulant FC layer (paper Algorithm 1)")
    matrix = BlockCirculantMatrix.random(1024, 2048, 128, seed=1)
    print(f"   logical shape:     {matrix.shape}")
    print(f"   block grid:        {matrix.grid} blocks of {matrix.block_size}")
    print(f"   stored parameters: {matrix.num_parameters:,} "
          f"(dense: {matrix.dense_parameters:,})")
    print(f"   compression:       {matrix.compression_ratio:.0f}x")
    print(f"   compute speedup:   {fc_compute_speedup(1024, 2048, 128):.1f}x "
          "(scalar-op ratio, O(n^2) -> O(n log n))")
    x = np.random.default_rng(2).normal(size=(4, 2048))
    y = matrix.matvec(x)
    print(f"   matvec: {x.shape} -> {y.shape}")


def demo_training() -> None:
    """Train dense vs block-circulant on the same synthetic task."""
    print("=" * 64)
    print("3. Training parity, dense vs block-circulant (paper Fig 7b)")
    dataset = make_classification_images(
        dataset_spec("mnist"), train_size=512, test_size=256, noise=1.5,
        seed=3,
    )
    flat_train = dataset.x_train.reshape(len(dataset.x_train), -1)
    flat_test = dataset.x_test.reshape(len(dataset.x_test), -1)

    for label, hidden in (
        ("dense baseline ", Dense(784, 128, seed=4)),
        ("block-circulant", BlockCirculantDense(784, 128, 16, seed=4)),
    ):
        net = Sequential(hidden, ReLU(), Dense(128, 10, seed=5))
        trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=6)
        trainer.fit(flat_train, dataset.y_train, epochs=8, batch_size=64)
        accuracy = trainer.evaluate(flat_test, dataset.y_test)
        print(f"   {label}: test accuracy {accuracy:.3f}, "
              f"weight params {hidden.weight.size:,}")


def main() -> None:
    demo_circulant_identity()
    demo_block_circulant_layer()
    demo_training()
    print("=" * 64)
    print("Next: examples/compression_sweep.py, examples/design_space.py,")
    print("      examples/embedded_inference.py, examples/reproduce_paper.py")


if __name__ == "__main__":
    main()
