"""Setuptools shim so legacy `setup.py develop` installs work offline.

The sandbox has no `wheel` package, so pip's PEP-660 editable path fails;
`pip install -e .` falls back through this shim.
"""
from setuptools import setup

setup()
