"""Setuptools shim so legacy `setup.py develop` installs work offline.

The sandbox has no `wheel` package, so pip's PEP-660 editable path fails;
`pip install -e .` falls back through this shim.
"""
from setuptools import find_packages, setup

setup(
    name="circnn-repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
