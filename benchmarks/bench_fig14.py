"""Fig 14: end-to-end FPGA throughput / efficiency vs IBM TrueNorth.

Regenerates the MNIST / CIFAR-10 / SVHN comparison; asserts the win/lose
pattern (CirCNN wins MNIST and SVHN, TrueNorth wins CIFAR-10) and the
small-FFT under-utilisation mechanism behind the CIFAR-10 loss.
"""

from repro.experiments.fig14 import run_fig14

from conftest import report


def test_fig14_truenorth_comparison(benchmark):
    table = benchmark(run_fig14)
    report(table)
    assert table.row("cifar10 throughput vs TrueNorth").measured < 1.0
    assert table.row("mnist throughput vs TrueNorth").measured > 1.0
