"""Kernel microbenchmarks: Algorithms 1-2 and the Fig 9/10 FFT claims.

These back the paper's asymptotic claims with measured wall-clock data on
the actual kernels:

- the block-circulant forward product beats the dense matvec at large
  sizes (and the measured crossover is reported);
- the cached-spectrum serving path (SpectralWeightCache) beats the
  recompute-everything seed path by >= 3x at k=64;
- the backward pass (Algorithm 2) stays in the same complexity class;
- the recursive-plan execution (Fig 9) matches the iterative kernel;
- real-input FFTs do half the work of complex FFTs (Fig 10 symmetry).

Set ``BENCH_SMOKE=1`` to run a reduced-size CI smoke variant: sizes
shrink so the whole file finishes in seconds, and the wall-clock
crossover assertion against BLAS (hardware-dependent at small sizes) is
skipped while every speedup assertion still runs.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.circulant import (
    SpectralWeightCache,
    block_circulant_backward,
    block_circulant_forward,
)
from repro.fftcore import (
    FFTPlan,
    complex_fft_ops,
    fft_radix2,
    real_fft_ops,
    rfft_real,
)
from repro.nn.module import Parameter

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def _block_inputs(n: int, k: int, batch: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    blocks = n // k
    w = rng.normal(size=(blocks, blocks, k))
    x = rng.normal(size=(batch, blocks, k))
    return w, x


def _seed_forward(w: np.ndarray, x_blocks: np.ndarray) -> np.ndarray:
    """The seed-revision forward path: weight FFT recomputed every call and
    the spectral product left to the default einsum contraction. Kept here
    verbatim as the baseline the spectral engine is measured against."""
    k = w.shape[-1]
    wf = np.fft.rfft(w)
    xf = np.fft.rfft(x_blocks)
    af = np.einsum("pqf,bqf->bpf", wf, xf)
    return np.fft.irfft(af, n=k)


_FORWARD_SIZES = (
    [(512, 64), (1024, 128)] if BENCH_SMOKE
    else [(512, 64), (2048, 256), (4096, 512)]
)


class TestAlgorithm1Kernel:
    @pytest.mark.parametrize("n,k", _FORWARD_SIZES)
    def test_block_circulant_forward(self, benchmark, n, k):
        w, x = _block_inputs(n, k)
        benchmark(block_circulant_forward, w, x)

    def test_dense_matvec_baseline_2048(self, benchmark):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(2048, 2048))
        x = rng.normal(size=(8, 2048))
        benchmark(lambda: x @ dense.T)

    @pytest.mark.skipif(
        BENCH_SMOKE, reason="BLAS crossover needs full-size inputs"
    )
    def test_large_layer_beats_dense(self, benchmark):
        """Wall-clock check of the O(n^2) vs O(n log n) claim at n=8192.

        At n=4096 the BLAS matvec and the FFT path trade places run to
        run; by n=8192 with k=1024 the asymptotics dominate (~2.5x). The
        benchmark fixture times the block-circulant kernel; the dense
        baseline is timed inline and must be slower than the benchmark's
        best round.
        """
        rng = np.random.default_rng(0)
        n, k, batch = 8192, 1024, 8
        w, x = _block_inputs(n, k, batch)
        dense = rng.normal(size=(n, n))
        xd = rng.normal(size=(batch, n))

        benchmark(block_circulant_forward, w, x)
        circulant_time = benchmark.stats.stats.min

        dense_times = []
        for _ in range(5):
            start = time.perf_counter()
            xd @ dense.T
            dense_times.append(time.perf_counter() - start)
        dense_time = min(dense_times)
        print(
            f"\nn={n}, k={k}: block-circulant {circulant_time * 1e3:.2f} ms "
            f"vs dense {dense_time * 1e3:.2f} ms "
            f"({dense_time / circulant_time:.1f}x)"
        )
        assert circulant_time < dense_time


class TestSpectralInferenceEngine:
    """The serving fast path: cached weight spectra + BLAS spectral product.

    Acceptance gate for the spectral engine — the cached path must beat
    the seed-revision forward (weight FFT recomputed per call, plain
    einsum contraction) by >= 3x at k=64 on the numpy backend.
    """

    @pytest.mark.parametrize(
        "n,k,batch",
        [(1024, 64, 4)] if BENCH_SMOKE else [(2048, 64, 4), (2048, 64, 16)],
    )
    def test_cached_spectrum_beats_seed_3x(self, benchmark, n, k, batch):
        w, x = _block_inputs(n, k, batch)
        cache = SpectralWeightCache()
        weight = Parameter(w)
        wf = cache.spectrum(weight)

        benchmark(
            block_circulant_forward, weight.value, x, cached_spectrum=wf
        )
        cached_time = benchmark.stats.stats.min

        np.testing.assert_allclose(
            block_circulant_forward(weight.value, x, cached_spectrum=wf),
            _seed_forward(w, x),
            atol=1e-10,
        )
        seed_times = []
        for _ in range(20):
            start = time.perf_counter()
            _seed_forward(w, x)
            seed_times.append(time.perf_counter() - start)
        seed_time = min(seed_times)
        speedup = seed_time / cached_time
        print(
            f"\nn={n}, k={k}, batch={batch}: seed {seed_time * 1e6:.0f} us "
            f"vs cached spectrum {cached_time * 1e6:.0f} us "
            f"({speedup:.1f}x)"
        )
        assert speedup >= 3.0, (
            f"cached-spectrum fast path only {speedup:.2f}x over seed"
        )

    def test_cache_hit_is_free(self, benchmark):
        """Steady-state lookups must cost dict-access time, not FFT time."""
        w, _ = _block_inputs(512, 64, 1)
        cache = SpectralWeightCache()
        weight = Parameter(w)
        cache.spectrum(weight)
        benchmark(cache.spectrum, weight)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] > 0


_BACKWARD_SIZES = (
    [(1024, 128)] if BENCH_SMOKE else [(1024, 128), (4096, 512)]
)


class TestAlgorithm2Kernel:
    @pytest.mark.parametrize("n,k", _BACKWARD_SIZES)
    def test_block_circulant_backward(self, benchmark, n, k):
        w, x = _block_inputs(n, k)
        grad = np.random.default_rng(1).normal(size=x.shape)
        benchmark(block_circulant_backward, w, x, grad)


_FFT_SIZES = [256, 1024] if BENCH_SMOKE else [256, 1024, 4096]


class TestFFTKernels:
    @pytest.mark.parametrize("n", _FFT_SIZES)
    def test_radix2_fft(self, benchmark, n):
        x = np.random.default_rng(0).normal(size=(16, n)).astype(complex)
        benchmark(fft_radix2, x)

    @pytest.mark.parametrize("n", _FFT_SIZES)
    def test_real_fft(self, benchmark, n):
        x = np.random.default_rng(0).normal(size=(16, n))
        benchmark(rfft_real, x)

    def test_fig9_recursive_plan(self, benchmark):
        x = np.random.default_rng(0).normal(size=256).astype(complex)
        plan = FFTPlan(256)
        result = benchmark(plan.execute_recursive, x)
        np.testing.assert_allclose(result, np.fft.fft(x), atol=1e-8)

    def test_fig10_symmetry_saving_is_2x(self, benchmark):
        """The op-count claim behind Fig 10's skipped 'red circles'."""

        def check() -> tuple[int, int]:
            for n in (64, 1024, 8192):
                full = complex_fft_ops(n).total_real_ops
                real = real_fft_ops(n).total_real_ops
                assert full == 2 * real
            return full, real

        full, real = benchmark(check)
        assert full == 2 * real
        print("\nreal-input FFT op saving confirmed at exactly 2x")
