"""Kernel microbenchmarks: Algorithms 1-2 and the Fig 9/10 FFT claims.

These back the paper's asymptotic claims with measured wall-clock data on
the actual kernels:

- the block-circulant forward product beats the dense matvec at large
  sizes (and the measured crossover is reported);
- the cached-spectrum serving path (SpectralWeightCache) beats the
  recompute-everything seed path by >= 3x at k=64;
- the CONV serving path (same shared GEMM kernel, cached ``(r², p, q)``
  spectra) beats the seed conv forward by >= 2x;
- the backward pass (Algorithm 2) stays in the same complexity class;
- the recursive-plan execution (Fig 9) matches the iterative kernel;
- real-input FFTs do half the work of complex FFTs (Fig 10 symmetry).

Set ``BENCH_SMOKE=1`` to run a reduced-size CI smoke variant: sizes
shrink so the whole file finishes in seconds, and the wall-clock
crossover assertion against BLAS (hardware-dependent at small sizes) is
skipped while every speedup assertion still runs.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.circulant import (
    SpectralWeightCache,
    block_circulant_backward,
    block_circulant_conv_forward,
    block_circulant_forward,
)
from repro.fftcore import (
    FFTPlan,
    complex_fft_ops,
    fft_radix2,
    real_fft_ops,
    rfft_real,
)
from repro.nn.module import Parameter

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def _block_inputs(n: int, k: int, batch: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    blocks = n // k
    w = rng.normal(size=(blocks, blocks, k))
    x = rng.normal(size=(batch, blocks, k))
    return w, x


def _conv_inputs(channels: int, k: int, flat: int, field: int = 3,
                 seed: int = 0):
    """Serving-shaped CONV workload: ``channels`` in/out channels in
    ``k × k`` circulant blocks at ``field²`` spatial offsets, ``flat``
    im2col rows (batch × output positions)."""
    rng = np.random.default_rng(seed)
    blocks = channels // k
    w = rng.normal(size=(field**2, blocks, blocks, k))
    patches = rng.normal(size=(flat, field**2, blocks, k))
    return w, patches


def _seed_conv_forward(w: np.ndarray, patch_blocks: np.ndarray) -> np.ndarray:
    """The seed-revision CONV forward: weight FFT recomputed every call,
    spectral contraction left to einsum (optimize=True), exactly as
    BlockCirculantConv2D.forward evaluated it before the spectral engine
    covered the CONV layer. The baseline for the conv serving gate."""
    k = w.shape[-1]
    wf = np.fft.rfft(w)
    pf = np.fft.rfft(patch_blocks)
    yf = np.einsum("sijf,bsjf->bif", wf, pf, optimize=True)
    return np.fft.irfft(yf, n=k)


def _seed_forward(w: np.ndarray, x_blocks: np.ndarray) -> np.ndarray:
    """The seed-revision forward path: weight FFT recomputed every call and
    the spectral product left to the default einsum contraction. Kept here
    verbatim as the baseline the spectral engine is measured against."""
    k = w.shape[-1]
    wf = np.fft.rfft(w)
    xf = np.fft.rfft(x_blocks)
    af = np.einsum("pqf,bqf->bpf", wf, xf)
    return np.fft.irfft(af, n=k)


_FORWARD_SIZES = (
    [(512, 64), (1024, 128)] if BENCH_SMOKE
    else [(512, 64), (2048, 256), (4096, 512)]
)


class TestAlgorithm1Kernel:
    @pytest.mark.parametrize("n,k", _FORWARD_SIZES)
    def test_block_circulant_forward(self, benchmark, n, k):
        w, x = _block_inputs(n, k)
        benchmark(block_circulant_forward, w, x)

    def test_dense_matvec_baseline_2048(self, benchmark):
        rng = np.random.default_rng(0)
        dense = rng.normal(size=(2048, 2048))
        x = rng.normal(size=(8, 2048))
        benchmark(lambda: x @ dense.T)

    @pytest.mark.skipif(
        BENCH_SMOKE, reason="BLAS crossover needs full-size inputs"
    )
    def test_large_layer_beats_dense(self, benchmark):
        """Wall-clock check of the O(n^2) vs O(n log n) claim at n=8192.

        At n=4096 the BLAS matvec and the FFT path trade places run to
        run; by n=8192 with k=1024 the asymptotics dominate (~2.5x). The
        benchmark fixture times the block-circulant kernel; the dense
        baseline is timed inline and must be slower than the benchmark's
        best round.
        """
        rng = np.random.default_rng(0)
        n, k, batch = 8192, 1024, 8
        w, x = _block_inputs(n, k, batch)
        dense = rng.normal(size=(n, n))
        xd = rng.normal(size=(batch, n))

        benchmark(block_circulant_forward, w, x)
        circulant_time = benchmark.stats.stats.min

        dense_times = []
        for _ in range(5):
            start = time.perf_counter()
            xd @ dense.T
            dense_times.append(time.perf_counter() - start)
        dense_time = min(dense_times)
        print(
            f"\nn={n}, k={k}: block-circulant {circulant_time * 1e3:.2f} ms "
            f"vs dense {dense_time * 1e3:.2f} ms "
            f"({dense_time / circulant_time:.1f}x)"
        )
        assert circulant_time < dense_time


def _assert_cached_beats_seed(benchmark, fast_fn, seed_fn, floor, label):
    """Shared scaffold of the spectral-engine gates: time the cached fast
    path with the benchmark fixture, time the seed baseline inline, check
    the two agree numerically, and assert the speedup floor."""
    benchmark(fast_fn)
    cached_time = benchmark.stats.stats.min
    np.testing.assert_allclose(fast_fn(), seed_fn(), atol=1e-10)
    seed_times = []
    for _ in range(20):
        start = time.perf_counter()
        seed_fn()
        seed_times.append(time.perf_counter() - start)
    seed_time = min(seed_times)
    speedup = seed_time / cached_time
    print(
        f"\n{label}: seed {seed_time * 1e6:.0f} us "
        f"vs cached spectrum {cached_time * 1e6:.0f} us ({speedup:.1f}x)"
    )
    assert speedup >= floor, (
        f"{label}: cached-spectrum fast path only {speedup:.2f}x over seed"
    )


class TestSpectralInferenceEngine:
    """The serving fast path: cached weight spectra + BLAS spectral product.

    Acceptance gate for the spectral engine — the cached path must beat
    the seed-revision forward (weight FFT recomputed per call, plain
    einsum contraction) by >= 3x at k=64 on the numpy backend.
    """

    @pytest.mark.parametrize(
        "n,k,batch",
        [(1024, 64, 4)] if BENCH_SMOKE else [(2048, 64, 4), (2048, 64, 16)],
    )
    def test_cached_spectrum_beats_seed_3x(self, benchmark, n, k, batch):
        w, x = _block_inputs(n, k, batch)
        wf = SpectralWeightCache().spectrum(Parameter(w))
        _assert_cached_beats_seed(
            benchmark,
            lambda: block_circulant_forward(w, x, cached_spectrum=wf),
            lambda: _seed_forward(w, x),
            floor=3.0,
            label=f"n={n}, k={k}, batch={batch}",
        )

    @pytest.mark.parametrize(
        "channels,k,flat",
        [(512, 32, 4)] if BENCH_SMOKE else [(1024, 64, 4), (1024, 64, 16)],
    )
    def test_conv_cached_spectrum_beats_seed_2x(
        self, benchmark, channels, k, flat
    ):
        """The CONV serving gate: cached spectrum + shared GEMM kernel must
        beat the seed conv forward (per-call weight FFT, optimize=True
        einsum contraction) by >= 2x on serving-shaped workloads."""
        w, patches = _conv_inputs(channels, k, flat)
        wf = SpectralWeightCache().spectrum(Parameter(w))
        _assert_cached_beats_seed(
            benchmark,
            lambda: block_circulant_conv_forward(
                w, patches, cached_spectrum=wf
            ),
            lambda: _seed_conv_forward(w, patches),
            floor=2.0,
            label=f"C=P={channels}, k={k}, patches={flat}",
        )

    def test_cache_hit_is_free(self, benchmark):
        """Steady-state lookups must cost dict-access time, not FFT time."""
        w, _ = _block_inputs(512, 64, 1)
        cache = SpectralWeightCache()
        weight = Parameter(w)
        cache.spectrum(weight)
        benchmark(cache.spectrum, weight)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] > 0


_BACKWARD_SIZES = (
    [(1024, 128)] if BENCH_SMOKE else [(1024, 128), (4096, 512)]
)


class TestAlgorithm2Kernel:
    @pytest.mark.parametrize("n,k", _BACKWARD_SIZES)
    def test_block_circulant_backward(self, benchmark, n, k):
        w, x = _block_inputs(n, k)
        grad = np.random.default_rng(1).normal(size=x.shape)
        benchmark(block_circulant_backward, w, x, grad)


_FFT_SIZES = [256, 1024] if BENCH_SMOKE else [256, 1024, 4096]


class TestFFTKernels:
    @pytest.mark.parametrize("n", _FFT_SIZES)
    def test_radix2_fft(self, benchmark, n):
        x = np.random.default_rng(0).normal(size=(16, n)).astype(complex)
        benchmark(fft_radix2, x)

    @pytest.mark.parametrize("n", _FFT_SIZES)
    def test_real_fft(self, benchmark, n):
        x = np.random.default_rng(0).normal(size=(16, n))
        benchmark(rfft_real, x)

    def test_fig9_recursive_plan(self, benchmark):
        x = np.random.default_rng(0).normal(size=256).astype(complex)
        plan = FFTPlan(256)
        result = benchmark(plan.execute_recursive, x)
        np.testing.assert_allclose(result, np.fft.fft(x), atol=1e-8)

    def test_fig10_symmetry_saving_is_2x(self, benchmark):
        """The op-count claim behind Fig 10's skipped 'red circles'."""

        def check() -> tuple[int, int]:
            for n in (64, 1024, 8192):
                full = complex_fft_ops(n).total_real_ops
                real = real_fft_ops(n).total_real_ops
                assert full == 2 * real
            return full, real

        full, real = benchmark(check)
        assert full == 2 * real
        print("\nreal-input FFT op saving confirmed at exactly 2x")
