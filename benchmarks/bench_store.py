"""Artifact-store cold-start benchmark: load beats rebuild by >= 5x.

The store's reason to exist is restart time: a serving process that dies
must be answering again as fast as possible. This benchmark measures the
full cold-start-to-first-served-batch path both ways:

- **rebuild** — what a process without the store does: construct the
  network (random init), restore weights from the ``.npz`` produced by
  ``save_parameters``, ``compile_inference()`` (recomputing every weight
  FFT), then serve the first batch;
- **store** — ``load_artifact()`` on an identity-codec artifact: layers
  built with ``init="zeros"``, parameters memory-mapped straight off
  disk, spectra seeded from the stored frequency-major buffers (zero
  FFTs), then serve the first batch.

The CI acceptance gate asserts the store path is >= 5x faster, and that
both paths serve bit-identical outputs. Raw timings land in
``benchmark.extra_info`` (the ``bench-store`` artifact in CI). Set
``BENCH_SMOKE=1`` for the reduced-size CI variant; every assertion still
runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.nn import (
    BlockCirculantDense,
    ReLU,
    Sequential,
    load_parameters,
    save_parameters,
)
from repro.store import load_artifact, save_artifact

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

# Serving-sized FC stack. Rebuild cost scales with parameter count (the
# random init + npz copies + weight FFTs); the store path's cost is a
# manifest parse plus O(layers) mmap calls, so the gap widens with
# parameter count — which for block-circulant layers means *smaller*
# block sizes (less compression, more defining vectors per layer). The
# first served batch is small, as a freshly restarted process's queue is.
_N, _K, _LAYERS = (2048, 16, 3) if BENCH_SMOKE else (4096, 32, 3)
_BATCH = 4
_ROUNDS = 5 if BENCH_SMOKE else 3


def _build(init_seeds: bool) -> Sequential:
    layers: list = []
    for index in range(_LAYERS):
        layers.append(
            BlockCirculantDense(_N, _N, _K, seed=index if init_seeds else None)
        )
        if index < _LAYERS - 1:
            layers.append(ReLU())
    return Sequential(*layers)


class TestColdStart:
    """Acceptance gate: store cold start >= 5x faster than rebuild."""

    def test_store_cold_start_beats_rebuild(self, benchmark, tmp_path):
        # One trained, compiled network; persist it both ways.
        net = _build(init_seeds=True)
        net.compile_inference()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(_BATCH, _N))
        expected = net.inference_forward(x)

        npz_path = tmp_path / "weights.npz"
        save_parameters(net, npz_path)
        artifact_dir = tmp_path / "artifact"
        save_artifact(net, artifact_dir, codec="identity")

        def rebuild_and_serve():
            cold = _build(init_seeds=True)
            load_parameters(cold, npz_path)
            cold.compile_inference()
            return cold.inference_forward(x)

        def load_and_serve():
            cold = load_artifact(artifact_dir, mmap=True)
            return cold.inference_forward(x)

        # Both cold starts end at the same served rows.
        np.testing.assert_array_equal(rebuild_and_serve(), expected)
        np.testing.assert_array_equal(load_and_serve(), expected)

        rebuild_times = []
        for _ in range(_ROUNDS):
            start = time.perf_counter()
            rebuild_and_serve()
            rebuild_times.append(time.perf_counter() - start)
        rebuild_time = min(rebuild_times)

        benchmark(load_and_serve)
        store_time = benchmark.stats.stats.min

        speedup = rebuild_time / store_time
        artifact_bytes = sum(
            entry.stat().st_size for entry in artifact_dir.iterdir()
        )
        benchmark.extra_info["rebuild_ms"] = rebuild_time * 1e3
        benchmark.extra_info["store_ms"] = store_time * 1e3
        benchmark.extra_info["speedup_vs_rebuild"] = speedup
        benchmark.extra_info["artifact_mib"] = artifact_bytes / (1 << 20)
        print(
            f"\nn={_N}, k={_K}, layers={_LAYERS}: rebuild+recompile "
            f"{rebuild_time * 1e3:.1f} ms vs store cold start "
            f"{store_time * 1e3:.1f} ms ({speedup:.1f}x), artifact "
            f"{artifact_bytes / (1 << 20):.1f} MiB"
        )
        assert speedup >= 5.0, (
            f"store cold start only {speedup:.2f}x faster than "
            f"rebuild+recompile (n={_N}, k={_K}, layers={_LAYERS})"
        )
