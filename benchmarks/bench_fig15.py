"""Fig 15: ASIC synthesis comparison (45 nm, plus near-threshold 4-bit).

Regenerates the ASIC scatter: >= 6x energy efficiency over the best
published reference, ~17x more from the near-threshold 4-bit point
(~102x total), and the 570x / 9,690x Jetson TX1 ratios.
"""

from repro.experiments.fig15 import run_fig15

from conftest import report


def test_fig15_asic_comparison(benchmark):
    table = benchmark(run_fig15)
    report(table)
    base = table.row("EE improvement vs best (ISSCC17_ST)").measured
    total = table.row("total improvement vs best").measured
    assert base >= 6.0
    assert total >= 70.0
