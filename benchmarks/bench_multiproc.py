"""Multi-process serving benchmarks: GIL escape and overload shedding.

Backs the "Multi-process serving" section of ``docs/serving_runtime.md``
with measured wall-clock data:

- the point of :class:`~repro.serving.MPInferenceServer` is throughput
  the thread server cannot reach when the forward holds the GIL. The
  workload here uses the pure-Python ``radix2`` FFT backend (the
  faithful-kernel regime, where serving is GIL-bound), 64 closed-loop
  clients against 4 workers, and gates >= 3x throughput over the
  thread-based :class:`~repro.serving.InferenceServer` on the same load.
  The gate only applies where it can physically hold — 4+ cores — and
  ``BENCH_MP_MIN_SPEEDUP`` overrides the factor for slower CI boxes;
- overload is shed, not queued: a submission burst against a bounded
  ``queue_depth`` must fast-reject with
  :class:`~repro.errors.QueueFullError` while every admitted request is
  still answered correctly. Shed counts land in the benchmark JSON.

Set ``BENCH_SMOKE=1`` for the reduced-size CI variant (fewer clients,
smaller layers; every assertion still runs).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.errors import QueueFullError
from repro.nn import BlockCirculantDense, ReLU, Sequential
from repro.serving import InferenceServer, MPInferenceServer

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

# GIL-bound serving workload: with the from-scratch radix2 backend every
# activation FFT is Python bytecode, so a thread pool serialises on the
# GIL and worker *processes* are the only way to scale — exactly the
# contrast this benchmark measures. Sizes stay small because the
# pure-Python forward is the workload, not the obstacle.
_N, _K = (64, 16) if BENCH_SMOKE else (128, 16)
_CLIENTS = 16 if BENCH_SMOKE else 64
_REQUESTS_PER_CLIENT = 3 if BENCH_SMOKE else 6
_WORKERS = 4
_MAX_BATCH = 8


def _gil_bound_net() -> Sequential:
    return Sequential(
        BlockCirculantDense(_N, _N, _K, seed=0, backend="radix2"),
        ReLU(),
        BlockCirculantDense(_N, _N, _K, seed=1, backend="radix2"),
    ).compile_inference()


def _closed_loop(server, samples) -> tuple[float, np.ndarray, list]:
    """Drive ``server`` with closed-loop clients; return (rps, lat_ms, ys).

    Closed loop: each client submits its next request only after the
    previous one resolves, so concurrency is exactly ``_CLIENTS`` and
    throughput is servers-per-second, not arrival-rate echo.
    """
    latencies: list[float] = []
    outputs: list[tuple[int, int, np.ndarray]] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        mine = []
        for turn in range(_REQUESTS_PER_CLIENT):
            sample = (index + turn) % len(samples)
            begin = time.perf_counter()
            response = server.submit(samples[sample]).result(timeout=600.0)
            mine.append((
                (time.perf_counter() - begin) * 1e3, sample, response.y,
            ))
        with lock:
            for latency, sample, y in mine:
                latencies.append(latency)
                outputs.append((index, sample, y))

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(_CLIENTS)
    ]
    begin = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - begin
    total = _CLIENTS * _REQUESTS_PER_CLIENT
    return total / elapsed, np.array(latencies), outputs


class TestMultiprocThroughput:
    """Acceptance gate: N processes beat the GIL where cores allow."""

    def test_mp_beats_thread_server_on_gil_bound_load(self, benchmark):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(_MAX_BATCH, _N))
        net = _gil_bound_net()
        direct = net.inference_forward(samples)

        def mp_load():
            with MPInferenceServer(
                net, workers=_WORKERS, max_batch=_MAX_BATCH,
                max_wait_ms=1.0,
            ) as server:
                # Warm every worker (spawn + imports) outside the
                # measurement; dispatch is round-robin so one sequential
                # request per worker touches them all.
                for _ in range(_WORKERS):
                    server.infer(samples[0], timeout=600.0)
                return _closed_loop(server, samples)

        mp_rps, latencies, outputs = benchmark.pedantic(
            mp_load, rounds=1, iterations=1
        )

        # Same closed-loop load against the thread server: with a
        # pure-Python forward its workers serialise on the GIL.
        with InferenceServer(
            net, workers=_WORKERS, max_batch=_MAX_BATCH, max_wait_ms=1.0
        ) as server:
            server.infer(samples[0], timeout=600.0)
            sp_rps, _, _ = _closed_loop(server, samples)

        # Correctness before speed: every served row matches the direct
        # compiled forward for its sample.
        for _, sample, y in outputs:
            np.testing.assert_allclose(y, direct[sample], atol=1e-10)

        speedup = mp_rps / sp_rps
        p50, p99 = np.percentile(latencies, [50, 99])
        benchmark.extra_info["mp_rps"] = float(mp_rps)
        benchmark.extra_info["thread_rps"] = float(sp_rps)
        benchmark.extra_info["speedup_vs_threads"] = float(speedup)
        benchmark.extra_info["p50_ms"] = float(p50)
        benchmark.extra_info["p99_ms"] = float(p99)
        benchmark.extra_info["cpu_count"] = float(os.cpu_count() or 1)
        print(
            f"\n{_CLIENTS} closed-loop clients, {_WORKERS} workers, "
            f"radix2 backend: {mp_rps:.0f} rps multi-process vs "
            f"{sp_rps:.0f} rps threads ({speedup:.2f}x), "
            f"p50 {p50:.1f} ms, p99 {p99:.1f} ms"
        )
        minimum = float(os.environ.get("BENCH_MP_MIN_SPEEDUP", "3.0"))
        if (os.cpu_count() or 1) >= 4:
            assert speedup >= minimum, (
                f"multi-process serving only {speedup:.2f}x over the "
                f"thread server on a GIL-bound load ({os.cpu_count()} "
                f"cores; gate {minimum:.1f}x)"
            )
        else:
            print(
                f"(speedup gate skipped: {os.cpu_count()} core(s) "
                "cannot express process parallelism)"
            )


class TestOverloadShedding:
    """A burst over queue_depth sheds fast; admitted work still answers."""

    def test_burst_sheds_and_admitted_requests_complete(self, benchmark):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(4, _N))
        net = _gil_bound_net()
        direct = net.inference_forward(samples)
        burst = 8 * (_CLIENTS // 2)
        depth = 8

        def overload():
            with MPInferenceServer(
                net, workers=2, max_batch=_MAX_BATCH, max_wait_ms=1.0,
                queue_depth=depth,
            ) as server:
                server.infer(samples[0], timeout=600.0)  # warm
                admitted, shed, reject_us = [], 0, []
                for index in range(burst):
                    begin = time.perf_counter()
                    try:
                        admitted.append(
                            (index % 4, server.submit(samples[index % 4]))
                        )
                    except QueueFullError:
                        reject_us.append(
                            (time.perf_counter() - begin) * 1e6
                        )
                        shed += 1
                results = [
                    (sample, future.result(timeout=600.0))
                    for sample, future in admitted
                ]
                return shed, reject_us, results, server.stats()

        shed, reject_us, results, stats = benchmark.pedantic(
            overload, rounds=1, iterations=1
        )

        for sample, response in results:
            np.testing.assert_allclose(
                response.y, direct[sample], atol=1e-10
            )
        benchmark.extra_info["burst"] = float(burst)
        benchmark.extra_info["queue_depth"] = float(depth)
        benchmark.extra_info["shed"] = float(shed)
        benchmark.extra_info["max_reject_us"] = float(max(reject_us))
        print(
            f"\nburst of {burst} against queue_depth={depth}: "
            f"{shed} shed (slowest reject {max(reject_us):.0f} us), "
            f"{len(results)} admitted and answered"
        )
        # The burst is submitted far faster than the pure-Python forward
        # can serve, so the bounded queue must overflow...
        assert shed > 0
        assert stats["shed"] == shed
        # ...and a shed is a synchronous fast-reject at admission, never
        # a wait on the wedged pipeline.
        assert max(reject_us) < 100_000.0
