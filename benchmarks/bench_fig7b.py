"""Fig 7(b): test accuracy, dense baseline vs block-circulant FC layers.

Trains a dense and a block-circulant network per dataset with identical
hyper-parameters on synthetic data hard enough that capacity loss would
show, and asserts the accuracy gap stays within the paper's "negligible
(1-2%)" claim. One full training round per benchmark run.
"""

from repro.experiments.fig7 import run_fig7b

from conftest import report


def test_fig7b_accuracy_parity(benchmark):
    table = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)
    report(table)
    for dataset in ("mnist", "cifar10", "svhn"):
        drop = table.row(f"{dataset} accuracy drop").measured
        assert drop <= 0.06, f"{dataset}: accuracy drop {drop:.3f} too large"
