"""Ablation: block size vs accuracy vs compression (§2.4's trade-off knob).

The paper's central design argument: "to achieve better compression ratio,
larger block size should be used, however, it may lead to more accuracy
degradation. The smaller block sizes provide better accuracy, but less
compression." This bench sweeps k on a fixed synthetic task and asserts
both monotonic directions of the trade-off.

It also emits the machine-readable ``(k, backend, bits) -> measured
seconds`` latency table (:func:`repro.plan.sweep_table`) that the plan
autotuner's cost-model prior is validated against: for each (backend,
bits) group, :func:`repro.plan.validate_prior` reports how often the
prior orders two block sizes the same way the measurement does.
"""

from __future__ import annotations

import json

import numpy as np

from repro.datasets import dataset_spec, make_classification_images
from repro.nn import Adam, BlockCirculantDense, Dense, ReLU, Sequential, Trainer
from repro.plan import sweep_table, validate_prior

from conftest import report
from repro.experiments.tables import BandCheck, ExperimentTable


def _accuracy_at_block_size(dataset, block_size: int, epochs: int = 10,
                            seed: int = 0) -> tuple[float, int]:
    flat_train = dataset.x_train.reshape(len(dataset.x_train), -1)
    flat_test = dataset.x_test.reshape(len(dataset.x_test), -1)
    in_features = flat_train.shape[1]
    if block_size > 1:
        hidden = BlockCirculantDense(in_features, 128, block_size, seed=seed)
    else:
        hidden = Dense(in_features, 128, seed=seed)
    net = Sequential(hidden, ReLU(), Dense(128, 10, seed=seed + 1))
    trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=seed)
    trainer.fit(flat_train, dataset.y_train, epochs=epochs, batch_size=64)
    return trainer.evaluate(flat_test, dataset.y_test), hidden.weight.size


def run_block_size_ablation() -> ExperimentTable:
    """Sweep k over {1, 8, 32, 128} on a hard synthetic MNIST task."""
    table = ExperimentTable(
        "ablation_blocksize", "block size vs accuracy vs compression"
    )
    dataset = make_classification_images(
        dataset_spec("mnist"), 768, 384, noise=2.2, seed=0
    )
    results = {}
    for k in (1, 8, 32, 128):
        accuracy, params = _accuracy_at_block_size(dataset, k)
        results[k] = (accuracy, params)
        table.add(f"k={k} accuracy", accuracy, "frac")
        table.add(f"k={k} hidden params", params, "")
    # Compression is exactly monotone in k.
    params = [results[k][1] for k in (1, 8, 32, 128)]
    table.add(
        "compression monotone in k",
        float(params == sorted(params, reverse=True)), "bool",
        band=BandCheck(low=1.0),
    )
    # Accuracy trends down as k grows (allowing small seed noise).
    small_k = max(results[1][0], results[8][0])
    large_k = results[128][0]
    table.add(
        "accuracy cost of k=128 vs k<=8", small_k - large_k, "frac",
        band=BandCheck(low=-0.02),
        note="large blocks may not beat small blocks on a hard task",
    )
    table.add(
        "k=8 stays near dense", results[1][0] - results[8][0], "frac",
        band=BandCheck(high=0.06),
        note="the paper's tuned-block regime: negligible loss",
    )
    return table


def test_block_size_ablation(benchmark):
    table = benchmark.pedantic(run_block_size_ablation, rounds=1, iterations=1)
    report(table)


def run_latency_sweep() -> ExperimentTable:
    """Measured latency over (k, backend, bits) and the prior's rank check.

    Block sizes are powers of two (the radix2 kernels require them); the
    bits axis exercises the fake-quantised spectra — word length cannot
    change software latency, which is exactly why the tuner ranks bits by
    the energy prior instead.
    """
    table = ExperimentTable(
        "blocksize_latency_sweep",
        "(k, backend, bits) -> measured forward seconds",
    )
    rng = np.random.default_rng(0)
    x = rng.normal(size=(16, 256))

    def build(k: int) -> Sequential:
        return Sequential(
            BlockCirculantDense(256, 256, k, seed=0),
            ReLU(),
            BlockCirculantDense(256, 64, k, seed=1),
        )

    records = sweep_table(
        build, x, block_sizes=(4, 16, 64),
        backends=("numpy", "radix2"), bits=(None, 8), repeats=3,
    )
    # The machine-readable artifact: one JSON line per measured cell, so
    # the uploaded benchmark log doubles as tuner-calibration data.
    print()
    for record in records:
        print("SWEEP " + json.dumps(record, sort_keys=True))
        label = (f"k={record['k']} {record['backend']} "
                 f"bits={record['bits'] or 'float'}")
        table.add(label, record["seconds"] * 1e3, "ms")

    # Across-k concordance per (backend, bits): reported, not gated. The
    # prior prices hardware op counts, and at these layer sizes software
    # wall-clock is call-overhead-bound, so the k ordering legitimately
    # diverges — the reason tune() measures real forwards instead of
    # trusting the prior.
    for (backend, bits), value in sorted(
        validate_prior(records).items(),
        key=lambda item: (item[0][0], str(item[0][1])),
    ):
        table.add(
            f"prior k-rank agreement {backend} bits={bits or 'float'}",
            value, "frac",
        )

    # What the tuner actually uses the prior for — ranking *backends* at
    # a fixed layer shape (the keep_per_layer pruning) — must agree with
    # the measurement: the gated check.
    cells = {
        (r["k"], r["bits"], r["backend"]): r for r in records
    }
    concordant = total = 0
    for k in (4, 16, 64):
        for bits in (None, 8):
            a = cells[(k, bits, "numpy")]
            b = cells[(k, bits, "radix2")]
            total += 1
            if ((a["prior_seconds"] - b["prior_seconds"])
                    * (a["seconds"] - b["seconds"])) > 0:
                concordant += 1
    table.add(
        "prior backend-rank agreement", concordant / total, "frac",
        band=BandCheck(low=0.75),
        note="the pruning signal tune() relies on must beat chance",
    )
    return table


def test_latency_sweep_table(benchmark):
    table = benchmark.pedantic(run_latency_sweep, rounds=1, iterations=1)
    report(table)
