"""Ablation: block size vs accuracy vs compression (§2.4's trade-off knob).

The paper's central design argument: "to achieve better compression ratio,
larger block size should be used, however, it may lead to more accuracy
degradation. The smaller block sizes provide better accuracy, but less
compression." This bench sweeps k on a fixed synthetic task and asserts
both monotonic directions of the trade-off.
"""

from __future__ import annotations


from repro.datasets import dataset_spec, make_classification_images
from repro.nn import Adam, BlockCirculantDense, Dense, ReLU, Sequential, Trainer

from conftest import report
from repro.experiments.tables import BandCheck, ExperimentTable


def _accuracy_at_block_size(dataset, block_size: int, epochs: int = 10,
                            seed: int = 0) -> tuple[float, int]:
    flat_train = dataset.x_train.reshape(len(dataset.x_train), -1)
    flat_test = dataset.x_test.reshape(len(dataset.x_test), -1)
    in_features = flat_train.shape[1]
    if block_size > 1:
        hidden = BlockCirculantDense(in_features, 128, block_size, seed=seed)
    else:
        hidden = Dense(in_features, 128, seed=seed)
    net = Sequential(hidden, ReLU(), Dense(128, 10, seed=seed + 1))
    trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=seed)
    trainer.fit(flat_train, dataset.y_train, epochs=epochs, batch_size=64)
    return trainer.evaluate(flat_test, dataset.y_test), hidden.weight.size


def run_block_size_ablation() -> ExperimentTable:
    """Sweep k over {1, 8, 32, 128} on a hard synthetic MNIST task."""
    table = ExperimentTable(
        "ablation_blocksize", "block size vs accuracy vs compression"
    )
    dataset = make_classification_images(
        dataset_spec("mnist"), 768, 384, noise=2.2, seed=0
    )
    results = {}
    for k in (1, 8, 32, 128):
        accuracy, params = _accuracy_at_block_size(dataset, k)
        results[k] = (accuracy, params)
        table.add(f"k={k} accuracy", accuracy, "frac")
        table.add(f"k={k} hidden params", params, "")
    # Compression is exactly monotone in k.
    params = [results[k][1] for k in (1, 8, 32, 128)]
    table.add(
        "compression monotone in k",
        float(params == sorted(params, reverse=True)), "bool",
        band=BandCheck(low=1.0),
    )
    # Accuracy trends down as k grows (allowing small seed noise).
    small_k = max(results[1][0], results[8][0])
    large_k = results[128][0]
    table.add(
        "accuracy cost of k=128 vs k<=8", small_k - large_k, "frac",
        band=BandCheck(low=-0.02),
        note="large blocks may not beat small blocks on a hard task",
    )
    table.add(
        "k=8 stays near dense", results[1][0] - results[8][0], "frac",
        band=BandCheck(high=0.06),
        note="the paper's tuned-block regime: negligible loss",
    )
    return table


def test_block_size_ablation(benchmark):
    table = benchmark.pedantic(run_block_size_ablation, rounds=1, iterations=1)
    report(table)
