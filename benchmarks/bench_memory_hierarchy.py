"""§4.4 ablation: memory hierarchy, clock targets, and prefetch regularity.

Regenerates the paper's memory-subsystem claims: a single-level multiple-MB
memory sustains 200 MHz but not 800 MHz; with a hierarchy, the regular
block-circulant weight stream keeps the miss rate negligible while an
index-chasing pruned format stalls an order of magnitude more — "another
advantage over prior compression schemes".
"""

from __future__ import annotations

from repro.arch import (
    CacheModel,
    analyze_hierarchy,
    block_circulant_access_pattern,
    pruned_sparse_access_pattern,
    required_memory_levels,
)
from repro.experiments.tables import BandCheck, ExperimentTable

from conftest import report

FOUR_MB = 4 * 2**20


def run_memory_hierarchy_study() -> ExperimentTable:
    table = ExperimentTable(
        "memory_hierarchy", "§4.4 memory levels and prefetch regularity"
    )
    table.add(
        "levels needed at 200 MHz", required_memory_levels(200e6, FOUR_MB),
        "", paper=1.0, band=BandCheck(high=1.0),
        note="paper: single-level memory suffices at 200 MHz",
    )
    table.add(
        "levels needed at 800 MHz", required_memory_levels(800e6, FOUR_MB),
        "", paper=2.0, band=BandCheck(low=2.0),
        note="paper: L1 + main memory become necessary",
    )
    circulant = analyze_hierarchy(
        800e6, FOUR_MB, pattern=block_circulant_access_pattern()
    )
    pruned = analyze_hierarchy(
        800e6, FOUR_MB, pattern=pruned_sparse_access_pattern(0.9)
    )
    table.add(
        "miss rate, block-circulant stream", circulant.miss_rate, "frac",
        band=BandCheck(high=0.05),
        note="paper: prefetching 'highly effective' on regular accesses",
    )
    table.add(
        "miss rate, pruned-sparse stream", pruned.miss_rate, "frac",
        band=BandCheck(low=0.3),
        note="irregular indexing defeats the prefetcher",
    )
    cache = CacheModel()
    stall_ratio = (
        cache.stall_cycles(pruned_sparse_access_pattern(0.9), 100_000)
        / max(
            1.0,
            cache.stall_cycles(block_circulant_access_pattern(), 100_000),
        )
    )
    table.add(
        "stall-cycle ratio pruned/circulant", stall_ratio, "x",
        band=BandCheck(low=10.0),
        note="the §4.4 'advantage over prior compression schemes'",
    )
    return table


def test_memory_hierarchy_study(benchmark):
    table = benchmark(run_memory_hierarchy_study)
    report(table)
