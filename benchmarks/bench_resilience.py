"""Brownout benchmark: a degraded answer beats a shed request.

Backs the "Resilience" section of ``docs/serving_runtime.md`` with
wall-clock evidence for the degradation ladder's premise — CirCNN's own
accuracy/cost trade (quantised low-bit variants of the same
block-circulant model) turned into a serving policy. The scenario is a
deadline-bound overload on a CONV workload served one sample per batch:

- **plain shedding** serves only the full-precision model on the
  faithful ``radix2`` kernel (the paper-accurate dataflow, and the
  expensive plan); requests whose queue wait exceeds the deadline
  expire, full stop;
- **brownout** serves the same endpoint behind a
  :class:`~repro.serving.DegradationController` whose ladder holds one
  pre-compiled fallback rung: the 4-bit quantised view of the same
  network on the C-speed ``numpy`` plan. Under the same load the
  controller steps the endpoint down and the cheap rung starts
  clearing the queue fast enough to answer inside the deadline.

Both phases run the same clients, deadline and wall-clock budget; the
only difference is whether the endpoint has a ladder to step down. The
gate: brownout completes at least ``BENCH_BROWNOUT_MIN_GAIN`` (2x) as
many requests as plain shedding. The deadline is calibrated at runtime
from the two measured forward times, so the gate tracks the machine's
speed — the gain rides on the radix2/numpy cost *ratio*, not absolute
wall-clock. Set ``BENCH_SMOKE=1`` for the reduced CI variant (shorter
phases, same assertions).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.errors import DeadlineExceededError, QueueFullError
from repro.nn import BlockCirculantConv2D, ReLU, Sequential
from repro.quant import quantized_view
from repro.serving import (
    DegradationController,
    DegradationPolicy,
    ModelRegistry,
    MPInferenceServer,
)

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: Input images (C, H, W): large enough that one forward dominates the
#: parent's per-task dispatch cost, so both phases are model-bound and
#: the completion-rate ratio is the kernel-plan cost ratio. 48x48 is
#: deliberate: the padded 50-point spatial transform rounds up to a
#: 64-point radix-2 plan while the numpy plan runs it exactly, widening
#: the rung cost ratio the brownout gain rides on.
_SHAPE = (4, 48, 48)
_CHANNELS = 8
_K = 4
_WORKERS = 2
_CLIENTS = 6
_QUEUE_DEPTH = 16
_PHASE_S = 2.0 if BENCH_SMOKE else 4.0
_MIN_GAIN = float(os.environ.get("BENCH_BROWNOUT_MIN_GAIN", "2.0"))
_ENDPOINT = "conv"


def _conv_net(backend: str | None) -> Sequential:
    return Sequential(
        BlockCirculantConv2D(_SHAPE[0], _CHANNELS, 3, _K, padding=1,
                             seed=0, backend=backend),
        ReLU(),
        BlockCirculantConv2D(_CHANNELS, _CHANNELS, 3, _K, padding=1,
                             seed=1, backend=backend),
    ).compile_inference()


def _forward_ms(net: Sequential, x: np.ndarray) -> float:
    net.inference_forward(x[None])  # warm plan caches outside the timing
    begin = time.perf_counter()
    for _ in range(3):
        net.inference_forward(x[None])
    return (time.perf_counter() - begin) / 3 * 1e3


def _run_phase(registry: ModelRegistry, x: np.ndarray, deadline_ms: float,
               policy: DegradationPolicy | None) -> dict:
    """Drive one overload phase; returns completion counters and stats."""
    server = MPInferenceServer(
        registry, workers=_WORKERS, max_batch=1, max_wait_ms=0.0,
        queue_depth=_QUEUE_DEPTH,
    )
    server.start()
    controller = None
    completed = [0]
    missed = [0]
    lock = threading.Lock()
    halt = threading.Event()

    def client() -> None:
        while not halt.is_set():
            try:
                server.infer(x, endpoint=_ENDPOINT, timeout=600.0,
                             deadline_ms=deadline_ms)
            except (DeadlineExceededError, QueueFullError):
                with lock:
                    missed[0] += 1
                continue
            with lock:
                completed[0] += 1

    try:
        server.infer(x, endpoint=_ENDPOINT, timeout=600.0)  # warm workers
        if policy is not None:
            controller = DegradationController(
                server, _ENDPOINT, policy, interval_s=0.05,
            ).start()
        threads = [threading.Thread(target=client) for _ in range(_CLIENTS)]
        for thread in threads:
            thread.start()
        time.sleep(_PHASE_S)
        halt.set()
        for thread in threads:
            thread.join(timeout=600.0)
        stats = server.stats(_ENDPOINT)
        level = (registry.ladder_level(_ENDPOINT)
                 if policy is not None else 0)
    finally:
        halt.set()
        if controller is not None:
            controller.stop()
        server.stop(drain_timeout_s=60.0)
    return {
        "completed": completed[0],
        "missed": missed[0],
        "expired": stats["expired"],
        "shed": stats["shed"],
        "final_level": level,
    }


def test_brownout_completes_2x_vs_plain_shedding(benchmark):
    fine = _conv_net("radix2")
    cheap = quantized_view(_conv_net(None), 4).compile_inference()
    x = np.random.default_rng(11).normal(size=_SHAPE)

    slow_ms = _forward_ms(fine, x)
    cheap_ms = _forward_ms(cheap, x)
    # The deadline sits between the two rungs' queue-wait equilibria:
    # short enough that the fine model under _CLIENTS closed-loop
    # clients keeps missing it, long enough that the cheap rung clears
    # the backlog — the regime where degrading beats shedding.
    deadline_ms = 1.5 * (slow_ms * cheap_ms) ** 0.5

    def scenario():
        plain_registry = ModelRegistry()
        plain_registry.register(_ENDPOINT, fine, compile=False)
        plain = _run_phase(plain_registry, x, deadline_ms, policy=None)

        ladder_registry = ModelRegistry()
        ladder_registry.set_ladder(_ENDPOINT, [fine, cheap],
                                   compile=False)
        brownout = _run_phase(
            ladder_registry, x, deadline_ms,
            policy=DegradationPolicy(
                step_down_pressure=0.08, step_up_pressure=0.01,
                dwell_s=0.05, recovery_s=600.0,
            ),
        )
        return plain, brownout

    plain, brownout = benchmark.pedantic(scenario, rounds=1, iterations=1)

    gain = brownout["completed"] / max(plain["completed"], 1)
    benchmark.extra_info["slow_forward_ms"] = float(slow_ms)
    benchmark.extra_info["cheap_forward_ms"] = float(cheap_ms)
    benchmark.extra_info["deadline_ms"] = float(deadline_ms)
    benchmark.extra_info["plain_completed"] = float(plain["completed"])
    benchmark.extra_info["plain_missed"] = float(plain["missed"])
    benchmark.extra_info["brownout_completed"] = float(
        brownout["completed"]
    )
    benchmark.extra_info["brownout_missed"] = float(brownout["missed"])
    benchmark.extra_info["brownout_final_level"] = float(
        brownout["final_level"]
    )
    benchmark.extra_info["completed_gain"] = float(gain)
    print(
        f"\nresilience: deadline={deadline_ms:.2f}ms "
        f"(radix2 {slow_ms:.2f}ms, numpy-4bit {cheap_ms:.2f}ms) | "
        f"plain completed={plain['completed']} missed={plain['missed']} | "
        f"brownout completed={brownout['completed']} "
        f"missed={brownout['missed']} level={brownout['final_level']} | "
        f"gain={gain:.1f}x"
    )

    # The scenario must really be an overload for the fine model...
    assert plain["missed"] > 0, "plain phase was never under pressure"
    # ...the controller must actually have stepped down...
    assert brownout["final_level"] >= 1, "brownout never engaged"
    # ...and the degraded rung must convert the pressure into answers.
    assert gain >= _MIN_GAIN, (
        f"brownout completed only {gain:.2f}x of plain shedding "
        f"(gate {_MIN_GAIN}x): plain={plain}, brownout={brownout}"
    )
