"""Serving-runtime benchmarks: micro-batched throughput and open-loop latency.

Backs the serving story of ``docs/serving_runtime.md`` with measured
wall-clock data:

- dynamic micro-batching must pay: one compiled batch-16 forward beats 16
  sequential single-request forwards by >= 2x (the CI acceptance gate) —
  the software analogue of the batching-across-inputs leverage CirCNN's
  pipelined FFT hardware gets for free;
- the full :class:`~repro.serving.InferenceServer` path (queue ->
  micro-batch -> thread pool -> scatter) is exercised under a synthetic
  open-loop load generator, reporting p50/p99 latency and verifying the
  served outputs are bit-identical to the direct compiled forward.

Set ``BENCH_SMOKE=1`` for the reduced-size CI variant (smaller layer,
shorter load run; every assertion still runs).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.nn import BlockCirculantDense, ReLU, Sequential
from repro.serving import InferenceServer

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

# Serving-shaped workload: small enough per request that Python/FFT call
# overhead dominates a single-sample forward — exactly the regime where
# micro-batching pays (at very large layers the GEMM itself dominates and
# the batched/sequential gap narrows toward the BLAS limit).
_N, _K = (256, 32) if BENCH_SMOKE else (512, 64)
_BATCH = 16
_LOAD_REQUESTS = 64 if BENCH_SMOKE else 256


def _serving_net() -> Sequential:
    return Sequential(
        BlockCirculantDense(_N, _N, _K, seed=0),
        ReLU(),
        BlockCirculantDense(_N, _N, _K, seed=1),
    ).compile_inference()


class TestMicroBatchedThroughput:
    """Acceptance gate: batched throughput >= 2x sequential at batch 16."""

    def test_batch16_beats_sequential_singles(self, benchmark):
        net = _serving_net()
        rng = np.random.default_rng(0)
        xs = rng.normal(size=(_BATCH, _N))
        singles = [xs[i : i + 1] for i in range(_BATCH)]

        def batched():
            return net.inference_forward(xs)

        batched()  # warm spectra and FFT plans
        benchmark(batched)
        batch_time = benchmark.stats.stats.min

        # The same 16 requests served one by one — what the scheduler
        # replaces. Timed inline, best of 20 rounds.
        sequential_times = []
        for _ in range(20):
            start = time.perf_counter()
            for x in singles:
                net.inference_forward(x)
            sequential_times.append(time.perf_counter() - start)
        sequential_time = min(sequential_times)

        # Same rows in, same rows out.
        stacked = np.concatenate(
            [net.inference_forward(x) for x in singles]
        )
        np.testing.assert_allclose(batched(), stacked, atol=1e-10)

        speedup = sequential_time / batch_time
        benchmark.extra_info["sequential_us"] = sequential_time * 1e6
        benchmark.extra_info["speedup_vs_sequential"] = speedup
        print(
            f"\nn={_N}, k={_K}, batch={_BATCH}: sequential "
            f"{sequential_time * 1e6:.0f} us vs micro-batched "
            f"{batch_time * 1e6:.0f} us ({speedup:.1f}x)"
        )
        assert speedup >= 2.0, (
            f"micro-batching only {speedup:.2f}x over sequential "
            f"single-request serving at batch {_BATCH}"
        )


class TestServerOpenLoopLatency:
    """The full server path under a synthetic open-loop load generator."""

    def test_open_loop_p50_p99(self, benchmark):
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(_LOAD_REQUESTS, _N))
        # Open loop: arrivals at a fixed interval regardless of
        # completions, ~2 requests per max_wait window.
        interval_s = 0.0005

        def run_load():
            net = _serving_net()
            with InferenceServer(
                net, max_batch=_BATCH, max_wait_ms=1.0, workers=2
            ) as server:
                futures = []
                for x in samples:
                    futures.append(server.submit(x))
                    time.sleep(interval_s)
                responses = [f.result(timeout=60.0) for f in futures]
            return net, responses

        net, responses = benchmark.pedantic(run_load, rounds=1, iterations=1)

        # Served outputs match the direct compiled forward (the serving
        # correctness contract; grouping-independent to FFT accuracy).
        direct = net.inference_forward(samples)
        np.testing.assert_allclose(
            np.stack([r.y for r in responses]), direct, atol=1e-10
        )

        latencies = np.array([r.latency_ms for r in responses])
        batch_sizes = np.array([r.batch_size for r in responses])
        p50, p99 = np.percentile(latencies, [50, 99])
        benchmark.extra_info["p50_ms"] = float(p50)
        benchmark.extra_info["p99_ms"] = float(p99)
        benchmark.extra_info["mean_batch_size"] = float(batch_sizes.mean())
        print(
            f"\nopen loop: {_LOAD_REQUESTS} requests @ "
            f"{1.0 / interval_s:.0f} rps -> p50 {p50:.2f} ms, "
            f"p99 {p99:.2f} ms, mean batch {batch_sizes.mean():.1f}"
        )
        # Sanity bounds, not a perf gate: every request was batched and
        # served well inside the shutdown drain timeout.
        assert batch_sizes.min() >= 1
        assert p99 < 1000.0
