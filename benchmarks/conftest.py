"""Shared helpers for the benchmark suite.

Every ``bench_<id>.py`` regenerates one paper artefact (see DESIGN.md's
per-experiment index), times it with pytest-benchmark, prints the
paper-vs-measured table, and asserts the acceptance bands. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from repro.experiments.tables import ExperimentTable


def report(table: ExperimentTable) -> ExperimentTable:
    """Print a result table and assert every acceptance band."""
    print()
    print(table.render())
    failures = table.failures()
    assert not failures, (
        f"{table.experiment_id}: bands violated for "
        f"{[row.label for row in failures]}"
    )
    return table
