"""Quantization sweep: accuracy vs datapath word length (§4.2, Fig 15 note).

Trains one block-circulant network, then evaluates it at 16/12/8/6/4-bit
fixed point (weights *and* activations). Asserts the paper's two
quantisation facts: 16-bit costs essentially nothing, 4-bit collapses
("the overall accuracy when using 4-bit representation is low", §5.2).
"""

from __future__ import annotations

from repro.datasets import dataset_spec, make_classification_images
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.nn import Adam, BlockCirculantDense, Dense, ReLU, Sequential, Trainer
from repro.quant import accuracy_vs_bits, network_accuracy

from conftest import report


def run_quantization_sweep() -> ExperimentTable:
    table = ExperimentTable(
        "quantization", "accuracy vs fixed-point word length"
    )
    dataset = make_classification_images(
        dataset_spec("mnist"), 768, 384, noise=1.5, seed=0
    )
    flat_train = dataset.x_train.reshape(len(dataset.x_train), -1)
    flat_test = dataset.x_test.reshape(len(dataset.x_test), -1)
    net = Sequential(
        BlockCirculantDense(784, 128, 16, seed=0), ReLU(),
        Dense(128, 10, seed=1),
    )
    trainer = Trainer(net, Adam(net.parameters(), lr=2e-3), seed=0)
    trainer.fit(flat_train, dataset.y_train, epochs=10, batch_size=64)
    baseline = network_accuracy(net, flat_test, dataset.y_test)
    table.add("float64 baseline", baseline, "frac",
              band=BandCheck(low=0.9))
    curve = accuracy_vs_bits(
        net, flat_test, dataset.y_test, bit_widths=(16, 12, 8, 6, 4, 3)
    )
    for bits, accuracy in curve.items():
        table.add(f"{bits}-bit accuracy", accuracy, "frac")
    table.add(
        "16-bit accuracy drop", baseline - curve[16], "frac",
        paper=0.0, band=BandCheck(high=0.02),
        note="§4.2: 16-bit is accurate enough",
    )
    table.add(
        "3-bit relative accuracy", curve[3] / baseline, "frac",
        band=BandCheck(high=0.95),
        note="very low precision visibly degrades (paper: 4-bit AlexNet "
             "<20% top-1)",
    )
    return table


def test_quantization_sweep(benchmark):
    table = benchmark.pedantic(run_quantization_sweep, rounds=1, iterations=1)
    report(table)
