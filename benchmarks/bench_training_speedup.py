"""§3.4: DBN training acceleration (5x-9x wall-clock band).

Runs dense and block-circulant RBMs through the same CD-1 loop and
measures the wall-clock ratio plus the analytic op-count ratio.
"""

from repro.experiments.training_speedup import run_training_speedup

from conftest import report


def test_training_speedup(benchmark):
    table = benchmark.pedantic(run_training_speedup, rounds=1, iterations=1)
    report(table)
    measured = table.row("wall-clock training speedup").measured
    analytic = table.row("operation-count speedup").measured
    assert measured <= analytic
