"""Training-speedup benchmarks: §3.4 DBN acceleration + the spectral tape.

Two gates:

- ``test_training_speedup`` — the paper's §3.4 observation: dense and
  block-circulant RBMs through the same CD-1 loop, wall-clock ratio vs
  the analytic op-count ratio.
- ``TestSpectralTapeTrainStep`` — the training fast path of
  ``docs/spectral_training.md``: one full train step (forward + backward)
  of a dense+conv LeNet-style network on the post-PR path (spectral tape
  reuse + the first layer's input-gradient skip) must beat the seed path
  (per-call weight/input FFTs in backward, einsum conv gradient
  contractions — kept verbatim below, input gradients always computed)
  by >= 1.5x per step, with the FFT budget asserted exactly via
  :class:`repro.fftcore.CountingFFTBackend`: 3 rfft calls per
  block-circulant layer per step instead of the seed's 5.

Set ``BENCH_SMOKE=1`` for the CI variant (fewer timing rounds; every
assertion still runs at full size).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.circulant.ops import (
    block_circulant_backward,
    block_circulant_conv_forward,
    block_circulant_forward,
    partition_vector,
    unpartition_vector,
)
from repro.experiments.training_speedup import run_training_speedup
from repro.fftcore import CountingFFTBackend
from repro.fftcore.backend import get_backend
from repro.nn import Flatten, MaxPool2D, ReLU, Sequential
from repro.nn.block_circulant_conv import BlockCirculantConv2D
from repro.nn.block_circulant_dense import BlockCirculantDense
from repro.nn.im2col import col2im, im2col

from conftest import report

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def test_training_speedup(benchmark):
    table = benchmark.pedantic(run_training_speedup, rounds=1, iterations=1)
    report(table)
    measured = table.row("wall-clock training speedup").measured
    analytic = table.row("operation-count speedup").measured
    assert measured <= analytic


# --- the seed train-step formulation, kept verbatim for comparison -------
#
# Forward is structurally identical to the tape path (same kernels, same
# partition/unpartition); backward re-transforms the weights and the
# inputs/patches and contracts the conv gradients with einsum — exactly
# the pre-tape layer code.

def _seed_dense_forward(layer, x):
    blocks = partition_vector(x, layer.block_size, layer.q)
    out = unpartition_vector(
        block_circulant_forward(layer.weight.value, blocks, layer.backend),
        layer.out_features,
    )
    if layer.bias is not None:
        out = out + layer.bias.value
    return out, blocks


def _seed_dense_backward(layer, blocks, grad_output):
    if layer.bias is not None:
        layer.bias.grad += grad_output.sum(axis=0)
    grad_blocks = partition_vector(grad_output, layer.block_size, layer.p)
    grad_w, grad_x_blocks = block_circulant_backward(
        layer.weight.value, blocks, grad_blocks, layer.backend
    )
    layer.weight.grad += grad_w
    return unpartition_vector(grad_x_blocks, layer.in_features)


def _seed_conv_forward(layer, x):
    be = get_backend(layer.backend)
    batch = x.shape[0]
    out_h, out_w = layer.output_shape(x.shape[2], x.shape[3])
    positions = out_h * out_w
    cols = im2col(x, layer.field, layer.stride, layer.padding)
    patches = cols.transpose(0, 1, 3, 4, 2).reshape(
        batch * positions, layer.field**2, layer.in_channels
    )
    patch_blocks = layer._partition_patches(patches)
    k = layer.block_size
    y_blocks = block_circulant_conv_forward(
        layer.weight.value, patch_blocks, be
    )
    out = y_blocks.reshape(batch * positions, layer.pp * k)
    out = out[:, : layer.out_channels]
    if layer.bias is not None:
        out = out + layer.bias.value
    out = (
        out.reshape(batch, positions, layer.out_channels)
        .transpose(0, 2, 1)
        .reshape(batch, layer.out_channels, out_h, out_w)
    )
    return out, (patch_blocks, x.shape, (batch, out_h, out_w))


def _seed_conv_backward(layer, state, grad_output):
    patch_blocks, input_shape, (batch, out_h, out_w) = state
    be = get_backend(layer.backend)
    positions = out_h * out_w
    k = layer.block_size
    grad_flat = grad_output.reshape(
        batch, layer.out_channels, positions
    ).transpose(0, 2, 1).reshape(batch * positions, layer.out_channels)
    if layer.bias is not None:
        layer.bias.grad += grad_flat.sum(axis=0)
    if layer.out_channels < layer.pp * k:
        padded = np.zeros((batch * positions, layer.pp * k))
        padded[:, : layer.out_channels] = grad_flat
        grad_flat = padded
    grad_blocks = grad_flat.reshape(batch * positions, layer.pp, k)
    wf = be.rfft(layer.weight.value)
    pf = be.rfft(patch_blocks)
    gf = be.rfft(grad_blocks)
    grad_wf = np.einsum("bif,bsjf->sijf", gf, np.conj(pf), optimize=True)
    grad_pf = np.einsum("sijf,bif->bsjf", np.conj(wf), gf, optimize=True)
    layer.weight.grad += be.irfft(grad_wf, n=k)
    grad_patches = be.irfft(grad_pf, n=k).reshape(
        batch * positions, layer.field**2, layer.qc * k
    )[:, :, : layer.in_channels]
    grad_cols = grad_patches.reshape(
        batch, positions, layer.field, layer.field, layer.in_channels
    ).transpose(0, 1, 4, 2, 3)
    return col2im(
        grad_cols, input_shape, layer.field, layer.stride, layer.padding
    )


def _seed_step(net, x, grad):
    """One forward+backward on the seed (pre-tape) formulation."""
    net.zero_grad()
    states, out = [], x
    for layer in net.layers:
        if isinstance(layer, BlockCirculantDense):
            out, state = _seed_dense_forward(layer, out)
        elif isinstance(layer, BlockCirculantConv2D):
            out, state = _seed_conv_forward(layer, out)
        else:
            out, state = layer.forward(out), None
        states.append(state)
    g = grad
    for layer, state in zip(reversed(net.layers), reversed(states)):
        if isinstance(layer, BlockCirculantDense):
            g = _seed_dense_backward(layer, state, g)
        elif isinstance(layer, BlockCirculantConv2D):
            g = _seed_conv_backward(layer, state, g)
        else:
            g = layer.backward(g)
    return out, g


def _tape_step(net, x, grad):
    """One forward+backward on the spectral-tape path (the layers' own)."""
    net.zero_grad()
    out = net.forward(x)
    return out, net.backward(grad)


# LeNet-style dense+conv config. A full step is ~tens of milliseconds,
# so even CI smoke runs the real sizes — BENCH_SMOKE only trims rounds
# (smaller steps proved too jittery for a reliable ratio gate).
_H, _FIELD, _BATCH = 28, 5, 16
_C1, _C2, _K_CONV, _HIDDEN, _CLASSES = 16, 32, 8, 128, 10
_ROUNDS = 12 if BENCH_SMOKE else 20


def _lenet(backend=None):
    net = Sequential(
        BlockCirculantConv2D(1, _C1, _FIELD, 4, seed=0, backend=backend),
        ReLU(),
        MaxPool2D(2),
        BlockCirculantConv2D(
            _C1, _C2, _FIELD, _K_CONV, seed=1, backend=backend
        ),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
    )
    h = (_H - _FIELD + 1) // 2
    h = (h - _FIELD + 1) // 2
    net.add(
        BlockCirculantDense(
            _C2 * h * h, _HIDDEN, _K_CONV, seed=2, backend=backend
        )
    )
    net.add(ReLU())
    net.add(
        BlockCirculantDense(_HIDDEN, _CLASSES, 2, seed=3, backend=backend)
    )
    return net


class TestSpectralTapeTrainStep:
    """Acceptance gate: tape train step >= 1.5x the seed step."""

    def test_fft_call_counts_exact(self, benchmark):
        # 4 block-circulant layers; the tape leaves one rfft per distinct
        # tensor (w, x/patches, grad) per layer, the seed path re-issues
        # the first two in backward. (benchmark.pedantic keeps the test
        # running under --benchmark-only, which CI uses.)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 1, _H, _H))
        be = CountingFFTBackend("numpy")
        net = _lenet(backend=be)
        out = net.forward(x)
        grad = rng.normal(size=out.shape)

        def count_both():
            be.reset()
            _tape_step(net, x, grad)
            tape_rffts = be.counts["rfft"]
            be.reset()
            _seed_step(net, x, grad)
            return tape_rffts, be.counts["rfft"]

        tape_rffts, seed_rffts = benchmark.pedantic(
            count_both, rounds=1, iterations=1
        )
        assert tape_rffts == 3 * 4
        assert seed_rffts == 5 * 4

    def test_tape_step_beats_seed_step(self, benchmark):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(_BATCH, 1, _H, _H))
        net = _lenet()
        out = net.forward(x)
        grad = rng.normal(size=out.shape)

        # Same step, same weights: outputs bit-identical, gradients equal
        # to GEMM-vs-einsum roundoff.
        out_seed, gin_seed = _seed_step(net, x, grad)
        seed_grads = [p.grad.copy() for p in net.parameters()]
        out_tape, gin_tape = _tape_step(net, x, grad)
        np.testing.assert_array_equal(out_tape, out_seed)
        np.testing.assert_allclose(gin_tape, gin_seed, atol=1e-10)
        for param, seed_grad in zip(net.parameters(), seed_grads):
            np.testing.assert_allclose(param.grad, seed_grad, atol=1e-10)

        # Timed comparison: the full post-PR train step — tape reuse plus
        # the first layer's input-gradient skip (its ∂L/∂x, the largest
        # GEMM + inverse FFT of the conv backward, feeds nothing) —
        # against the pre-PR step, which always computed everything.
        # Rounds are interleaved in pairs so machine-load drift hits both
        # paths alike; min-of-rounds approximates uncontended capability.
        net.layers[0].needs_input_grad = False
        benchmark.pedantic(
            _tape_step, args=(net, x, grad),
            rounds=5, iterations=1, warmup_rounds=1,
        )
        seed_times, tape_times = [], []
        for _ in range(_ROUNDS):
            t0 = time.perf_counter()
            _seed_step(net, x, grad)
            t1 = time.perf_counter()
            _tape_step(net, x, grad)
            tape_times.append(time.perf_counter() - t1)
            seed_times.append(t1 - t0)
        seed_time = min(seed_times)
        tape_time = min(min(tape_times), benchmark.stats.stats.min)

        speedup = seed_time / tape_time
        benchmark.extra_info["seed_step_us"] = seed_time * 1e6
        benchmark.extra_info["speedup_vs_seed"] = speedup
        print(
            f"\nLeNet {_H}x{_H}, batch {_BATCH}: seed step "
            f"{seed_time * 1e6:.0f} us vs tape step "
            f"{tape_time * 1e6:.0f} us ({speedup:.1f}x)"
        )
        assert speedup >= 1.5, (
            f"spectral tape only {speedup:.2f}x over the seed train step"
        )
