"""Execution-plan autotuner benchmark: measured per-layer backend selection.

The acceptance story of ``docs/execution_plans.md``: a LeNet-style
block-circulant network is deliberately mis-configured onto the pure-python
``radix2`` FFT backend on every spectral layer — the kind of uniform
default a config file bakes in. The autotuner
(:func:`repro.plan.tune`) calibrates the candidate backends at the
network's actual FFT sizes, prunes the plan space with the arch-model
prior, measures the surviving candidates with real compiled forwards, and
asserts bit-compatibility between backends explicitly.

CI gates (``BENCH_SMOKE=1`` shrinks the batch and timing rounds only —
every assertion still runs):

- the autotuned plan recovers **>= 2x** end-to-end compiled-forward
  latency over the as-built radix2 configuration, by per-layer backend
  selection alone;
- the winning plan's output stays within the tuner's bit-compatibility
  tolerance of the default-backend reference (asserted per candidate);
- the autotuned plan is never more than **10% slower** than the uniform
  default-backend plan on the same network — tuning must not lose to the
  obvious baseline.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn import (
    BlockCirculantConv2D,
    BlockCirculantDense,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.plan import tune

from conftest import report
from repro.experiments.tables import BandCheck, ExperimentTable

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

_BATCH = 8 if BENCH_SMOKE else 32
_REPEATS = 3 if BENCH_SMOKE else 5
_TOLERANCE = 1e-9


def _lenet_radix2() -> Sequential:
    """LeNet-5-shaped block-circulant net, every spectral layer on radix2.

    Shapes follow :func:`repro.models.lenet.lenet5_spec` (28x28 inputs,
    400-wide fc1); block sizes are powers of two because the radix2
    kernels require them (the non-divisible dims are padded internally).
    """
    return Sequential(
        BlockCirculantConv2D(1, 8, 5, block_size=4, padding=2, seed=1,
                             backend="radix2"),
        ReLU(),
        MaxPool2D(2),
        BlockCirculantConv2D(8, 16, 5, block_size=4, seed=2,
                             backend="radix2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        BlockCirculantDense(400, 120, 16, seed=3, backend="radix2"),
        ReLU(),
        BlockCirculantDense(120, 84, 8, seed=4, backend="radix2"),
        ReLU(),
        Dense(84, 10, seed=5),
    )


def run_plan_autotune() -> ExperimentTable:
    table = ExperimentTable(
        "plan_autotune",
        "autotuned execution plan vs as-built radix2 LeNet",
    )
    rng = np.random.default_rng(0)
    net = _lenet_radix2()
    x = rng.normal(size=(_BATCH, 1, 28, 28))

    result = tune(
        net, x, backends=("numpy", "radix2"), tolerance=_TOLERANCE,
        repeats=_REPEATS,
    )

    table.add("as-built radix2 forward", result.baseline_seconds * 1e3, "ms")
    table.add("autotuned forward", result.best_seconds * 1e3, "ms")
    table.add(
        "autotune speedup vs as-built", result.speedup, "x",
        band=BandCheck(low=2.0),
        note="per-layer backend selection must recover >= 2x",
    )

    # Bit compatibility is part of the contract, not a best effort: the
    # winner (and every admitted candidate) stayed within tolerance of
    # the default-backend reference at the same word lengths.
    best = next(
        c for c in result.candidates if c.plan == result.best and c.admitted
    )
    table.add(
        "winner max relative error vs reference", best.max_rel_err, "",
        band=BandCheck(high=_TOLERANCE),
    )
    assert all(
        c.max_rel_err <= _TOLERANCE for c in result.candidates if c.admitted
    )

    # Tuning must never lose to the obvious uniform default by more than
    # the measurement-noise budget.
    uniform = next(
        c for c in result.candidates if c.label == "uniform-default"
    )
    table.add(
        "autotuned vs uniform default",
        result.best_seconds / uniform.seconds, "ratio",
        band=BandCheck(high=1.10),
        note="an autotuned plan may not be > 10% slower than uniform",
    )
    return table


def test_plan_autotune_recovers_speedup(benchmark):
    table = benchmark.pedantic(run_plan_autotune, rounds=1, iterations=1)
    report(table)
