"""Recurrent-layer benchmark: spectral LSTM steps vs per-step dense einsum.

The acceptance story of ``docs/recurrent.md``: a compiled
:class:`~repro.nn.recurrent.BlockCirculantLSTM` runs a whole sequence
with its eight gate spectra computed **once** (at compile time, reused
every timestep of every request), the input-to-hidden projections for
all timesteps batched through one FFT, and only the hidden-to-hidden
projections paying one FFT round per step. The baseline is what the seed
architecture would have done instead: materialise the gate matrices
dense and run eight einsum matmuls per timestep.

CI gates (``BENCH_SMOKE=1`` shrinks the batch and sequence length only —
every assertion still runs):

- the compiled spectral LSTM is **>= 2x** faster than the per-step dense
  einsum reference over the same sequence batch
  (``BENCH_RNN_MIN_SPEEDUP`` overrides the factor);
- both paths agree to float64 round-off on every output;
- the per-sequence FFT budget is exact: ``1 + T`` forward transforms and
  ``4 + 4T`` inverse transforms for a compiled forward over ``T`` steps,
  and **zero** weight-spectrum FFTs after compile — the counts are
  asserted with :class:`~repro.fftcore.backend.CountingFFTBackend`, not
  estimated.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.fftcore import CountingFFTBackend, get_backend
from repro.nn import BlockCirculantLSTM, Sequential

from conftest import report
from repro.experiments.tables import BandCheck, ExperimentTable

BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

_FEATURES = 512
_BLOCK = 32
_BATCH = 4 if BENCH_SMOKE else 8
_STEPS = 12 if BENCH_SMOKE else 24
_REPEATS = 3 if BENCH_SMOKE else 5
_MIN_SPEEDUP = float(os.environ.get("BENCH_RNN_MIN_SPEEDUP", "2.0"))


def _dense_gates(lstm: BlockCirculantLSTM) -> dict[str, np.ndarray | None]:
    """The gate matrices materialised dense — the seed-style baseline."""
    dense: dict[str, np.ndarray | None] = {}
    for name, gate in lstm.named_children():
        dense[name] = gate.to_dense_matrix()
        dense[name + "_bias"] = (
            None if gate.bias is None else gate.bias.value
        )
    return dense


def _einsum_lstm(dense: dict, x: np.ndarray, hidden: int) -> np.ndarray:
    """Per-step dense einsum LSTM — one matmul per gate per timestep."""

    def sigmoid(a: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-a))

    def gate(name: str, row: np.ndarray) -> np.ndarray:
        out = np.einsum("bn,hn->bh", row, dense[name])
        bias = dense[name + "_bias"]
        return out if bias is None else out + bias

    batch, steps, _ = x.shape
    h = np.zeros((batch, hidden))
    c = np.zeros((batch, hidden))
    ys = np.empty((batch, steps, hidden))
    for t in range(steps):
        xt = x[:, t]
        i = sigmoid(gate("xi", xt) + gate("hi", h))
        f = sigmoid(gate("xf", xt) + gate("hf", h))
        g = np.tanh(gate("xg", xt) + gate("hg", h))
        o = sigmoid(gate("xo", xt) + gate("ho", h))
        c = f * c + i * g
        h = o * np.tanh(c)
        ys[:, t] = h
    return ys


def _time(fn, repeats: int) -> float:
    fn()  # warm caches and allocators outside the timed region
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - begin)
    return best


def run_rnn_step() -> ExperimentTable:
    table = ExperimentTable(
        "rnn_step",
        "compiled spectral LSTM vs per-step dense einsum RNN",
    )
    rng = np.random.default_rng(0)
    lstm = BlockCirculantLSTM(_FEATURES, _FEATURES, _BLOCK, seed=1)
    net = Sequential(lstm)
    net.compile_inference()
    dense = _dense_gates(lstm)
    x = rng.normal(size=(_BATCH, _STEPS, _FEATURES))

    spectral_seconds = _time(lambda: net.inference_forward(x), _REPEATS)
    dense_seconds = _time(
        lambda: _einsum_lstm(dense, x, _FEATURES), _REPEATS
    )

    # Both paths compute the same recurrence; the spectral one must not
    # buy its speed with accuracy.
    gap = float(np.max(np.abs(
        net.inference_forward(x) - _einsum_lstm(dense, x, _FEATURES)
    )))
    table.add(
        "max abs error vs dense einsum", gap, "",
        band=BandCheck(high=1e-10),
    )

    per_step = _BATCH * _STEPS
    table.add(
        "dense einsum sequence forward",
        dense_seconds * 1e3 / per_step, "ms/step",
    )
    table.add(
        "compiled spectral sequence forward",
        spectral_seconds * 1e3 / per_step, "ms/step",
    )
    table.add(
        "spectral speedup vs dense einsum",
        dense_seconds / spectral_seconds, "x",
        band=BandCheck(low=_MIN_SPEEDUP),
        note="cached gate spectra + batched input FFTs must win >= "
             f"{_MIN_SPEEDUP:g}x",
    )

    # The FFT economics are a contract, not an observation: count the
    # actual transform calls of a compiled forward.
    counting = CountingFFTBackend(get_backend("numpy"))
    counted = Sequential(
        BlockCirculantLSTM(
            _FEATURES, _FEATURES, _BLOCK, seed=1, backend=counting
        )
    )
    counted.compile_inference()
    assert counting.counts.get("rfft", 0) == 8, (
        "compile must transform each of the 8 gate weights exactly once"
    )
    counting.reset()
    counted.inference_forward(x)
    assert counting.counts.get("rfft", 0) == 1 + _STEPS
    assert counting.counts.get("irfft", 0) == 4 + 4 * _STEPS
    table.add(
        "forward transforms per sequence (T steps)",
        counting.counts["rfft"], "calls",
        note="1 batched input FFT + 1 hidden FFT per step; weight "
             "spectra cached at compile",
    )
    table.add(
        "inverse transforms per sequence (T steps)",
        counting.counts["irfft"], "calls",
    )
    return table


def test_rnn_spectral_step_beats_dense_einsum(benchmark):
    table = benchmark.pedantic(run_rnn_step, rounds=1, iterations=1)
    report(table)
