"""§4.3: (p, d) design-space worked example and Algorithm 3.

Regenerates the block-128 Cyclone V example: p 16->32 gives ~+53.8%
performance for <10% power; d 1->2 gives ~+62.2% for ~+7.8%; Algorithm 3's
ternary searches land on a wide-p, d<=3 design.
"""

from repro.experiments.sec43 import run_sec43

from conftest import report


def test_sec43_design_space(benchmark):
    table = benchmark(run_sec43)
    report(table)
    assert table.row("Algorithm 3 chosen d").measured <= 3
