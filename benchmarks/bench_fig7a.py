"""Fig 7(a): FC-layer storage savings + §3.4 whole-model reduction.

Regenerates the per-dataset storage-saving bars (400x-4000+x band) and the
30-50x whole-model claim. Pure shape arithmetic, so the benchmark measures
the accounting path itself.
"""

from repro.experiments.fig7 import run_fig7a

from conftest import report


def test_fig7a_storage_savings(benchmark):
    table = benchmark(run_fig7a)
    report(table)
    assert table.row("max FC saving").measured >= 400.0
