"""Fig 13: FPGA performance / energy-efficiency comparison.

Maps AlexNet (FC + CONV block plans) onto the Cyclone V simulator and
compares against the four published FPGA reference points; asserts the
paper's 11-16x and 60-70x improvement bands (with tolerance) and the
honesty check that ESE keeps the raw-throughput lead.
"""

from repro.experiments.fig13 import run_fig13

from conftest import report


def test_fig13_fpga_comparison(benchmark):
    table = benchmark(run_fig13)
    report(table)
    assert table.row("throughput vs ESE").measured < 1.0
