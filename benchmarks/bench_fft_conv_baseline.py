"""§2.3 baseline: LeCun FFT convolution vs im2col vs block-circulant CONV.

The paper's related-work argument, measured: FFT convolution gives no
weight compression and *adds* spectrum storage for small filters, while
block-circulant CONV compresses weights by k and cuts operations. Also
times the three kernels on equal geometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.complexity import block_circulant_conv_work
from repro.experiments.tables import BandCheck, ExperimentTable
from repro.models.descriptors import ConvSpec
from repro.nn import BlockCirculantConv2D, Conv2D, FFTConv2D
from repro.nn.fft_conv import fft_conv_extra_storage_factor

from conftest import report


GEOMETRY = dict(in_channels=32, out_channels=32, field=3, padding=1)
IMAGE = (4, 32, 16, 16)


def run_fft_conv_comparison() -> ExperimentTable:
    table = ExperimentTable(
        "fft_conv_baseline", "LeCun FFT conv [52] vs block-circulant CONV"
    )
    conv = Conv2D(seed=0, **GEOMETRY)
    fft_conv = FFTConv2D(
        GEOMETRY["in_channels"], GEOMETRY["out_channels"],
        GEOMETRY["field"], padding=GEOMETRY["padding"], seed=0,
    )
    circulant = BlockCirculantConv2D(block_size=8, seed=0, **GEOMETRY)

    table.add("im2col conv weights", conv.weight.size, "params")
    table.add(
        "FFT conv weights", fft_conv.weight.size, "params",
        band=BandCheck(low=conv.weight.size),
        note="§2.3: no weight compression",
    )
    table.add(
        "FFT conv spectrum storage factor",
        fft_conv_extra_storage_factor(16, 16, 3), "x",
        band=BandCheck(low=2.0),
        note="§2.3: 'additional storage space is needed'",
    )
    table.add(
        "block-circulant weights", circulant.weight.size, "params",
        band=BandCheck(high=conv.weight.size / 4),
        note="compression by ~k",
    )
    spec = ConvSpec("conv", 32, 32, 3, in_hw=(16, 16), padding=1)
    dense_ops = 2 * spec.macs
    circulant_ops = block_circulant_conv_work(spec, 8).total_real_ops
    table.add(
        "block-circulant op reduction", dense_ops / circulant_ops, "x",
        band=BandCheck(low=1.5),
        note="asymptotic speedup, which [52] lacks",
    )
    # Numerical agreement of all three on the same expanded filters.
    x = np.random.default_rng(0).normal(size=IMAGE)
    fft_conv.weight.value = conv.weight.value.copy()
    fft_conv.bias.value = conv.bias.value.copy()
    agreement = float(
        np.max(np.abs(conv.forward(x) - fft_conv.forward(x)))
    )
    table.add("im2col vs FFT conv max |diff|", agreement, "",
              band=BandCheck(high=1e-8))
    return table


def test_fft_conv_comparison(benchmark):
    table = benchmark.pedantic(
        run_fft_conv_comparison, rounds=1, iterations=1
    )
    report(table)


@pytest.mark.parametrize(
    "layer_name", ["im2col", "fft", "block_circulant"]
)
def test_conv_kernel_timing(benchmark, layer_name):
    """Wall-clock of the three CONV kernels on identical geometry."""
    rng = np.random.default_rng(0)
    x = rng.normal(size=IMAGE)
    if layer_name == "im2col":
        layer = Conv2D(seed=0, **GEOMETRY)
    elif layer_name == "fft":
        layer = FFTConv2D(
            GEOMETRY["in_channels"], GEOMETRY["out_channels"],
            GEOMETRY["field"], padding=GEOMETRY["padding"], seed=0,
        )
    else:
        layer = BlockCirculantConv2D(block_size=8, seed=0, **GEOMETRY)
    benchmark(layer.forward, x)
