"""§5.3: embedded ARM Cortex-A9 inference.

Regenerates the LeNet-5 0.9 ms/image result, the TrueNorth and Tesla C2075
comparisons, and the AlexNet-FC 667-vs-573 layers/s ARM-beats-GPU row.
"""

from repro.experiments.sec53 import run_sec53

from conftest import report


def test_sec53_embedded_arm(benchmark):
    table = benchmark(run_sec53)
    report(table)
    assert table.row("AlexNet-FC ARM vs GPU").measured > 1.0
