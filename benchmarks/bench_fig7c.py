"""Fig 7(c): whole-model storage saving with block-circulant FC + CONV.

Regenerates the whole-model bars and the comparison against Han et al.'s
pruning ratios (12x LeNet-5, 9x AlexNet), which CirCNN must beat.
"""

from repro.experiments.fig7 import run_fig7c

from conftest import report


def test_fig7c_whole_model_savings(benchmark):
    table = benchmark(run_fig7c)
    report(table)
    assert table.row("lenet5 vs pruning").measured > 1.0
    assert table.row("alexnet vs pruning").measured > 1.0
