"""Tests for the experiments CLI and cross-cutting property checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.__main__ import main as cli_main


class TestCLI:
    def test_no_args_lists_experiments(self, capsys):
        assert cli_main([]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "sec43" in out

    def test_run_single_experiment(self, capsys):
        assert cli_main(["sec43"]) == 0
        out = capsys.readouterr().out
        assert "design optimisation example" in out
        assert "all paper bands hold" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            cli_main(["fig99"])


class TestArchMonotonicityProperties:
    """Sanity laws the simulator must obey for any configuration."""

    @given(
        p=st.sampled_from([4, 8, 16, 32, 64]),
        d=st.sampled_from([1, 2, 3]),
        log_k=st.integers(min_value=3, max_value=10),
        count=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_fft_cycles_monotone_in_work(self, p, d, log_k, count):
        from repro.arch import (
            ArchitectureConfig,
            BasicComputingBlock,
            EnergyModel,
            MemorySubsystem,
        )

        config = ArchitectureConfig(
            parallelism=p, depth=d, frequency_hz=2e8, multipliers=64,
            alus=64, memory_words_per_cycle=64,
        )
        block = BasicComputingBlock(
            config,
            EnergyModel(1e-12, 1e-13, 1e-14),
            MemorySubsystem(1 << 20, 1e-13),
        )
        k = 2**log_k
        fewer = block.run_ffts(k, count)
        more = block.run_ffts(k, count + 1)
        assert more.cycles > fewer.cycles
        assert more.total_energy_j > fewer.total_energy_j
        # Utilisation never exceeds 1 (can't beat the lane count).
        assert 0.0 < fewer.utilization <= 1.0

    @given(
        p_small=st.sampled_from([4, 8, 16]),
        d=st.sampled_from([1, 2, 3]),
        log_k=st.integers(min_value=5, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_parallelism_never_slower(self, p_small, d, log_k):
        from repro.arch import (
            ArchitectureConfig,
            BasicComputingBlock,
            EnergyModel,
            MemorySubsystem,
        )

        def cycles(p: int) -> int:
            config = ArchitectureConfig(
                parallelism=p, depth=d, frequency_hz=2e8, multipliers=64,
                alus=64, memory_words_per_cycle=64,
            )
            block = BasicComputingBlock(
                config,
                EnergyModel(1e-12, 1e-13, 1e-14),
                MemorySubsystem(1 << 20, 1e-13),
            )
            return block.run_ffts(2**log_k, 10).cycles

        assert cycles(2 * p_small) <= cycles(p_small)

    @given(sparsity=st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_miss_rate_monotone_in_irregularity(self, sparsity):
        from repro.arch import CacheModel, pruned_sparse_access_pattern

        cache = CacheModel()
        base = cache.miss_rate(pruned_sparse_access_pattern(0.0))
        worse = cache.miss_rate(pruned_sparse_access_pattern(sparsity))
        assert worse >= base - 1e-12


class TestStorageProperties:
    @given(
        m=st.integers(min_value=1, max_value=4096),
        n=st.integers(min_value=1, max_value=4096),
        log_k=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_compressed_params_bounds(self, m, n, log_k):
        """Padding never more than doubles each block-grid dimension, so
        compressed storage is within 4x of the ideal mn/k (and never
        exceeds padded-dense)."""
        from repro.models.descriptors import CompressionPlan, DenseSpec

        k = 2**log_k
        plan = CompressionPlan(block_sizes={"fc": k})
        layer = DenseSpec("fc", n, m)
        params = plan.compressed_params(layer)
        ideal = max(1, (m * n) // k)
        assert params >= min(ideal, m * n / k)
        p, q = -(-m // k), -(-n // k)
        assert params == p * q * k
        assert params <= (m + k - 1) * (n + k - 1) // k + k * (p + q)

    @given(
        params=st.integers(min_value=1, max_value=10**8),
        sparsity=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_pruned_storage_never_negative_and_index_bound(self, params,
                                                           sparsity):
        from repro.compress import pruned_storage

        report = pruned_storage(params, sparsity)
        assert report.total_bits >= 0
        assert report.index_bits_total == report.weight_params * 4


class TestQuantProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        bits=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantize_idempotent_property(self, seed, bits):
        from repro.quant import FixedPointFormat

        rng = np.random.default_rng(seed)
        fmt = FixedPointFormat(bits, bits - 2)
        x = rng.normal(size=32)
        once = fmt.quantize(x)
        np.testing.assert_array_equal(fmt.quantize(once), once)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_more_bits_never_worse(self, seed):
        from repro.quant import quantize_tensor

        rng = np.random.default_rng(seed)
        x = rng.normal(size=128)
        errors = [
            float(np.mean((quantize_tensor(x, bits) - x) ** 2))
            for bits in (4, 8, 12, 16)
        ]
        assert all(a >= b - 1e-18 for a, b in zip(errors, errors[1:]))
