"""Tests for the architecture simulator components."""

from __future__ import annotations

import math

import pytest

from repro.arch import (
    ArchitectureConfig,
    BasicComputingBlock,
    EnergyModel,
    MemorySubsystem,
    PeripheralComputingBlock,
    pipeline_scheme,
)
from repro.arch.memory import DRAM_TO_SRAM_ENERGY_RATIO
from repro.errors import ConfigurationError, NotPowerOfTwoError


def _config(**overrides) -> ArchitectureConfig:
    defaults = dict(
        parallelism=16, depth=2, frequency_hz=200e6, multipliers=64,
        alus=128, memory_words_per_cycle=64, data_bits=16,
    )
    defaults.update(overrides)
    return ArchitectureConfig(**defaults)


def _energy() -> EnergyModel:
    return EnergyModel(
        mult_energy_j=1e-12, add_energy_j=1e-13, register_energy_j=1e-14
    )


def _memory() -> MemorySubsystem:
    return MemorySubsystem(
        on_chip_capacity_bytes=1 << 20, sram_bit_energy_j=1e-13
    )


class TestArchitectureConfig:
    def test_butterfly_units(self):
        assert _config(parallelism=32, depth=3).butterfly_units == 96

    def test_with_pd(self):
        config = _config().with_pd(parallelism=8)
        assert config.parallelism == 8
        assert config.depth == 2

    def test_depth_bound(self):
        with pytest.raises(ConfigurationError):
            _config(depth=4)
        with pytest.raises(ConfigurationError):
            _config(depth=0)

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            _config(parallelism=0)
        with pytest.raises(ConfigurationError):
            _config(frequency_hz=0)
        with pytest.raises(ConfigurationError):
            _config(memory_words_per_cycle=0)


class TestEnergyModel:
    def test_composite_ops(self):
        model = _energy()
        assert model.butterfly_energy_j == pytest.approx(4e-12 + 6e-13)
        assert model.complex_mult_energy_j == pytest.approx(4e-12 + 2e-13)
        assert model.mac_energy_j == pytest.approx(1.1e-12)

    def test_bit_scaling(self):
        model = _energy()
        scaled = model.scaled(bits=4)
        # Multiplier quadratic, adder linear.
        assert scaled.mult_energy_j == pytest.approx(1e-12 / 16)
        assert scaled.add_energy_j == pytest.approx(1e-13 / 4)

    def test_voltage_scaling(self):
        scaled = _energy().scaled(voltage=0.5)
        assert scaled.mult_energy_j == pytest.approx(0.25e-12)

    def test_combined_near_threshold_scaling(self):
        # The Fig 15 lever: 16->4 bits at 0.55 V shrinks multiplier energy
        # by (1/16) * 0.3 ~ 53x.
        scaled = _energy().scaled(bits=4, voltage=0.55)
        factor = _energy().mult_energy_j / scaled.mult_energy_j
        assert factor == pytest.approx(16 / 0.55**2, rel=1e-6)

    def test_invalid_scaling(self):
        with pytest.raises(ConfigurationError):
            _energy().scaled(bits=1)
        with pytest.raises(ConfigurationError):
            _energy().scaled(voltage=0.0)


class TestMemorySubsystem:
    def test_dram_ratio_default_is_papers_200x(self):
        memory = _memory()
        ratio = memory.effective_dram_bit_energy_j / memory.sram_bit_energy_j
        assert ratio == DRAM_TO_SRAM_ENERGY_RATIO

    def test_fits_on_chip(self):
        memory = _memory()
        assert memory.fits_on_chip(1 << 19)
        assert not memory.fits_on_chip(1 << 21)

    def test_weight_energy_on_chip(self):
        memory = _memory()
        energy = memory.weight_access_energy_j(1000, 16, model_bytes=1 << 18)
        assert energy == pytest.approx(
            1000 * 16 * memory.scaled_sram_bit_energy_j()
        )

    def test_weight_energy_with_dram_overflow(self):
        memory = _memory()
        on_chip = memory.weight_access_energy_j(1000, 16, 1 << 19)
        overflow = memory.weight_access_energy_j(1000, 16, 1 << 22)
        # 75% of the traffic pays the 200x DRAM energy against the
        # capacity-scaled on-chip energy: a >30x blow-up.
        assert overflow > 30 * on_chip

    def test_capacity_scaling_monotone(self):
        small = MemorySubsystem(64 * 1024, 1e-13)
        large = MemorySubsystem(16 << 20, 1e-13)
        assert large.scaled_sram_bit_energy_j() > small.scaled_sram_bit_energy_j()

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MemorySubsystem(0, 1e-13)


class TestBasicComputingBlock:
    def _block(self, **overrides) -> BasicComputingBlock:
        return BasicComputingBlock(_config(**overrides), _energy(), _memory())

    def test_level_groups(self):
        block = self._block(depth=2)
        assert block.level_groups(128) == 4   # ceil(7 / 2)
        assert block.level_groups(2) == 1
        assert self._block(depth=3).level_groups(128) == 3

    def test_cycle_formula(self):
        # 64-point real FFT: 6 levels, 16 butterflies/level.
        block = self._block(parallelism=16, depth=2)
        report = block.run_ffts(64, count=10)
        assert report.cycles == 10 * 3 * 1  # ceil(6/2) groups x 1 cycle

    def test_small_fft_underutilises(self):
        # A size-8 FFT has 2 butterflies per level; p = 16 lanes mostly idle.
        block = self._block(parallelism=16, depth=1)
        report = block.run_ffts(8, count=100)
        assert report.utilization < 0.2
        big = block.run_ffts(256, count=100)
        assert big.utilization > report.utilization

    def test_doubling_p_helps_only_large_ffts(self):
        narrow = self._block(parallelism=16, depth=1)
        wide = self._block(parallelism=32, depth=1)
        large_gain = (
            narrow.run_ffts(256, 10).cycles / wide.run_ffts(256, 10).cycles
        )
        small_gain = (
            narrow.run_ffts(16, 10).cycles / wide.run_ffts(16, 10).cycles
        )
        assert large_gain == pytest.approx(2.0)
        assert small_gain == pytest.approx(1.0)

    def test_depth_reduces_memory_traffic(self):
        # §4.3: larger d means fewer level-group round trips.
        shallow = self._block(depth=1).run_ffts(128, 10)
        deep = self._block(depth=2).run_ffts(128, 10)
        assert deep.traffic_words < shallow.traffic_words

    def test_energy_components_positive(self):
        report = self._block().run_ffts(64, 5)
        assert report.compute_energy_j > 0
        assert report.traffic_energy_j > 0
        assert report.twiddle_energy_j > 0
        assert report.total_energy_j == pytest.approx(
            report.compute_energy_j + report.traffic_energy_j
            + report.twiddle_energy_j
        )

    def test_zero_count(self):
        report = self._block().run_ffts(64, 0)
        assert report.cycles == 0
        assert report.total_energy_j == 0.0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(NotPowerOfTwoError):
            self._block().run_ffts(48, 4)

    def test_butterfly_count_matches_ops_counter(self):
        from repro.fftcore import real_fft_butterflies

        report = self._block().run_ffts(128, 7)
        assert report.butterflies == 7 * real_fft_butterflies(128)


class TestPeripheralBlock:
    def _peripheral(self, **overrides) -> PeripheralComputingBlock:
        return PeripheralComputingBlock(_config(**overrides), _energy())

    def test_cycle_accounting(self):
        block = self._peripheral(multipliers=64, alus=128)
        report = block.run(cmult=160, cadd=0, scalar_ops=0)
        assert report.cycles == math.ceil(160 * 4 / 64)

    def test_energy_accounting(self):
        block = self._peripheral()
        report = block.run(cmult=10, cadd=5, scalar_ops=0)
        expected = 10 * _energy().complex_mult_energy_j + 5 * 2 * _energy().add_energy_j
        assert report.energy_j == pytest.approx(expected)

    def test_zero_work(self):
        report = self._peripheral().run(0, 0, 0)
        assert report.cycles == 0
        assert report.energy_j == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            self._peripheral().run(-1, 0, 0)


class TestPipelineSchemes:
    def test_inter_level_is_neutral(self):
        scheme = pipeline_scheme("inter_level")
        assert scheme.effective_frequency(200e6) == 200e6
        assert scheme.effective_cycles(100) == 100
        assert scheme.register_writes_per_butterfly == 0

    def test_intra_level_boosts_frequency_with_overheads(self):
        scheme = pipeline_scheme("intra_level")
        assert scheme.effective_frequency(200e6) == 400e6
        assert scheme.effective_cycles(100) > 100
        assert scheme.register_writes_per_butterfly > 0

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            pipeline_scheme("superscalar")
