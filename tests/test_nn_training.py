"""Tests for Sequential, optimisers and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    Adam,
    BlockCirculantDense,
    Dense,
    Dropout,
    ReLU,
    SGD,
    Sequential,
    Trainer,
)
from repro.nn.module import Parameter
from repro.nn.training import iterate_minibatches


def _toy_problem(rng, n=200, dims=12, classes=3):
    centers = rng.normal(scale=2.5, size=(classes, dims))
    labels = rng.integers(0, classes, size=n)
    data = centers[labels] + rng.normal(scale=0.4, size=(n, dims))
    return data, labels


class TestSequential:
    def test_forward_backward_chain(self, rng):
        net = Sequential(Dense(6, 4, seed=0), ReLU(), Dense(4, 2, seed=1))
        x = rng.normal(size=(3, 6))
        out = net(x)
        assert out.shape == (3, 2)
        grad = net.backward(rng.normal(size=(3, 2)))
        assert grad.shape == (3, 6)

    def test_parameter_aggregation(self):
        net = Sequential(Dense(6, 4, seed=0), ReLU(), Dense(4, 2, seed=1))
        assert len(net.parameters()) == 4
        assert net.num_parameters() == 6 * 4 + 4 + 4 * 2 + 2

    def test_named_parameters_prefixed(self):
        net = Sequential(Dense(3, 2, seed=0))
        names = [name for name, _ in net.named_parameters()]
        assert names == ["layers.0.weight", "layers.0.bias"]

    def test_train_eval_propagates(self):
        dropout = Dropout(0.5, seed=0)
        net = Sequential(Dense(4, 4, seed=0), dropout)
        net.eval()
        assert not dropout.training
        net.train()
        assert dropout.training

    def test_add_chaining(self):
        net = Sequential().add(Dense(4, 4, seed=0)).add(ReLU())
        assert len(net.layers) == 2

    def test_summary_mentions_all_layers(self):
        text = Sequential(Dense(4, 4, seed=0), ReLU()).summary()
        assert "Dense" in text and "ReLU" in text and "total params" in text


class TestOptimizers:
    def test_sgd_step_direction(self):
        param = Parameter(np.array([1.0, 2.0]))
        param.grad[:] = [0.5, -0.5]
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.value, [0.95, 2.05])

    def test_sgd_momentum_accumulates(self):
        param = Parameter(np.array([0.0]))
        opt = SGD([param], lr=1.0, momentum=0.9)
        param.grad[:] = 1.0
        opt.step()   # velocity = 1
        first = param.value.copy()
        param.grad[:] = 1.0
        opt.step()   # velocity = 1.9
        assert (first - param.value)[0] == pytest.approx(1.9)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([10.0]))
        param.grad[:] = 0.0
        SGD([param], lr=0.1, weight_decay=0.5).step()
        assert param.value[0] < 10.0

    def test_adam_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        opt = Adam([param], lr=0.2)
        for _ in range(200):
            param.grad = 2.0 * param.value  # d/dx of ||x||^2
            opt.step()
        np.testing.assert_allclose(param.value, 0.0, atol=1e-2)

    def test_zero_grad(self):
        param = Parameter(np.ones(3))
        param.grad[:] = 5.0
        SGD([param], lr=0.1).zero_grad()
        np.testing.assert_allclose(param.grad, 0.0)

    def test_invalid_hyperparameters(self):
        param = Parameter(np.ones(1))
        with pytest.raises(ConfigurationError):
            SGD([param], lr=0.0)
        with pytest.raises(ConfigurationError):
            SGD([param], lr=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            Adam([param], lr=-1.0)
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)


class TestMinibatches:
    def test_covers_all_samples(self, rng):
        x = rng.normal(size=(10, 3))
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, 3, rng=0):
            assert len(bx) == len(by)
            seen.extend(by.tolist())
        assert sorted(seen) == list(range(10))

    def test_no_shuffle_preserves_order(self, rng):
        x = rng.normal(size=(6, 2))
        y = np.arange(6)
        batches = list(iterate_minibatches(x, y, 4, shuffle=False))
        np.testing.assert_array_equal(batches[0][1], [0, 1, 2, 3])
        np.testing.assert_array_equal(batches[1][1], [4, 5])

    def test_length_mismatch(self, rng):
        with pytest.raises(Exception):
            list(iterate_minibatches(rng.normal(size=(5, 2)), np.arange(4), 2))

    @pytest.mark.parametrize("batch_size", [0, -1, -32])
    def test_non_positive_batch_size_rejected(self, rng, batch_size):
        # batch_size=0 used to surface as a bare ValueError from range();
        # negatives silently yielded nothing, so an "epoch" trained on
        # zero batches. Both are configuration errors now — raised
        # eagerly at the call, before any iteration.
        x, y = rng.normal(size=(6, 2)), np.arange(6)
        with pytest.raises(ConfigurationError, match=str(batch_size)):
            iterate_minibatches(x, y, batch_size)


class TestTrainer:
    def test_dense_net_learns(self, rng):
        data, labels = _toy_problem(rng)
        net = Sequential(Dense(12, 16, seed=0), ReLU(), Dense(16, 3, seed=1))
        trainer = Trainer(net, Adam(net.parameters(), lr=0.01), seed=0)
        history = trainer.fit(data, labels, epochs=20, batch_size=32)
        assert trainer.evaluate(data, labels) > 0.95
        assert history.train_loss[-1] < history.train_loss[0]

    def test_block_circulant_net_learns(self, rng):
        data, labels = _toy_problem(rng)
        net = Sequential(
            BlockCirculantDense(12, 16, 4, seed=0), ReLU(),
            Dense(16, 3, seed=1),
        )
        trainer = Trainer(net, Adam(net.parameters(), lr=0.01), seed=0)
        trainer.fit(data, labels, epochs=20, batch_size=32)
        assert trainer.evaluate(data, labels) > 0.95

    def test_history_tracks_validation(self, rng):
        data, labels = _toy_problem(rng, n=60)
        net = Sequential(Dense(12, 3, seed=0))
        trainer = Trainer(net, SGD(net.parameters(), lr=0.05), seed=0)
        history = trainer.fit(
            data, labels, epochs=3, x_val=data, y_val=labels
        )
        assert len(history.val_accuracy) == 3
        assert history.final_val_accuracy == history.val_accuracy[-1]

    def test_evaluate_restores_training_mode(self, rng):
        data, labels = _toy_problem(rng, n=40)
        net = Sequential(Dense(12, 3, seed=0), Dropout(0.2, seed=0))
        trainer = Trainer(net, SGD(net.parameters(), lr=0.01), seed=0)
        trainer.evaluate(data, labels)
        assert net.training

    def test_empty_dataset_raises(self, rng):
        net = Sequential(Dense(12, 3, seed=0))
        trainer = Trainer(net, SGD(net.parameters(), lr=0.01), seed=0)
        empty_x, empty_y = np.zeros((0, 12)), np.zeros((0,), dtype=int)
        # Used to hit ZeroDivisionError at total_loss / len(x); now the
        # same empty-batch policy as quant.network_accuracy(on_empty=raise).
        with pytest.raises(ConfigurationError):
            trainer.train_epoch(empty_x, empty_y)
        with pytest.raises(ConfigurationError):
            trainer.evaluate(empty_x, empty_y)

    def test_trainer_non_positive_batch_size_rejected(self, rng):
        data, labels = _toy_problem(rng, n=20)
        net = Sequential(Dense(12, 3, seed=0))
        trainer = Trainer(net, SGD(net.parameters(), lr=0.01), seed=0)
        with pytest.raises(ConfigurationError):
            trainer.train_epoch(data, labels, batch_size=0)
        with pytest.raises(ConfigurationError):
            trainer.evaluate(data, labels, batch_size=-8)

    def test_mode_restored_when_forward_raises_mid_epoch(self, rng):
        class Exploding(Dense):
            def __init__(self):
                super().__init__(12, 3, seed=0)
                self.calls = 0

            def forward(self, x):
                self.calls += 1
                if self.calls > 1:
                    raise RuntimeError("boom")
                return super().forward(x)

        data, labels = _toy_problem(rng, n=40)
        net = Sequential(Exploding())
        trainer = Trainer(net, SGD(net.parameters(), lr=0.01), seed=0)
        net.eval()  # prior mode: eval
        with pytest.raises(RuntimeError, match="boom"):
            trainer.train_epoch(data, labels, batch_size=16)
        assert not net.training  # restored despite the mid-epoch raise

        net.train()  # prior mode: train; evaluate must restore it too
        net.layers[0].calls = 0
        with pytest.raises(RuntimeError, match="boom"):
            trainer.evaluate(data, labels, batch_size=16)
        assert net.training
