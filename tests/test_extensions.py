"""Tests for the extension features: Toeplitz/LDR matrices and
multi-engine scaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import fpga_cyclone_v, map_model
from repro.arch.scaling import ScaledDeployment, engines_needed_for_throughput
from repro.circulant.toeplitz import ToeplitzMatrix
from repro.errors import ConfigurationError, ShapeError
from repro.models import default_lenet5_plan, lenet5_spec


class TestToeplitzStructure:
    def test_dense_structure(self, rng):
        matrix = ToeplitzMatrix.random(6, seed=0)
        dense = matrix.to_dense()
        # Constant diagonals.
        for d in range(-5, 6):
            diag = np.diagonal(dense, d)
            assert np.all(diag == diag[0])

    def test_column_and_row_views(self, rng):
        matrix = ToeplitzMatrix.random(5, seed=1)
        dense = matrix.to_dense()
        np.testing.assert_allclose(dense[:, 0], matrix.first_column)
        np.testing.assert_allclose(dense[0, :], matrix.first_row)

    def test_parameter_count_is_linear(self):
        assert ToeplitzMatrix.random(64, seed=0).num_parameters == 127

    def test_corner_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            ToeplitzMatrix(np.array([1.0, 2.0]), np.array([3.0, 4.0]))

    def test_projection_of_exact_toeplitz_is_identity(self, rng):
        original = ToeplitzMatrix.random(8, seed=2)
        rebuilt = ToeplitzMatrix.from_dense(original.to_dense())
        np.testing.assert_allclose(
            rebuilt.first_column, original.first_column, atol=1e-12
        )
        np.testing.assert_allclose(
            rebuilt.first_row, original.first_row, atol=1e-12
        )

    def test_projection_averages_diagonals(self, rng):
        dense = rng.normal(size=(4, 4))
        projected = ToeplitzMatrix.from_dense(dense)
        assert projected.first_column[1] == pytest.approx(
            np.mean(np.diagonal(dense, -1))
        )


class TestToeplitzProducts:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 16])
    def test_matvec_matches_dense(self, rng, k):
        matrix = ToeplitzMatrix.random(k, seed=3)
        x = rng.normal(size=k)
        np.testing.assert_allclose(
            matrix.matvec(x), matrix.to_dense() @ x, atol=1e-9
        )

    def test_matvec_batched(self, rng):
        matrix = ToeplitzMatrix.random(7, seed=4)
        x = rng.normal(size=(5, 7))
        np.testing.assert_allclose(
            matrix.matvec(x), x @ matrix.to_dense().T, atol=1e-9
        )

    def test_rmatvec_is_transpose(self, rng):
        matrix = ToeplitzMatrix.random(6, seed=5)
        y = rng.normal(size=6)
        np.testing.assert_allclose(
            matrix.rmatvec(y), matrix.to_dense().T @ y, atol=1e-9
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            ToeplitzMatrix.random(6, seed=0).matvec(rng.normal(size=5))

    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 24))
    @settings(max_examples=40, deadline=None)
    def test_matvec_property(self, seed, k):
        rng = np.random.default_rng(seed)
        matrix = ToeplitzMatrix.random(k, seed=int(seed % 9973))
        x = rng.normal(size=k)
        np.testing.assert_allclose(
            matrix.matvec(x), matrix.to_dense() @ x, atol=1e-8
        )

    def test_circulant_is_a_toeplitz_special_case(self, rng):
        from repro.circulant import CirculantMatrix

        circulant = CirculantMatrix(rng.normal(size=8))
        as_toeplitz = ToeplitzMatrix.from_dense(circulant.to_dense())
        x = rng.normal(size=8)
        np.testing.assert_allclose(
            as_toeplitz.matvec(x), circulant.matvec(x), atol=1e-9
        )


class TestMultiEngineScaling:
    @pytest.fixture(scope="class")
    def base_report(self):
        return map_model(
            lenet5_spec(), default_lenet5_plan(), fpga_cyclone_v()
        )

    def test_throughput_scales_linearly(self, base_report):
        scaled = ScaledDeployment(base_report, num_engines=4)
        assert scaled.throughput_fps == pytest.approx(
            4 * base_report.throughput_fps
        )

    def test_efficiency_invariant_without_overhead(self, base_report):
        # The §5.1 claim: replication costs no energy efficiency.
        for n in (1, 2, 8):
            scaled = ScaledDeployment(base_report, num_engines=n)
            assert scaled.gops_per_watt == pytest.approx(
                base_report.gops_per_watt
            )

    def test_shared_overhead_degrades_efficiency(self, base_report):
        clean = ScaledDeployment(base_report, 4)
        loaded = ScaledDeployment(base_report, 4, shared_overhead_w=1.0)
        assert loaded.gops_per_watt < clean.gops_per_watt

    def test_latency_unchanged(self, base_report):
        scaled = ScaledDeployment(base_report, num_engines=16)
        assert scaled.latency_s == base_report.latency_s

    def test_engines_needed(self, base_report):
        one = engines_needed_for_throughput(
            base_report, base_report.throughput_fps * 0.5
        )
        assert one == 1
        several = engines_needed_for_throughput(
            base_report, base_report.throughput_fps * 3.5
        )
        assert several == 4

    def test_invalid_configs(self, base_report):
        with pytest.raises(ConfigurationError):
            ScaledDeployment(base_report, 0)
        with pytest.raises(ConfigurationError):
            engines_needed_for_throughput(base_report, 0.0)


class TestPaperValueConsistency:
    """Internal consistency of the recorded paper claims."""

    def test_6x_times_17x_is_102x(self):
        from repro.experiments import paper_values as pv

        assert pv.FIG15_BASE_IMPROVEMENT_MIN * pv.FIG15_NEAR_THRESHOLD_FACTOR \
            == pytest.approx(pv.FIG15_TOTAL_IMPROVEMENT)

    def test_tx1_ratios_consistent_with_nt_factor(self):
        from repro.experiments import paper_values as pv

        assert pv.FIG15_VS_TX1_NT / pv.FIG15_VS_TX1_BASE == pytest.approx(
            pv.FIG15_NEAR_THRESHOLD_FACTOR, rel=0.01
        )

    def test_headline_band_matches_fig15(self):
        from repro.experiments import paper_values as pv

        low, high = pv.HEADLINE_IMPROVEMENT_BAND
        assert low == pv.FIG15_BASE_IMPROVEMENT_MIN
        assert high == pv.FIG15_TOTAL_IMPROVEMENT

    def test_truenorth_tables_cover_fig14_datasets(self):
        from repro.experiments import paper_values as pv

        assert set(pv.TRUENORTH_RESULTS) == set(pv.CIRCNN_FPGA_RESULTS) == {
            "mnist", "cifar10", "svhn",
        }

    def test_sec53_rates_ordering(self):
        from repro.experiments import paper_values as pv

        # The paper's own numbers: ARM beats GPU on the large FC layer.
        assert pv.SEC53_ARM_FC_LAYERS_PER_S > pv.SEC53_GPU_FC_LAYERS_PER_S
