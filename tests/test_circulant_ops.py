"""Tests for the batched block-circulant kernels (Algorithms 1-2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circulant import (
    block_circulant_apply,
    block_circulant_backward,
    block_circulant_forward,
    block_dims,
    expand_to_dense,
    partition_vector,
    unpartition_vector,
)
from repro.errors import ShapeError
from tests.conftest import numeric_gradient


class TestBlockDims:
    def test_exact_division(self):
        assert block_dims(8, 12, 4) == (2, 3)

    def test_padding_rounds_up(self):
        assert block_dims(10, 14, 4) == (3, 4)
        assert block_dims(1, 1, 4) == (1, 1)

    def test_block_size_one(self):
        assert block_dims(5, 7, 1) == (5, 7)

    def test_invalid_arguments(self):
        with pytest.raises(Exception):
            block_dims(0, 4, 2)
        with pytest.raises(Exception):
            block_dims(4, 4, 0)


class TestPartitioning:
    def test_exact_partition(self, rng):
        x = rng.normal(size=(3, 12))
        blocks = partition_vector(x, 4, 3)
        assert blocks.shape == (3, 3, 4)
        np.testing.assert_allclose(blocks.reshape(3, 12), x)

    def test_zero_padding(self, rng):
        x = rng.normal(size=(2, 10))
        blocks = partition_vector(x, 4, 3)
        assert blocks.shape == (2, 3, 4)
        np.testing.assert_allclose(blocks.reshape(2, 12)[:, :10], x)
        np.testing.assert_allclose(blocks.reshape(2, 12)[:, 10:], 0.0)

    def test_unpartition_inverts(self, rng):
        x = rng.normal(size=(4, 11))
        blocks = partition_vector(x, 4, 3)
        np.testing.assert_allclose(unpartition_vector(blocks, 11), x)

    def test_overflow_rejected(self, rng):
        with pytest.raises(ShapeError):
            partition_vector(rng.normal(size=(2, 13)), 4, 3)
        with pytest.raises(ShapeError):
            unpartition_vector(rng.normal(size=(2, 3, 4)), 13)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ShapeError):
            partition_vector(rng.normal(size=12), 4, 3)

    def test_apply_fuses_partition_forward_unpartition(self, rng):
        # The batch-major serving entry is exactly the three-step
        # pipeline batch assemblers would otherwise write themselves.
        w = rng.normal(size=(2, 3, 4))
        x = rng.normal(size=(5, 10))
        manual = unpartition_vector(
            block_circulant_forward(w, partition_vector(x, 4, 3)), 7
        )
        np.testing.assert_array_equal(
            block_circulant_apply(w, x, 7), manual
        )
        with pytest.raises(ShapeError):
            block_circulant_apply(rng.normal(size=(2, 3)), x, 7)


class TestForward:
    @pytest.mark.parametrize("p,q,k", [(1, 1, 4), (3, 2, 4), (2, 5, 8)])
    def test_matches_dense_expansion(self, rng, p, q, k):
        w = rng.normal(size=(p, q, k))
        x = rng.normal(size=(6, q, k))
        out = block_circulant_forward(w, x)
        dense = expand_to_dense(w)
        expected = x.reshape(6, q * k) @ dense.T
        np.testing.assert_allclose(
            out.reshape(6, p * k), expected, atol=1e-9
        )

    def test_backend_parity(self, rng):
        w = rng.normal(size=(2, 3, 8))
        x = rng.normal(size=(4, 3, 8))
        np.testing.assert_allclose(
            block_circulant_forward(w, x, backend="radix2"),
            block_circulant_forward(w, x, backend="numpy"),
            atol=1e-9,
        )

    def test_shape_validation(self, rng):
        w = rng.normal(size=(2, 3, 4))
        with pytest.raises(ShapeError):
            block_circulant_forward(w, rng.normal(size=(5, 2, 4)))
        with pytest.raises(ShapeError):
            block_circulant_forward(w, rng.normal(size=(5, 3, 8)))
        with pytest.raises(ShapeError):
            block_circulant_forward(rng.normal(size=(2, 3)), rng.normal(size=(5, 3, 4)))


class TestBackward:
    def test_gradients_match_finite_differences(self, rng):
        p, q, k, batch = 2, 3, 4, 5
        w = rng.normal(size=(p, q, k))
        x = rng.normal(size=(batch, q, k))
        cotangent = rng.normal(size=(batch, p, k))

        def loss() -> float:
            return float(np.sum(block_circulant_forward(w, x) * cotangent))

        grad_w, grad_x = block_circulant_backward(w, x, cotangent)
        np.testing.assert_allclose(
            grad_w, numeric_gradient(loss, w), atol=1e-6
        )
        np.testing.assert_allclose(
            grad_x, numeric_gradient(loss, x), atol=1e-6
        )

    def test_gradients_radix2_backend(self, rng):
        w = rng.normal(size=(2, 2, 8))
        x = rng.normal(size=(3, 2, 8))
        g = rng.normal(size=(3, 2, 8))
        gw1, gx1 = block_circulant_backward(w, x, g, backend="numpy")
        gw2, gx2 = block_circulant_backward(w, x, g, backend="radix2")
        np.testing.assert_allclose(gw1, gw2, atol=1e-9)
        np.testing.assert_allclose(gx1, gx2, atol=1e-9)

    def test_grad_x_equals_transpose_product(self, rng):
        # dL/dx = W^T g exactly.
        p, q, k = 3, 2, 4
        w = rng.normal(size=(p, q, k))
        x = rng.normal(size=(4, q, k))
        g = rng.normal(size=(4, p, k))
        _, grad_x = block_circulant_backward(w, x, g)
        dense = expand_to_dense(w)
        expected = g.reshape(4, p * k) @ dense
        np.testing.assert_allclose(
            grad_x.reshape(4, q * k), expected, atol=1e-9
        )

    def test_batch_mismatch_rejected(self, rng):
        w = rng.normal(size=(2, 2, 4))
        with pytest.raises(ShapeError):
            block_circulant_backward(
                w, rng.normal(size=(3, 2, 4)), rng.normal(size=(4, 2, 4))
            )

    def test_grad_shape_mismatch_rejected(self, rng):
        w = rng.normal(size=(2, 2, 4))
        with pytest.raises(ShapeError):
            block_circulant_backward(
                w, rng.normal(size=(3, 2, 4)), rng.normal(size=(3, 2, 8))
            )


class TestExpandToDense:
    def test_truncation(self, rng):
        w = rng.normal(size=(3, 4, 4))
        full = expand_to_dense(w)
        assert full.shape == (12, 16)
        truncated = expand_to_dense(w, 10, 14)
        assert truncated.shape == (10, 14)
        np.testing.assert_allclose(truncated, full[:10, :14])

    def test_each_block_is_circulant(self, rng):
        w = rng.normal(size=(2, 2, 3))
        dense = expand_to_dense(w)
        block = dense[0:3, 3:6]
        np.testing.assert_allclose(block[:, 0], w[0, 1])
        for i in range(3):
            for j in range(3):
                assert block[i, j] == block[(i + 1) % 3, (j + 1) % 3]

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ShapeError):
            expand_to_dense(rng.normal(size=(2, 3)))


class TestKernelProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        p=st.integers(1, 3),
        q=st.integers(1, 3),
        log_k=st.integers(0, 4),
        batch=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_forward_equals_dense_property(self, seed, p, q, log_k, batch):
        rng = np.random.default_rng(seed)
        k = 2**log_k
        w = rng.normal(size=(p, q, k))
        x = rng.normal(size=(batch, q, k))
        out = block_circulant_forward(w, x)
        expected = x.reshape(batch, q * k) @ expand_to_dense(w).T
        np.testing.assert_allclose(
            out.reshape(batch, p * k), expected, atol=1e-7
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_adjoint_identity(self, seed):
        # <W x, y> == <x, W^T y> — forward and grad_x are true adjoints.
        rng = np.random.default_rng(seed)
        p, q, k = 2, 3, 8
        w = rng.normal(size=(p, q, k))
        x = rng.normal(size=(1, q, k))
        y = rng.normal(size=(1, p, k))
        forward = block_circulant_forward(w, x)
        _, grad_x = block_circulant_backward(w, x, y)
        lhs = float(np.sum(forward * y))
        rhs = float(np.sum(x * grad_x))
        assert lhs == pytest.approx(rhs, rel=1e-9)
