"""Tests for BlockCirculantMatrix and the projection onto circulant sets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circulant import (
    BlockCirculantMatrix,
    CirculantMatrix,
    nearest_block_circulant,
    nearest_circulant_vector,
)
from repro.errors import ShapeError


class TestContainer:
    def test_metadata(self, rng):
        matrix = BlockCirculantMatrix.random(10, 14, 4, seed=rng)
        assert matrix.shape == (10, 14)
        assert matrix.block_size == 4
        assert matrix.grid == (3, 4)
        assert matrix.num_parameters == 3 * 4 * 4
        assert matrix.dense_parameters == 140

    def test_compression_ratio_equals_k_when_divisible(self, rng):
        matrix = BlockCirculantMatrix.random(16, 32, 8, seed=rng)
        assert matrix.compression_ratio == pytest.approx(8.0)

    def test_grid_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            BlockCirculantMatrix(rng.normal(size=(2, 2, 4)), m=10, n=14)

    def test_matvec_matches_dense(self, rng):
        matrix = BlockCirculantMatrix.random(10, 14, 4, seed=rng)
        x = rng.normal(size=(5, 14))
        np.testing.assert_allclose(
            matrix.matvec(x), x @ matrix.to_dense().T, atol=1e-9
        )

    def test_matvec_single_vector(self, rng):
        matrix = BlockCirculantMatrix.random(8, 8, 4, seed=rng)
        x = rng.normal(size=8)
        out = matrix.matvec(x)
        assert out.shape == (8,)
        np.testing.assert_allclose(out, matrix.to_dense() @ x, atol=1e-9)

    def test_rmatvec_is_transpose(self, rng):
        matrix = BlockCirculantMatrix.random(10, 14, 4, seed=rng)
        y = rng.normal(size=(3, 10))
        np.testing.assert_allclose(
            matrix.rmatvec(y), y @ matrix.to_dense(), atol=1e-9
        )

    def test_matmul_operator(self, rng):
        matrix = BlockCirculantMatrix.random(8, 12, 4, seed=rng)
        x = rng.normal(size=12)
        np.testing.assert_allclose(matrix @ x, matrix.matvec(x))

    def test_shape_validation_on_products(self, rng):
        matrix = BlockCirculantMatrix.random(8, 12, 4, seed=rng)
        with pytest.raises(ShapeError):
            matrix.matvec(rng.normal(size=(2, 8)))
        with pytest.raises(ShapeError):
            matrix.rmatvec(rng.normal(size=(2, 12)))

    def test_random_init_scale(self):
        # Expanded entries should have variance ~ scale^2 regardless of k.
        matrix = BlockCirculantMatrix.random(256, 256, 32, scale=0.1, seed=0)
        std = float(np.std(matrix.weights))
        assert 0.08 < std < 0.12


class TestProjection:
    def test_projection_of_exact_circulant_is_identity(self, rng):
        vec = rng.normal(size=8)
        dense = CirculantMatrix(vec).to_dense()
        np.testing.assert_allclose(
            nearest_circulant_vector(dense), vec, atol=1e-12
        )

    def test_projection_is_least_squares_optimal(self, rng):
        # No other circulant matrix is closer in Frobenius norm.
        dense = rng.normal(size=(6, 6))
        best = nearest_circulant_vector(dense)
        base_error = np.linalg.norm(CirculantMatrix(best).to_dense() - dense)
        for _ in range(25):
            other = best + rng.normal(scale=0.1, size=6)
            other_error = np.linalg.norm(
                CirculantMatrix(other).to_dense() - dense
            )
            assert base_error <= other_error + 1e-12

    def test_projection_with_partial_validity(self, rng):
        # Only the valid top-left region constrains the projection.
        k = 4
        block = np.zeros((k, k))
        block[:2, :3] = rng.normal(size=(2, 3))
        vector = nearest_circulant_vector(block, valid_rows=2, valid_cols=3)
        i, j = np.meshgrid(np.arange(k), np.arange(k), indexing="ij")
        diag = (i - j) % k
        valid = (i < 2) & (j < 3)
        for d in range(k):
            entries = block[valid & (diag == d)]
            expected = entries.mean() if entries.size else 0.0
            assert vector[d] == pytest.approx(expected)

    def test_block_projection_roundtrip(self, rng):
        original = BlockCirculantMatrix.random(12, 8, 4, seed=rng)
        projected = nearest_block_circulant(original.to_dense(), 4)
        np.testing.assert_allclose(projected, original.weights, atol=1e-10)

    def test_from_dense_reduces_error_vs_random(self, rng):
        dense = rng.normal(size=(12, 12))
        projected = BlockCirculantMatrix.from_dense(dense, 4)
        random = BlockCirculantMatrix.random(12, 12, 4, seed=rng)
        error_projected = np.linalg.norm(projected.to_dense() - dense)
        error_random = np.linalg.norm(random.to_dense() - dense)
        assert error_projected < error_random

    def test_invalid_inputs(self, rng):
        with pytest.raises(ShapeError):
            nearest_circulant_vector(rng.normal(size=(3, 4)))
        with pytest.raises(ShapeError):
            nearest_circulant_vector(rng.normal(size=(4, 4)), valid_rows=5)
        with pytest.raises(ShapeError):
            nearest_block_circulant(rng.normal(size=6), 2)


class TestBlockProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        m=st.integers(1, 20),
        n=st.integers(1, 20),
        k=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matvec_dense_equivalence_with_padding(self, seed, m, n, k):
        # Holds for every shape, divisible or not (padding correctness).
        rng = np.random.default_rng(seed)
        matrix = BlockCirculantMatrix.random(m, n, k, seed=rng)
        x = rng.normal(size=(2, n))
        np.testing.assert_allclose(
            matrix.matvec(x), x @ matrix.to_dense().T, atol=1e-8
        )

    @given(
        seed=st.integers(0, 2**31 - 1),
        m=st.integers(1, 16),
        n=st.integers(1, 16),
        k=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=30, deadline=None)
    def test_projection_idempotent(self, seed, m, n, k):
        # Projecting a projection changes nothing (it is a projection).
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(m, n))
        once = nearest_block_circulant(dense, k)
        from repro.circulant.ops import expand_to_dense

        twice = nearest_block_circulant(expand_to_dense(once, m, n), k)
        np.testing.assert_allclose(once, twice, atol=1e-8)
