"""Tests for the batched serving runtime (repro.serving) and the serving
bugfixes that ride with it: frozen compiled parameters, weak-reference
cache lifetime, and the concurrency contract of compiled forwards."""

from __future__ import annotations

import gc
import threading
import time
import weakref

import numpy as np
import pytest

from concurrent.futures import Future
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.circulant import SpectralWeightCache
from repro.errors import ConfigurationError, QueueFullError, ShapeError
from repro.nn import (
    SGD,
    BlockCirculantConv2D,
    BlockCirculantDense,
    Dense,
    Flatten,
    MaxPool2D,
    Parameter,
    ReLU,
    Sequential,
)
from repro.quant import quantized_view, requantize_endpoint
from repro.serving import (
    BatchPolicy,
    InferenceServer,
    MicroBatcher,
    ModelRegistry,
    assemble_batch,
    check_sample_shape,
    resolve_many,
)


def _fc_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantDense(32, 32, 8, seed=seed),
        ReLU(),
        BlockCirculantDense(32, 16, 4, seed=seed + 1),
    )


def _conv_net(seed: int = 0) -> Sequential:
    return Sequential(
        BlockCirculantConv2D(4, 8, 3, block_size=4, padding=1, seed=seed),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        BlockCirculantDense(8 * 3 * 3, 10, 2, seed=seed + 1),
    )


class TestMicroBatcher:
    def test_closes_at_max_batch(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=3, max_wait_ms=500.0))
        for i in range(5):
            batcher.put(i)
        assert batcher.next_batch(timeout=0.1) == [0, 1, 2]
        assert batcher.next_batch(timeout=0.1) == [3, 4]

    def test_closes_at_deadline_with_partial_batch(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=64, max_wait_ms=20.0))
        batcher.put("only")
        start = time.monotonic()
        batch = batcher.next_batch(timeout=0.1)
        elapsed = time.monotonic() - start
        assert batch == ["only"]
        assert elapsed < 5.0  # closed by deadline, not the 64-item target

    def test_idle_queue_returns_none(self):
        batcher = MicroBatcher(BatchPolicy())
        assert batcher.next_batch(timeout=0.01) is None

    def test_preserves_fifo_order(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=8, max_wait_ms=0.0))
        for i in range(8):
            batcher.put(i)
        assert batcher.next_batch(timeout=0.1) == list(range(8))

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(pad_to_multiple=0)


class TestBatchAssembly:
    def test_stacks_rows(self, rng):
        samples = [rng.normal(size=4) for _ in range(3)]
        x, rows = assemble_batch(samples)
        assert x.shape == (3, 4) and rows == 3
        np.testing.assert_array_equal(x, np.stack(samples))

    def test_pads_batch_axis_with_zero_rows(self, rng):
        samples = [rng.normal(size=4) for _ in range(5)]
        x, rows = assemble_batch(samples, pad_to_multiple=4)
        assert x.shape == (8, 4) and rows == 5
        np.testing.assert_array_equal(x[5:], np.zeros((3, 4)))

    def test_rejects_mixed_shapes(self, rng):
        with pytest.raises(ShapeError):
            assemble_batch([rng.normal(size=4), rng.normal(size=5)])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            assemble_batch([])

    def test_check_sample_shape_wildcards(self):
        check_sample_shape((3, 8, 8), (3, None, None))
        check_sample_shape((5,), None)  # no contract: anything goes
        with pytest.raises(ShapeError):
            check_sample_shape((4, 8, 8), (3, None, None))
        with pytest.raises(ShapeError):
            check_sample_shape((3, 8), (3, None, None))


class TestModelRegistry:
    def test_register_compiles_and_get(self):
        registry = ModelRegistry()
        net = registry.register("fc", _fc_net())
        assert registry.get("fc") is net
        assert net.is_compiled
        assert registry.generation("fc") == 0

    def test_duplicate_register_rejected(self):
        registry = ModelRegistry()
        registry.register("fc", _fc_net())
        with pytest.raises(ConfigurationError):
            registry.register("fc", _fc_net(seed=5))

    def test_unknown_endpoint_raises(self):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError) as exc:
            registry.get("nope")
        assert "nope" in str(exc.value)

    def test_swap_returns_old_and_bumps_generation(self):
        registry = ModelRegistry()
        old = registry.register("fc", _fc_net())
        new = _fc_net(seed=9)
        returned = registry.swap("fc", new)
        assert returned is old
        assert registry.get("fc") is new
        assert registry.generation("fc") == 1

    def test_swap_upserts_fresh_endpoint(self):
        registry = ModelRegistry()
        assert registry.swap("fresh", _fc_net()) is None
        assert "fresh" in registry and len(registry) == 1

    def test_unregister(self):
        registry = ModelRegistry()
        net = registry.register("fc", _fc_net())
        assert registry.unregister("fc") is net
        assert "fc" not in registry


class TestInferenceServer:
    def test_outputs_bit_identical_to_direct_forward(self, rng):
        # Force one deterministic micro-batch (burst of exactly max_batch
        # with a generous window), so the server runs precisely the same
        # compiled batch forward as the direct call.
        net = _fc_net().compile_inference()
        xs = rng.normal(size=(8, 32))
        with InferenceServer(net, max_batch=8, max_wait_ms=200.0) as server:
            outs = server.infer_many(list(xs), timeout=30.0)
        direct = net.inference_forward(xs)
        np.testing.assert_array_equal(np.stack(outs), direct)

    def test_many_requests_all_served(self, rng):
        net = _fc_net().compile_inference()
        xs = rng.normal(size=(37, 32))
        with InferenceServer(net, max_batch=5, max_wait_ms=1.0) as server:
            outs = server.infer_many(list(xs), timeout=30.0)
            stats = server.stats()
        np.testing.assert_allclose(
            np.stack(outs), net.inference_forward(xs), atol=1e-10
        )
        assert stats["responses"] == 37
        assert stats["batches"] >= 8  # 37 requests, max_batch=5

    def test_conv_endpoint(self, rng):
        net = _conv_net().compile_inference()
        xs = rng.normal(size=(6, 4, 6, 6))
        with InferenceServer(net, max_batch=6, max_wait_ms=200.0) as server:
            outs = server.infer_many(list(xs), timeout=30.0)
        np.testing.assert_array_equal(
            np.stack(outs), net.inference_forward(xs)
        )

    def test_quantized_endpoint(self, rng):
        view = quantized_view(_fc_net(), 8, 8).compile_inference()
        xs = rng.normal(size=(4, 32))
        with InferenceServer(view, max_batch=4, max_wait_ms=200.0) as server:
            outs = server.infer_many(list(xs), timeout=30.0)
        np.testing.assert_array_equal(
            np.stack(outs), view.inference_forward(xs)
        )

    def test_multiple_endpoints(self, rng):
        registry = ModelRegistry()
        fc = registry.register("fc", _fc_net())
        conv = registry.register("conv", _conv_net())
        x_fc = rng.normal(size=32)
        x_conv = rng.normal(size=(4, 6, 6))
        with InferenceServer(registry, max_wait_ms=1.0) as server:
            y_fc = server.infer(x_fc, "fc", timeout=30.0)
            y_conv = server.infer(x_conv, "conv", timeout=30.0)
        np.testing.assert_allclose(
            y_fc, fc.inference_forward(x_fc[np.newaxis])[0], atol=1e-12
        )
        np.testing.assert_allclose(
            y_conv, conv.inference_forward(x_conv[np.newaxis])[0], atol=1e-12
        )

    def test_bad_sample_shape_rejected_at_submit(self, rng):
        net = _fc_net().compile_inference()
        with InferenceServer(net) as server:
            with pytest.raises(ShapeError):
                server.submit(rng.normal(size=33))

    def test_unknown_endpoint_rejected_at_submit(self, rng):
        net = _fc_net().compile_inference()
        with InferenceServer(net) as server:
            with pytest.raises(ConfigurationError):
                server.submit(rng.normal(size=32), endpoint="nope")

    def test_submit_requires_running_server(self, rng):
        server = InferenceServer(_fc_net())
        with pytest.raises(ConfigurationError):
            server.submit(rng.normal(size=32))

    def test_padded_batches_do_not_leak_into_outputs(self, rng):
        net = _fc_net().compile_inference()
        xs = rng.normal(size=(3, 32))
        with InferenceServer(
            net, max_batch=8, max_wait_ms=100.0, pad_to_multiple=8
        ) as server:
            futures = [server.submit(x) for x in xs]
            responses = [f.result(timeout=30.0) for f in futures]
        assert all(r.batch_size == 3 for r in responses)
        np.testing.assert_allclose(
            np.stack([r.y for r in responses]),
            net.inference_forward(xs), atol=1e-10,
        )

    def test_response_telemetry(self, rng):
        net = _fc_net().compile_inference()
        with InferenceServer(net, max_wait_ms=1.0) as server:
            response = server.submit(rng.normal(size=32)).result(timeout=30.0)
        assert response.endpoint == "default"
        assert response.generation == 0
        assert response.latency_ms >= response.queued_ms >= 0.0

    def test_cancelled_request_does_not_strand_batchmates(self, rng):
        net = _fc_net().compile_inference()
        xs = rng.normal(size=(2, 32))
        with InferenceServer(net, max_batch=8, max_wait_ms=150.0) as server:
            doomed = server.submit(xs[0])
            kept = server.submit(xs[1])
            # The batch window is still open, so neither future has been
            # claimed by a worker yet and the cancel wins the race.
            assert doomed.cancel()
            response = kept.result(timeout=30.0)
            stats = server.stats()
        np.testing.assert_allclose(
            response.y, net.inference_forward(xs[1:2])[0], atol=1e-10
        )
        assert response.batch_size == 1  # the cancelled row never ran
        assert stats["cancelled"] == 1

    def test_mixed_spatial_sizes_served_as_per_shape_subbatches(self, rng):
        # Both samples are valid for the conv endpoint's (4, None, None)
        # contract but have different spatial sizes: they may share a
        # scheduling window yet must both be served, not poison each
        # other's batch.
        conv_only = Sequential(
            BlockCirculantConv2D(4, 8, 3, block_size=4, padding=1, seed=0)
        ).compile_inference()
        small = rng.normal(size=(4, 6, 6))
        big = rng.normal(size=(4, 10, 10))
        with InferenceServer(
            conv_only, max_batch=4, max_wait_ms=100.0
        ) as server:
            futures = [
                server.submit(small), server.submit(big),
                server.submit(small),
            ]
            responses = [f.result(timeout=30.0) for f in futures]
        np.testing.assert_array_equal(
            responses[0].y,
            conv_only.inference_forward(small[np.newaxis])[0],
        )
        np.testing.assert_array_equal(
            responses[1].y,
            conv_only.inference_forward(big[np.newaxis])[0],
        )
        assert responses[1].batch_size == 1  # its own sub-batch

    def test_registry_restores_eval_mode_on_compiled_network(self):
        # compile -> fine-tune (train mode) -> register: the registry
        # must not serve training-mode forwards.
        net = _fc_net().compile_inference()
        net.train()
        registry = ModelRegistry()
        registry.register("fc", net)
        assert not registry.get("fc").training

    def test_restart_after_stop(self, rng):
        net = _fc_net().compile_inference()
        x = rng.normal(size=32)
        server = InferenceServer(net, max_wait_ms=1.0)
        server.start()
        first = server.infer(x)
        server.stop()
        server.start()
        try:
            np.testing.assert_array_equal(server.infer(x), first)
        finally:
            server.stop()

    def test_row_collapsing_endpoint_fails_all_futures(self, rng):
        class CollapsingStub:
            """Returns one row regardless of batch size."""

            def eval(self):
                return self

            def inference_forward(self, x):
                return np.zeros((1, 4))

        registry = ModelRegistry()
        registry.register("bad", CollapsingStub(), compile=False)
        with InferenceServer(registry, max_batch=4, max_wait_ms=50.0) as server:
            futures = [
                server.submit(rng.normal(size=8), endpoint="bad")
                for _ in range(3)
            ]
            for future in futures:
                with pytest.raises(RuntimeError, match="output rows"):
                    future.result(timeout=30.0)

    def test_stop_drains_queued_requests(self, rng):
        net = _fc_net().compile_inference()
        server = InferenceServer(net, max_batch=4, max_wait_ms=50.0).start()
        futures = [server.submit(rng.normal(size=32)) for _ in range(10)]
        server.stop()
        for future in futures:
            assert future.result(timeout=1.0).y.shape == (16,)


class TestConcurrentServing:
    """Satellite: compiled forwards are reentrant and updates are atomic."""

    @staticmethod
    def _hammer(net, inputs, threads, iterations):
        """Run ``inference_forward`` from many threads; collect outputs."""
        results = [[] for _ in range(threads)]
        errors = []

        def worker(index):
            try:
                for _ in range(iterations):
                    results[index].append(net.inference_forward(inputs[index]))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors, errors
        return results

    def test_threads_match_serial_fc(self, rng):
        net = _fc_net().compile_inference()
        inputs = [rng.normal(size=(3, 32)) for _ in range(4)]
        serial = [net.inference_forward(x) for x in inputs]
        results = self._hammer(net, inputs, threads=4, iterations=25)
        for thread_outputs, expected in zip(results, serial):
            for out in thread_outputs:
                np.testing.assert_array_equal(out, expected)

    def test_threads_match_serial_conv(self, rng):
        net = _conv_net().compile_inference()
        inputs = [rng.normal(size=(2, 4, 6, 6)) for _ in range(3)]
        serial = [net.inference_forward(x) for x in inputs]
        results = self._hammer(net, inputs, threads=3, iterations=10)
        for thread_outputs, expected in zip(results, serial):
            for out in thread_outputs:
                np.testing.assert_array_equal(out, expected)

    def test_threads_match_serial_quantized_view(self, rng):
        view = quantized_view(_fc_net(), 8, 8).compile_inference()
        inputs = [rng.normal(size=(3, 32)) for _ in range(4)]
        serial = [view.inference_forward(x) for x in inputs]
        results = self._hammer(view, inputs, threads=4, iterations=25)
        for thread_outputs, expected in zip(results, serial):
            for out in thread_outputs:
                np.testing.assert_array_equal(out, expected)

    def test_weight_update_observed_atomically(self, rng):
        # A mid-serving reassignment of the defining vectors must yield
        # outputs from the old spectrum or the new one — never a mix.
        layer = BlockCirculantDense(32, 32, 8, bias=False, seed=0)
        net = Sequential(layer).compile_inference()
        x = rng.normal(size=(2, 32))
        old_out = net.inference_forward(x)
        new_weights = layer.weight.value + 1.0
        outputs = []
        stop = threading.Event()

        def worker():
            while not stop.is_set():
                outputs.append(net.inference_forward(x))

        pool = [threading.Thread(target=worker) for _ in range(3)]
        for thread in pool:
            thread.start()
        time.sleep(0.02)
        layer.weight.value = new_weights  # version bump -> lazy refresh
        time.sleep(0.02)
        stop.set()
        for thread in pool:
            thread.join()
        new_out = net.inference_forward(x)
        assert not np.allclose(old_out, new_out)
        for out in outputs:
            matches_old = np.array_equal(out, old_out)
            matches_new = np.array_equal(out, new_out)
            assert matches_old or matches_new, "observed a mixed spectrum"

    def test_hot_swap_observed_atomically(self, rng):
        registry = ModelRegistry()
        net_a = _fc_net(seed=0)
        net_b = _fc_net(seed=0)
        # Push B far from A so a layer-mixed forward matches neither.
        for param in net_b.parameters():
            param.value = param.value + 3.0
        registry.register("fc", net_a)
        x = rng.normal(size=32)
        ref_a = net_a.inference_forward(x[np.newaxis])[0]
        ref_b = net_b.inference_forward(x[np.newaxis])[0]
        with InferenceServer(
            registry, max_batch=4, max_wait_ms=0.5, workers=2
        ) as server:
            futures = [server.submit(x, "fc") for _ in range(30)]
            registry.swap("fc", net_b)
            futures += [server.submit(x, "fc") for _ in range(30)]
            responses = [f.result(timeout=30.0) for f in futures]
        for response in responses:
            from_a = np.allclose(response.y, ref_a, atol=1e-10)
            from_b = np.allclose(response.y, ref_b, atol=1e-10)
            assert from_a != from_b, "response matches neither generation"
            assert (response.generation == 0) == from_a
        # Every post-swap request saw generation 1.
        assert all(r.generation == 1 for r in responses[30:])

    def test_requantize_endpoint_swaps_atomically(self, rng):
        registry = ModelRegistry()
        source = _fc_net()
        registry.register("fc", quantized_view(source, 16, 16))
        view8 = requantize_endpoint(registry, "fc", source, 8, 8)
        assert registry.get("fc") is view8
        assert registry.generation("fc") == 1
        assert view8.is_compiled


class TestFrozenCompiledParameters:
    """Satellite bugfix: compile_inference freezes parameter arrays."""

    def test_element_write_raises_after_compile(self):
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        layer.compile_inference()
        with pytest.raises(ValueError):
            layer.weight.value[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            layer.bias.value[0] = 1.0

    def test_conv_weight_frozen_after_compile(self):
        layer = BlockCirculantConv2D(4, 4, 3, block_size=2, seed=0)
        layer.compile_inference()
        assert layer.weight.frozen
        with pytest.raises(ValueError):
            layer.weight.value[0, 0, 0, 0] = 1.0

    def test_network_compile_freezes_all_block_circulant_params(self):
        net = _fc_net().compile_inference()
        assert net.layers[0].weight.frozen
        assert net.layers[2].weight.frozen

    def test_value_assignment_thaws_and_refreshes(self, rng):
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        net = Sequential(layer).compile_inference()
        x = rng.normal(size=(2, 16))
        before = net.inference_forward(x)
        layer.weight.value = layer.weight.value + 1.0
        assert not layer.weight.frozen
        after = net.inference_forward(x)
        assert not np.allclose(before, after)

    def test_mark_updated_thaws(self):
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        layer.compile_inference()
        version = layer.weight.version
        layer.weight.mark_updated()
        assert not layer.weight.frozen
        assert layer.weight.version == version + 1
        layer.weight.value[0, 0, 0] = 2.0  # now legal
        layer.weight.mark_updated()

    def test_optimizer_step_still_works_after_compile(self, rng):
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        net = Sequential(layer).compile_inference()
        x = rng.normal(size=(2, 16))
        net.train()
        out = net(x)
        net.zero_grad()
        net.backward(out)
        SGD(net.parameters(), lr=0.1).step()  # must not hit the freeze
        assert not layer.weight.frozen

    def test_refreezes_on_next_served_forward(self, rng):
        # The freeze guarantee must survive legitimate updates: a thawing
        # assignment refreshes the spectrum on the next served forward,
        # which re-freezes — so element writes raise again afterwards.
        layer = BlockCirculantDense(16, 16, 4, seed=0)
        net = Sequential(layer).compile_inference()
        layer.weight.value = layer.weight.value * 0.5  # thaws
        assert not layer.weight.frozen
        net.inference_forward(rng.normal(size=(2, 16)))
        assert layer.weight.frozen
        with pytest.raises(ValueError):
            layer.weight.value[0, 0, 0] = 1.0

    def test_assigning_readonly_array_stays_trainable(self):
        param = Parameter(np.zeros(4))
        frozen = np.ones(4)
        frozen.setflags(write=False)
        param.value = frozen
        param.value[0] = 2.0  # the stored copy is writable
        assert frozen[0] == 1.0


class TestCacheLifetime:
    """Satellite bugfix: the cache must not pin old weight generations."""

    def test_recompile_releases_first_generation(self):
        cache = SpectralWeightCache()
        first = Sequential(BlockCirculantDense(16, 16, 4, seed=0))
        first.compile_inference(cache)
        param_ref = weakref.ref(first.layers[0].weight)
        assert len(cache) == 1
        second = Sequential(BlockCirculantDense(16, 16, 4, seed=1))
        second.compile_inference(cache)
        assert len(cache) == 2
        del first
        gc.collect()
        # The first generation's parameter and its entry are both gone.
        assert param_ref() is None
        assert len(cache) == 1
        # The surviving network still serves.
        assert cache.spectrum(second.layers[0].weight) is not None

    def test_release_drops_all_backend_entries(self, rng):
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(2, 2, 8)))
        cache.spectrum(param, "numpy")
        cache.spectrum(param, "radix2")
        assert len(cache) == 2
        cache.release(param)
        assert len(cache) == 0

    def test_clear(self, rng):
        cache = SpectralWeightCache()
        cache.spectrum(Parameter(rng.normal(size=(2, 2, 8))))
        cache.clear()
        assert len(cache) == 0

    def test_dead_entry_purged_before_id_reuse_can_alias(self, rng):
        cache = SpectralWeightCache()
        param = Parameter(rng.normal(size=(2, 2, 8)))
        cache.spectrum(param)
        del param
        gc.collect()
        assert len(cache) == 0  # purged by the weakref callback

    def test_deepcopy_of_compiled_network_starts_cold(self):
        import copy

        net = _fc_net().compile_inference()
        clone = copy.deepcopy(net)
        assert clone.spectral_cache is not None
        assert len(clone.spectral_cache) == 0


class TestServingSignature:
    def test_fc_signature(self):
        net = _fc_net()
        assert net.input_sample_shape == (32,)
        signature = net.serving_signature()
        assert signature["compiled"] is False
        net.compile_inference()
        signature = net.serving_signature()
        assert signature["compiled"] is True
        assert signature["cached_spectra"] == 2

    def test_conv_signature_has_wildcard_spatial_dims(self):
        assert _conv_net().input_sample_shape == (4, None, None)

    def test_dense_layer_shapes(self):
        assert Dense(12, 5).input_sample_shape == (12,)
        assert ReLU().input_sample_shape is None

    def test_scan_looks_through_transparent_layers_only(self):
        # Elementwise layers pass the downstream contract through...
        assert Sequential(ReLU(), Dense(12, 5)).input_sample_shape == (12,)
        # ...but a shape-transforming layer without its own contract ends
        # the scan: the FC width after Flatten says nothing about the
        # (unflattened) shape the network actually accepts.
        flat_first = Sequential(Flatten(), Dense(36, 5))
        assert flat_first.input_sample_shape is None

    def test_quantized_outputs_independent_of_batch_composition(self, rng):
        # Activation formats are fitted per sample, so a request's answer
        # never depends on which other requests shared its micro-batch.
        view = quantized_view(_fc_net(), 8, 8).compile_inference()
        xs = rng.normal(size=(4, 32))
        alone = np.stack([view.inference_forward(x[None])[0] for x in xs])
        with InferenceServer(view, max_batch=4, max_wait_ms=50.0) as server:
            futures = [server.submit(x) for x in xs]
            served = np.stack([f.result(timeout=30.0).y for f in futures])
        np.testing.assert_array_equal(served, alone)

    def test_quantized_view_keeps_input_contract(self):
        # ActivationQuantizer sits in front of the first real layer in a
        # fully quantised view; being elementwise it must not hide the
        # serving shape contract.
        view = quantized_view(_fc_net(), 8, 8)
        assert view.input_sample_shape == (32,)

    def test_flatten_first_network_serves_multidim_samples(self, rng):
        net = Sequential(
            Flatten(), BlockCirculantDense(36, 16, 4, seed=0)
        ).compile_inference()
        x = rng.normal(size=(6, 6))  # valid: Flatten collapses to 36
        with InferenceServer(net, max_wait_ms=1.0) as server:
            y = server.infer(x)
        np.testing.assert_allclose(
            y, net.inference_forward(x[None])[0], atol=1e-10
        )


class TestMicroBatcherEdgeCases:
    """The scheduler corners the multi-process server leans on."""

    def test_max_batch_one_serves_every_item_alone(self):
        batcher = MicroBatcher(BatchPolicy(max_batch=1, max_wait_ms=100.0))
        for i in range(4):
            batcher.put(i)
        # Each batch closes immediately at one item; no window wait even
        # though more items are queued.
        for i in range(4):
            start = time.monotonic()
            assert batcher.next_batch(timeout=1.0) == [i]
            assert time.monotonic() - start < 0.5

    def test_zero_wait_still_drains_already_queued_items(self):
        # max_wait_ms=0 means "never wait for company" — but items that
        # are already queued when the window opens cost nothing and are
        # still drained into the closing batch.
        batcher = MicroBatcher(BatchPolicy(max_batch=8, max_wait_ms=0.0))
        for i in range(5):
            batcher.put(i)
        assert batcher.next_batch(timeout=1.0) == [0, 1, 2, 3, 4]
        # An empty queue with zero wait returns None after the timeout,
        # not a busy loop.
        assert batcher.next_batch(timeout=0.01) is None

    def test_drain_on_stop_with_queued_items(self):
        # The server's shutdown drain: requests enqueued before the wake
        # sentinel are all batched out before the lane exits.
        batcher = MicroBatcher(BatchPolicy(max_batch=2, max_wait_ms=0.0))
        wake = object()
        for i in range(5):
            batcher.put(i)
        batcher.put(wake, force=True)
        drained = []
        while batcher.pending() > 0:
            batch = batcher.next_batch(timeout=0.5)
            drained.extend(x for x in batch if x is not wake)
        assert drained == [0, 1, 2, 3, 4]

    def test_expired_entry_never_joins_a_batch(self):
        # A deadline that has already passed at dequeue time goes to the
        # sink, not into the batch — the batch may then be empty.
        dropped = []
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait_ms=0.0),
            expired=lambda item: item[1] <= time.monotonic(),
            on_expired=dropped.append,
        )
        batcher.put(("dead", time.monotonic() - 1.0))
        assert batcher.next_batch(timeout=0.5) == []
        assert len(dropped) == 1 and dropped[0][0] == "dead"
        live = ("live", time.monotonic() + 60.0)
        batcher.put(live)
        assert batcher.next_batch(timeout=0.5) == [live]

    def test_expired_mid_window_filtered_per_item(self):
        dropped = []
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait_ms=50.0),
            expired=lambda item: item[0] == "dead",
            on_expired=dropped.append,
        )
        for tag in ("live", "dead", "live", "dead"):
            batcher.put((tag, None))
        assert batcher.next_batch(timeout=0.5) == [
            ("live", None), ("live", None)
        ]
        assert dropped == [("dead", None), ("dead", None)]

    def test_expiry_predicate_requires_sink(self):
        with pytest.raises(ConfigurationError, match="together"):
            MicroBatcher(expired=lambda item: False)
        with pytest.raises(ConfigurationError, match="together"):
            MicroBatcher(on_expired=lambda item: None)


class TestMicroBatcherAdmission:
    def test_bounded_queue_sheds_synchronously(self):
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait_ms=0.0), max_pending=2
        )
        batcher.put("a")
        batcher.put("b")
        start = time.monotonic()
        with pytest.raises(QueueFullError):
            batcher.put("c")
        # Fast reject: overload is reported synchronously, never by
        # blocking the producer.
        assert time.monotonic() - start < 0.1

    def test_force_put_bypasses_the_bound(self):
        batcher = MicroBatcher(
            BatchPolicy(max_batch=4, max_wait_ms=0.0), max_pending=1
        )
        batcher.put("a")
        batcher.put("wake", force=True)  # shutdown sentinels always land
        assert batcher.next_batch(timeout=0.5) == ["a", "wake"]

    def test_dequeue_frees_admission_slots(self):
        batcher = MicroBatcher(
            BatchPolicy(max_batch=1, max_wait_ms=0.0), max_pending=1
        )
        batcher.put("a")
        assert batcher.next_batch(timeout=0.5) == ["a"]
        batcher.put("b")  # slot was released by the dequeue

    def test_max_pending_validation(self):
        with pytest.raises(ConfigurationError, match="max_pending"):
            MicroBatcher(max_pending=0)


class TestResolveManySharedDeadline:
    """Regression: infer_many's timeout bounds the burst, not each future."""

    def test_timeout_is_shared_not_per_future(self):
        # Five futures that never resolve: a per-future timeout loop
        # would wait 5 x 0.2 s; the shared deadline fails after ~0.2 s.
        futures = [Future() for _ in range(5)]
        start = time.monotonic()
        with pytest.raises(FuturesTimeoutError):
            resolve_many(futures, timeout=0.2)
        elapsed = time.monotonic() - start
        assert elapsed < 0.6, (
            f"resolve_many took {elapsed:.2f}s for a 0.2s budget: the "
            "timeout is being applied per future, not per burst"
        )

    def test_later_futures_get_remaining_time_only(self):
        # First future resolves late-but-in-time; the second must only be
        # granted what is left of the shared budget.
        first, second = Future(), Future()

        def resolve_first_late():
            time.sleep(0.15)
            first.set_result("ok")

        threading.Thread(target=resolve_first_late).start()
        start = time.monotonic()
        with pytest.raises(FuturesTimeoutError):
            resolve_many([first, second], timeout=0.3)
        assert time.monotonic() - start < 0.9

    def test_no_timeout_waits_indefinitely(self):
        f = Future()
        threading.Thread(
            target=lambda: (time.sleep(0.05), f.set_result(1))
        ).start()
        assert resolve_many([f]) == [1]

    def test_infer_many_results_in_order(self, rng):
        net = _fc_net().compile_inference()
        xs = rng.normal(size=(6, 32))
        expected = net.inference_forward(xs)
        with InferenceServer(net, max_batch=4, max_wait_ms=1.0) as server:
            ys = server.infer_many(list(xs), timeout=30.0)
        np.testing.assert_allclose(np.stack(ys), expected, atol=1e-10)

    def test_submit_many_returns_futures_in_order(self, rng):
        net = _fc_net().compile_inference()
        xs = rng.normal(size=(4, 32))
        with InferenceServer(net, max_batch=4, max_wait_ms=1.0) as server:
            futures = server.submit_many(list(xs))
            ids = [f.result(30.0).request_id for f in futures]
        assert ids == sorted(ids)


class TestRegistrySubscription:
    """The publish hook the multi-process server's image plane rides on."""

    def test_register_and_swap_notify(self):
        registry = ModelRegistry()
        events = []
        registry.subscribe(
            lambda name, net, gen: events.append((name, gen))
        )
        registry.register("a", _fc_net())
        registry.swap("a", _fc_net(seed=3))
        assert events == [("a", 0), ("a", 1)]

    def test_unsubscribe_stops_notifications(self):
        registry = ModelRegistry()
        events = []
        callback = lambda name, net, gen: events.append(gen)  # noqa: E731
        registry.subscribe(callback)
        registry.register("a", _fc_net())
        registry.unsubscribe(callback)
        registry.swap("a", _fc_net(seed=3))
        assert events == [0]
        registry.unsubscribe(callback)  # unknown callback is a no-op

    def test_callback_sees_final_registry_state(self):
        registry = ModelRegistry()
        seen = []
        registry.subscribe(
            lambda name, net, gen: seen.append(
                registry.generation(name) == gen
            )
        )
        registry.register("a", _fc_net())
        registry.swap("a", _fc_net(seed=3))
        assert seen == [True, True]


class TestApplyPlan:
    """ModelRegistry.apply_plan: the generalised registry re-plan action."""

    def test_apply_plan_swaps_and_records(self, rng):
        from repro.plan import ExecutionPlan

        registry = ModelRegistry()
        source = _fc_net()
        registry.register("fc", source)
        plan = ExecutionPlan.uniform(2, bits=8)
        view = registry.apply_plan("fc", plan)
        assert registry.get("fc") is view
        assert registry.generation("fc") == 1
        assert registry.applied_plan("fc") == plan
        assert view.is_compiled
        x = rng.normal(size=(3, 32))
        # The 8-bit endpoint serves visibly different numbers.
        assert not np.allclose(
            view.inference_forward(x), source.inference_forward(x))

    def test_reapply_defaults_to_recorded_source(self, rng):
        from repro.plan import ExecutionPlan

        registry = ModelRegistry()
        source = _fc_net()
        registry.register("fc", source)
        registry.apply_plan("fc", ExecutionPlan.uniform(2, bits=8))
        # Re-plan without naming a source: quantises the *original*
        # weights at 12 bits, not the already-8-bit served view.
        view12 = registry.apply_plan("fc", ExecutionPlan.uniform(2, bits=12))
        from repro.plan import planned_view

        x = rng.normal(size=(2, 32))
        np.testing.assert_array_equal(
            view12.inference_forward(x),
            planned_view(
                source, ExecutionPlan.uniform(2, bits=12)
            ).inference_forward(x),
        )

    def test_foreign_swap_clears_plan_state(self):
        from repro.plan import ExecutionPlan

        registry = ModelRegistry()
        registry.register("fc", _fc_net())
        registry.apply_plan("fc", ExecutionPlan.uniform(2, bits=8))
        assert registry.applied_plan("fc") is not None
        registry.swap("fc", _fc_net(seed=5))
        assert registry.applied_plan("fc") is None

    def test_backend_replan_seeds_unchanged_spectra(self, rng):
        from repro.fftcore import CountingFFTBackend, register_backend, \
            unregister_backend
        from repro.plan import ExecutionPlan, LayerPlan

        counting = CountingFFTBackend("numpy")
        counting.name = "counting-serve"
        register_backend(counting)
        try:
            source = Sequential(
                BlockCirculantDense(32, 32, 8, seed=0,
                                    backend="counting-serve"),
                ReLU(),
                BlockCirculantDense(32, 16, 4, seed=1,
                                    backend="counting-serve"),
            )
            registry = ModelRegistry()
            registry.register("fc", source)
            compiled = counting.total()
            assert compiled > 0
            # Word-length change on layer 1 only: layer 0's weights (and
            # backend) are untouched, so its spectrum is seeded, not
            # recomputed — the only new weight FFT belongs to layer 1.
            plan = ExecutionPlan(
                (LayerPlan(), LayerPlan(bits=8)))
            counting.reset()
            view = registry.apply_plan("fc", plan)
            # One batched weight-spectrum transform per *recomputed* layer:
            # layer 1 only. Layer 0's spectrum arrived by cache seeding.
            assert counting.counts["rfft"] == 1
            x = rng.normal(size=(2, 32))
            assert view.inference_forward(x).shape == (2, 16)
        finally:
            unregister_backend("counting-serve")

    def test_apply_plan_observed_atomically(self, rng):
        from repro.plan import ExecutionPlan, planned_view

        registry = ModelRegistry()
        source = _fc_net(seed=0)
        registry.register("fc", source)
        plan = ExecutionPlan.uniform(2, bits=4, activation_bits=4)
        x = rng.normal(size=32)
        ref_old = registry.get("fc").inference_forward(x[np.newaxis])[0]
        ref_new = planned_view(source, plan).inference_forward(
            x[np.newaxis])[0]
        # 4-bit quantisation moves every output: mixed forwards match
        # neither reference.
        assert not np.allclose(ref_old, ref_new, atol=1e-6)
        with InferenceServer(
            registry, max_batch=4, max_wait_ms=0.5, workers=2
        ) as server:
            futures = [server.submit(x, "fc") for _ in range(30)]
            registry.apply_plan("fc", plan)
            futures += [server.submit(x, "fc") for _ in range(30)]
            responses = [f.result(timeout=30.0) for f in futures]
        for response in responses:
            from_old = np.allclose(response.y, ref_old, atol=1e-10)
            from_new = np.allclose(response.y, ref_new, atol=1e-10)
            assert from_old != from_new, \
                "response matches neither the old nor the re-planned net"
            assert (response.generation == 0) == from_old
        assert all(r.generation == 1 for r in responses[30:])
        assert registry.applied_plan("fc") == plan
